#include "stats/ci.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hh"
#include "stats/special.hh"

namespace sharp
{
namespace stats
{

double
ConfidenceInterval::relativeWidth(double center) const
{
    if (center == 0.0)
        return 0.0;
    return width() / std::fabs(center);
}

namespace
{

void
checkLevel(double level)
{
    if (!(level > 0.0 && level < 1.0))
        throw std::invalid_argument("confidence level must be in (0, 1)");
}

/** log of the binomial CDF term helper: C(n,k) p^k q^(n-k) at p=q=0.5. */
double
binomialHalfPmf(size_t n, size_t k)
{
    double log_choose = logGamma(static_cast<double>(n) + 1.0) -
                        logGamma(static_cast<double>(k) + 1.0) -
                        logGamma(static_cast<double>(n - k) + 1.0);
    return std::exp(log_choose -
                    static_cast<double>(n) * std::log(2.0));
}

/** Binomial(n, p) PMF. */
double
binomialPmf(size_t n, size_t k, double p)
{
    double log_choose = logGamma(static_cast<double>(n) + 1.0) -
                        logGamma(static_cast<double>(k) + 1.0) -
                        logGamma(static_cast<double>(n - k) + 1.0);
    double log_pmf = log_choose +
                     static_cast<double>(k) * std::log(p) +
                     static_cast<double>(n - k) * std::log1p(-p);
    return std::exp(log_pmf);
}

} // anonymous namespace

ConfidenceInterval
meanCi(const std::vector<double> &x, double level)
{
    checkLevel(level);
    if (x.size() < 2)
        throw std::invalid_argument("meanCi requires n >= 2");
    double m = mean(x);
    double se = standardError(x);
    double dof = static_cast<double>(x.size() - 1);
    double t = studentTQuantile(0.5 + level / 2.0, dof);
    return {m - t * se, m + t * se, level};
}

ConfidenceInterval
meanCiRightTailed(const std::vector<double> &x, double level)
{
    checkLevel(level);
    if (x.size() < 2)
        throw std::invalid_argument("meanCiRightTailed requires n >= 2");
    double m = mean(x);
    double se = standardError(x);
    double dof = static_cast<double>(x.size() - 1);
    double t = studentTQuantile(level, dof);
    return {m, m + t * se, level};
}

double
medianOrderCoverage(size_t n, size_t k)
{
    double coverage = 0.0;
    for (size_t j = k; j <= n - k; ++j)
        coverage += binomialHalfPmf(n, j);
    return coverage;
}

size_t
medianCiLowerK(size_t n, double level)
{
    // Find the symmetric order-statistic pair (k, n+1-k) with coverage
    // P(k <= B < n+1-k) >= level where B ~ Binomial(n, 1/2).
    // Start from the innermost pair and widen until coverage suffices.
    size_t k = n / 2; // 1-based lower index candidate
    while (k >= 1) {
        if (medianOrderCoverage(n, k) >= level)
            break;
        --k;
    }
    if (k < 1)
        k = 1;
    return k;
}

ConfidenceInterval
medianCiSorted(const std::vector<double> &sorted, double level)
{
    checkLevel(level);
    if (sorted.empty())
        throw std::invalid_argument("medianCi requires a non-empty sample");
    size_t n = sorted.size();
    if (n < 6) {
        // Too small for a meaningful order-statistic interval at the
        // requested level; report the sample range labelled with its
        // *actual* binomial coverage, P(X_(1) <= median <= X_(n)) =
        // 1 - 2 * (1/2)^n, rather than overstating it as `level`.
        double coverage =
            1.0 - std::pow(0.5, static_cast<double>(n) - 1.0);
        return {sorted.front(), sorted.back(), coverage};
    }

    size_t k = medianCiLowerK(n, level);
    size_t lower_idx = k - 1;          // 0-based
    size_t upper_idx = n - k;          // 0-based (n+1-k in 1-based)
    return {sorted[lower_idx], sorted[upper_idx], level};
}

ConfidenceInterval
medianCi(std::vector<double> x, double level)
{
    checkLevel(level);
    if (x.empty())
        throw std::invalid_argument("medianCi requires a non-empty sample");
    std::sort(x.begin(), x.end());
    return medianCiSorted(x, level);
}

ConfidenceInterval
geometricMeanCi(const std::vector<double> &x, double level)
{
    checkLevel(level);
    if (x.size() < 2)
        throw std::invalid_argument("geometricMeanCi requires n >= 2");
    std::vector<double> logs;
    logs.reserve(x.size());
    for (double v : x) {
        if (v <= 0.0) {
            throw std::invalid_argument(
                "geometricMeanCi requires positive values");
        }
        logs.push_back(std::log(v));
    }
    ConfidenceInterval log_ci = meanCi(logs, level);
    return {std::exp(log_ci.lower), std::exp(log_ci.upper), level};
}

QuantileCiIndices
quantileCiIndices(size_t n, double p, double level)
{
    checkLevel(level);
    if (!(p > 0.0 && p < 1.0))
        throw std::invalid_argument("quantileCi requires p in (0, 1)");
    if (n == 0)
        throw std::invalid_argument("quantileCi requires a sample");

    // Cumulative binomial probabilities F(k) = P(B <= k), B~Bin(n, p).
    // Both index scans below only ever read entries strictly before the
    // first one that reaches target_high, so the accumulation stops
    // there — the prefix computed is bit-identical to the full array.
    double target_high = 1.0 - (1.0 - level) / 2.0;
    std::vector<double> cum;
    cum.reserve(n);
    double acc = 0.0;
    for (size_t k = 0; k <= n; ++k) {
        acc += binomialPmf(n, k, p);
        cum.push_back(std::min(acc, 1.0));
        if (cum.back() >= target_high)
            break;
    }

    // Choose the smallest interval of order statistics [l+1, u] (1-based)
    // with P(l <= B < u) >= level, scanning symmetric-ish around n*p.
    double target_low = (1.0 - level) / 2.0;
    size_t lower_idx = 0;
    while (lower_idx < n && cum[lower_idx] < target_low)
        ++lower_idx;
    if (lower_idx > 0)
        --lower_idx;

    size_t upper_idx = lower_idx;
    while (upper_idx < n - 1 && cum[upper_idx] < target_high)
        ++upper_idx;

    return {lower_idx, upper_idx, cum.size()};
}

ConfidenceInterval
quantileCiSorted(const std::vector<double> &sorted, double p, double level)
{
    QuantileCiIndices idx = quantileCiIndices(sorted.size(), p, level);
    return {sorted[idx.lower], sorted[idx.upper], level};
}

ConfidenceInterval
quantileCi(std::vector<double> x, double p, double level)
{
    checkLevel(level);
    if (!(p > 0.0 && p < 1.0))
        throw std::invalid_argument("quantileCi requires p in (0, 1)");
    if (x.empty())
        throw std::invalid_argument("quantileCi requires a sample");
    std::sort(x.begin(), x.end());
    return quantileCiSorted(x, p, level);
}

} // namespace stats
} // namespace sharp
