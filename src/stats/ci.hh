/**
 * @file
 * Confidence intervals.
 *
 * The paper's CI stopping rule "stops when the 95% right-tailed
 * confidence interval of all run-time measurements is smaller than a
 * threshold proportion of mean". We provide two-sided and one-sided
 * (right-tailed) Student-t intervals on the mean, a distribution-free
 * order-statistic interval on the median, and a log-scale interval for
 * log-normal data (back-transformed to a CI on the geometric mean).
 */

#ifndef SHARP_STATS_CI_HH
#define SHARP_STATS_CI_HH

#include <cstddef>
#include <vector>

namespace sharp
{
namespace stats
{

/** A confidence interval [lower, upper] at the given confidence level. */
struct ConfidenceInterval
{
    double lower;
    double upper;
    double level;

    /** Interval width. */
    double width() const { return upper - lower; }

    /**
     * Width relative to |center|, the quantity the CI stopping rule
     * thresholds (0 when the center is 0).
     */
    double relativeWidth(double center) const;
};

/**
 * Two-sided Student-t CI on the mean. Requires n >= 2.
 * @param level confidence level in (0, 1), e.g. 0.95.
 */
ConfidenceInterval meanCi(const std::vector<double> &x, double level);

/**
 * Right-tailed CI on the mean: [mean, mean + t_{level} * SE]. The rule
 * compares its width (t * SE) against threshold * mean. Requires n >= 2.
 */
ConfidenceInterval meanCiRightTailed(const std::vector<double> &x,
                                     double level);

/**
 * Distribution-free CI on the median from binomial order statistics
 * (conservative: the smallest order-statistic interval with coverage
 * >= level). For n < 6 no symmetric pair reaches typical levels, so
 * the sample range is returned with `level` set to its actual
 * binomial coverage 1 - 2^(1-n) (e.g. 0.75 at n = 3) instead of the
 * requested level.
 */
ConfidenceInterval medianCi(std::vector<double> x, double level);

/** medianCi over an already-sorted sample (ascending). */
ConfidenceInterval medianCiSorted(const std::vector<double> &sorted,
                                  double level);

/**
 * Coverage of the symmetric order-statistic pair (k, n+1-k) for the
 * median, P(k <= B <= n-k) with B ~ Binomial(n, 1/2), summed in the
 * exact term order medianCi uses. Exposed so incremental callers
 * (core::StatsCache) can warm-start the k search yet verify against
 * the identical batch arithmetic.
 */
double medianOrderCoverage(size_t n, size_t k);

/**
 * The 1-based lower order-statistic index k chosen by medianCi's
 * descending scan: the largest k in [1, n/2] whose coverage reaches
 * @p level, or 1 if none does. Requires n >= 6.
 */
size_t medianCiLowerK(size_t n, double level);

/**
 * CI on the geometric mean via a t-interval on log-values,
 * back-transformed; appropriate for log-normal run times.
 * Requires all values > 0 and n >= 2.
 */
ConfidenceInterval geometricMeanCi(const std::vector<double> &x,
                                   double level);

/**
 * CI on an arbitrary quantile @p p via binomial order statistics.
 * Used by the tail-stability stopping rule (e.g. p = 0.99).
 */
ConfidenceInterval quantileCi(std::vector<double> x, double p,
                              double level);

/** quantileCi over an already-sorted sample (ascending). */
ConfidenceInterval quantileCiSorted(const std::vector<double> &sorted,
                                    double p, double level);

/**
 * The 0-based order-statistic indices quantileCi selects, plus the
 * number of binomial PMF terms evaluated to find them. Pure function
 * of (n, p, level) — no sample needed — so incremental callers can
 * pick order statistics out of a sorted view without re-sorting.
 */
struct QuantileCiIndices
{
    size_t lower;
    size_t upper;
    size_t pmfTerms;
};

QuantileCiIndices quantileCiIndices(size_t n, double p, double level);

} // namespace stats
} // namespace sharp

#endif // SHARP_STATS_CI_HH
