#include "stats/descriptive.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simd/dispatch.hh"
#include "util/string_utils.hh"

namespace sharp
{
namespace stats
{

namespace
{

void
requireNonEmpty(const std::vector<double> &values, const char *who)
{
    if (values.empty())
        throw std::invalid_argument(std::string(who) +
                                    " requires a non-empty sample");
}

} // anonymous namespace

double
mean(const std::vector<double> &values)
{
    requireNonEmpty(values, "mean");
    // Pairwise-ish accumulation is overkill here; Kahan summation keeps
    // error bounded for the long series the launcher accumulates. The
    // loop lives in src/simd (every backend keeps the serial Kahan
    // recurrence, so the bits are backend-invariant).
    return simd::kernels().kahanSum(values.data(), values.size()) /
           static_cast<double>(values.size());
}

double
variance(const std::vector<double> &values)
{
    requireNonEmpty(values, "variance");
    size_t n = values.size();
    if (n < 2)
        return 0.0;
    double m = mean(values);
    double ss = simd::kernels().sumSquaredDeviations(values.data(), n, m);
    return ss / static_cast<double>(n - 1);
}

double
stddev(const std::vector<double> &values)
{
    return std::sqrt(variance(values));
}

double
geometricMean(const std::vector<double> &values)
{
    requireNonEmpty(values, "geometricMean");
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0) {
            throw std::invalid_argument(
                "geometricMean requires positive values");
        }
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
harmonicMean(const std::vector<double> &values)
{
    requireNonEmpty(values, "harmonicMean");
    double inv_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0) {
            throw std::invalid_argument(
                "harmonicMean requires positive values");
        }
        inv_sum += 1.0 / v;
    }
    return static_cast<double>(values.size()) / inv_sum;
}

double
quantileSorted(const std::vector<double> &sorted, double p)
{
    requireNonEmpty(sorted, "quantile");
    if (p < 0.0 || p > 1.0)
        throw std::invalid_argument("quantile requires p in [0, 1]");
    size_t n = sorted.size();
    if (n == 1)
        return sorted[0];
    double h = (static_cast<double>(n) - 1.0) * p;
    size_t lo = static_cast<size_t>(std::floor(h));
    size_t hi = std::min(lo + 1, n - 1);
    double frac = h - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double
quantile(std::vector<double> values, double p)
{
    requireNonEmpty(values, "quantile");
    std::sort(values.begin(), values.end());
    return quantileSorted(values, p);
}

double
median(std::vector<double> values)
{
    return quantile(std::move(values), 0.5);
}

double
iqrSorted(const std::vector<double> &sorted)
{
    requireNonEmpty(sorted, "iqr");
    return quantileSorted(sorted, 0.75) - quantileSorted(sorted, 0.25);
}

double
iqr(std::vector<double> values)
{
    requireNonEmpty(values, "iqr");
    std::sort(values.begin(), values.end());
    return iqrSorted(values);
}

double
medianAbsoluteDeviationSorted(const std::vector<double> &sorted)
{
    requireNonEmpty(sorted, "medianAbsoluteDeviation");
    double med = quantileSorted(sorted, 0.5);
    std::vector<double> deviations;
    deviations.reserve(sorted.size());
    for (double v : sorted)
        deviations.push_back(std::fabs(v - med));
    std::sort(deviations.begin(), deviations.end());
    return quantileSorted(deviations, 0.5);
}

double
medianAbsoluteDeviation(std::vector<double> values)
{
    requireNonEmpty(values, "medianAbsoluteDeviation");
    // One in-place sort serves both the median and the deviation pass,
    // where this used to copy-and-sort twice inside median().
    std::sort(values.begin(), values.end());
    return medianAbsoluteDeviationSorted(values);
}

double
trimmedMean(std::vector<double> values, double trim)
{
    requireNonEmpty(values, "trimmedMean");
    if (trim < 0.0 || trim >= 0.5)
        throw std::invalid_argument("trimmedMean requires trim in [0, 0.5)");
    std::sort(values.begin(), values.end());
    size_t n = values.size();
    size_t cut = static_cast<size_t>(
        std::floor(trim * static_cast<double>(n)));
    if (2 * cut >= n)
        cut = (n - 1) / 2;
    double sum = 0.0;
    for (size_t i = cut; i < n - cut; ++i)
        sum += values[i];
    return sum / static_cast<double>(n - 2 * cut);
}

double
skewness(const std::vector<double> &values)
{
    requireNonEmpty(values, "skewness");
    size_t n = values.size();
    if (n < 3)
        return 0.0;
    double m = mean(values);
    double m2 = 0.0, m3 = 0.0;
    for (double v : values) {
        double d = v - m;
        m2 += d * d;
        m3 += d * d * d;
    }
    double nd = static_cast<double>(n);
    m2 /= nd;
    m3 /= nd;
    if (m2 <= 0.0)
        return 0.0;
    double g1 = m3 / std::pow(m2, 1.5);
    return g1 * std::sqrt(nd * (nd - 1.0)) / (nd - 2.0);
}

double
excessKurtosis(const std::vector<double> &values)
{
    requireNonEmpty(values, "excessKurtosis");
    size_t n = values.size();
    if (n < 4)
        return 0.0;
    double m = mean(values);
    double m2 = 0.0, m4 = 0.0;
    for (double v : values) {
        double d = v - m;
        double d2 = d * d;
        m2 += d2;
        m4 += d2 * d2;
    }
    double nd = static_cast<double>(n);
    m2 /= nd;
    m4 /= nd;
    if (m2 <= 0.0)
        return 0.0;
    double g2 = m4 / (m2 * m2) - 3.0;
    return ((nd + 1.0) * g2 + 6.0) * (nd - 1.0) / ((nd - 2.0) * (nd - 3.0));
}

double
coefficientOfVariation(const std::vector<double> &values)
{
    requireNonEmpty(values, "coefficientOfVariation");
    double m = mean(values);
    if (m == 0.0)
        return 0.0;
    return stddev(values) / std::fabs(m);
}

double
standardError(const std::vector<double> &values)
{
    requireNonEmpty(values, "standardError");
    return stddev(values) / std::sqrt(static_cast<double>(values.size()));
}

Summary
Summary::compute(const std::vector<double> &values)
{
    requireNonEmpty(values, "Summary::compute");
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    return compute(values, sorted);
}

Summary
Summary::compute(const std::vector<double> &values,
                 const std::vector<double> &sorted)
{
    requireNonEmpty(values, "Summary::compute");

    Summary s;
    s.n = values.size();
    // One Kahan pass for the mean and one deviation pass for the
    // spread; CV and SE are derived from those instead of re-running
    // the same loops three more times. skewness/excessKurtosis keep
    // their own calls so their accumulation order (and therefore their
    // bits) stay exactly those of the standalone functions.
    s.mean = sharp::stats::mean(values);
    s.stddev = sharp::stats::stddev(values);
    s.min = sorted.front();
    s.max = sorted.back();
    s.median = quantileSorted(sorted, 0.5);
    s.q1 = quantileSorted(sorted, 0.25);
    s.q3 = quantileSorted(sorted, 0.75);
    s.p05 = quantileSorted(sorted, 0.05);
    s.p95 = quantileSorted(sorted, 0.95);
    s.p99 = quantileSorted(sorted, 0.99);
    s.skewness = sharp::stats::skewness(values);
    s.excessKurtosis = sharp::stats::excessKurtosis(values);
    s.coefficientOfVariation =
        s.mean == 0.0 ? 0.0 : s.stddev / std::fabs(s.mean);
    s.standardError =
        s.stddev / std::sqrt(static_cast<double>(values.size()));
    return s;
}

std::string
Summary::toString() const
{
    using util::formatDouble;
    return "n=" + std::to_string(n) + " mean=" + formatDouble(mean, 4) +
           " sd=" + formatDouble(stddev, 4) +
           " median=" + formatDouble(median, 4) +
           " [" + formatDouble(min, 4) + ", " + formatDouble(max, 4) + "]";
}

} // namespace stats
} // namespace sharp
