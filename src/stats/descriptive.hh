/**
 * @file
 * Descriptive statistics: quantiles and the Summary structure that the
 * Reporter attaches to every metric. The paper's thesis is that point
 * summaries are *insufficient*, not useless — SHARP still reports them
 * alongside the distribution-level artifacts.
 */

#ifndef SHARP_STATS_DESCRIPTIVE_HH
#define SHARP_STATS_DESCRIPTIVE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace sharp
{
namespace stats
{

/** Arithmetic mean. @p values must be non-empty. */
double mean(const std::vector<double> &values);

/** Sample variance (n-1 denominator); 0 for n < 2. */
double variance(const std::vector<double> &values);

/** Sample standard deviation. */
double stddev(const std::vector<double> &values);

/** Geometric mean; requires all values > 0. */
double geometricMean(const std::vector<double> &values);

/** Harmonic mean; requires all values > 0. */
double harmonicMean(const std::vector<double> &values);

/**
 * Quantile with linear interpolation between order statistics
 * (Hyndman–Fan type 7, the R default). @p p in [0, 1].
 */
double quantile(std::vector<double> values, double p);

/** Quantile of already-sorted data (type 7). */
double quantileSorted(const std::vector<double> &sorted, double p);

/** Median (type-7 quantile at p = 0.5). */
double median(std::vector<double> values);

/** Interquartile range Q3 - Q1. */
double iqr(std::vector<double> values);

/** IQR of already-sorted data. */
double iqrSorted(const std::vector<double> &sorted);

/** Median absolute deviation (unscaled). */
double medianAbsoluteDeviation(std::vector<double> values);

/**
 * MAD of already-sorted data. The deviations still need their own
 * sort, but the input's is shared with whatever else the caller
 * computes from the same sorted pass.
 */
double medianAbsoluteDeviationSorted(const std::vector<double> &sorted);

/** Trimmed mean discarding fraction @p trim from each tail. */
double trimmedMean(std::vector<double> values, double trim);

/** Sample skewness (adjusted Fisher–Pearson, g1 * correction). */
double skewness(const std::vector<double> &values);

/** Excess kurtosis (sample, bias-adjusted). */
double excessKurtosis(const std::vector<double> &values);

/** Coefficient of variation sd/|mean|; 0 when mean is 0. */
double coefficientOfVariation(const std::vector<double> &values);

/** Standard error of the mean, sd/sqrt(n). */
double standardError(const std::vector<double> &values);

/**
 * Full descriptive summary of one sample, as emitted by the Reporter.
 */
struct Summary
{
    size_t n = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
    double q1 = 0.0;
    double q3 = 0.0;
    double p05 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double skewness = 0.0;
    double excessKurtosis = 0.0;
    double coefficientOfVariation = 0.0;
    double standardError = 0.0;

    /** Compute a summary; @p values must be non-empty. */
    static Summary compute(const std::vector<double> &values);

    /**
     * Compute a summary when the caller already holds the sample
     * sorted ascending (same multiset as @p values), skipping the
     * internal copy-and-sort.
     */
    static Summary compute(const std::vector<double> &values,
                           const std::vector<double> &sorted);

    /** One-line rendering, e.g. for log output. */
    std::string toString() const;
};

} // namespace stats
} // namespace sharp

#endif // SHARP_STATS_DESCRIPTIVE_HH
