#include "stats/ecdf.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simd/dispatch.hh"

namespace sharp
{
namespace stats
{

Ecdf::Ecdf(std::vector<double> sample) : sorted(std::move(sample))
{
    if (sorted.empty())
        throw std::invalid_argument("Ecdf requires a non-empty sample");
    std::sort(sorted.begin(), sorted.end());
}

double
Ecdf::operator()(double x) const
{
    auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    return static_cast<double>(it - sorted.begin()) /
           static_cast<double>(sorted.size());
}

double
Ecdf::inverse(double p) const
{
    if (p < 0.0 || p > 1.0)
        throw std::invalid_argument("Ecdf::inverse requires p in [0, 1]");
    if (p == 0.0)
        return sorted.front();
    double idx = std::ceil(p * static_cast<double>(sorted.size())) - 1.0;
    size_t i = static_cast<size_t>(std::max(0.0, idx));
    return sorted[std::min(i, sorted.size() - 1)];
}

// The two-sample KS walks (the double-precision reference and the
// integer-guard single-step fast path it specifies) live in src/simd
// as dispatchable kernels: scalar.cc holds the former anonymous-
// namespace implementations verbatim, and the vector backends batch
// the same walk over tie-group runs. Every backend is bit-identical
// to the scalar kernel by contract (tests/test_simd.cc).

double
ksStatistic(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.empty() || b.empty())
        throw std::invalid_argument("ksStatistic requires non-empty samples");
    std::vector<double> sa = a, sb = b;
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    return simd::kernels().ksSorted(sa.data(), sa.size(), sb.data(),
                                    sb.size());
}

double
ksStatistic(const Ecdf &a, const Ecdf &b)
{
    return ksStatisticSorted(a.sortedSample(), b.sortedSample());
}

double
ksStatisticSorted(const std::vector<double> &a,
                  const std::vector<double> &b)
{
    if (a.empty() || b.empty())
        throw std::invalid_argument("ksStatistic requires non-empty samples");
    return simd::kernels().ksSorted(a.data(), a.size(), b.data(),
                                    b.size());
}

double
ksStatisticSortedReference(const std::vector<double> &a,
                           const std::vector<double> &b)
{
    if (a.empty() || b.empty())
        throw std::invalid_argument("ksStatistic requires non-empty samples");
    return simd::ksSortedReference(a.data(), a.size(), b.data(),
                                   b.size());
}

double
ksStatisticAgainstSorted(const std::vector<double> &sorted,
                         const std::function<double(double)> &cdf)
{
    if (sorted.empty())
        throw std::invalid_argument(
            "ksStatisticAgainst requires a non-empty sample");
    size_t n = sorted.size();
    double nd = static_cast<double>(n);
    double sup = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double f = cdf(sorted[i]);
        double upper = static_cast<double>(i + 1) / nd - f;
        double lower = f - static_cast<double>(i) / nd;
        sup = std::max({sup, upper, lower});
    }
    return sup;
}

double
ksStatisticAgainst(const std::vector<double> &sample,
                   const std::function<double(double)> &cdf)
{
    if (sample.empty())
        throw std::invalid_argument(
            "ksStatisticAgainst requires a non-empty sample");
    std::vector<double> sorted = sample;
    std::sort(sorted.begin(), sorted.end());
    return ksStatisticAgainstSorted(sorted, cdf);
}

} // namespace stats
} // namespace sharp
