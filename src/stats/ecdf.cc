#include "stats/ecdf.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sharp
{
namespace stats
{

Ecdf::Ecdf(std::vector<double> sample) : sorted(std::move(sample))
{
    if (sorted.empty())
        throw std::invalid_argument("Ecdf requires a non-empty sample");
    std::sort(sorted.begin(), sorted.end());
}

double
Ecdf::operator()(double x) const
{
    auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    return static_cast<double>(it - sorted.begin()) /
           static_cast<double>(sorted.size());
}

double
Ecdf::inverse(double p) const
{
    if (p < 0.0 || p > 1.0)
        throw std::invalid_argument("Ecdf::inverse requires p in [0, 1]");
    if (p == 0.0)
        return sorted.front();
    double idx = std::ceil(p * static_cast<double>(sorted.size())) - 1.0;
    size_t i = static_cast<size_t>(std::max(0.0, idx));
    return sorted[std::min(i, sorted.size() - 1)];
}

namespace
{

/**
 * Reference walk: step both ECDFs past each distinct value and track
 * the supremum in doubles at every tie-group boundary. Kept as the
 * fallback for sample sizes where the integer-scaled fast path could
 * overflow, and as the executable specification the fast path must
 * reproduce bit for bit.
 */
double
ksSortedReference(const std::vector<double> &a, const std::vector<double> &b)
{
    size_t na = a.size(), nb = b.size();
    size_t ia = 0, ib = 0;
    double fa = 0.0, fb = 0.0;
    double sup = 0.0;
    while (ia < na && ib < nb) {
        double va = a[ia], vb = b[ib];
        double v = std::min(va, vb);
        // Step both ECDFs past all observations equal to v so ties are
        // handled exactly.
        while (ia < na && a[ia] == v)
            ++ia;
        while (ib < nb && b[ib] == v)
            ++ib;
        fa = static_cast<double>(ia) / static_cast<double>(na);
        fb = static_cast<double>(ib) / static_cast<double>(nb);
        sup = std::max(sup, std::fabs(fa - fb));
    }
    // After one sample is exhausted its ECDF is 1; the gap can only
    // shrink toward the final point where both reach 1, except at the
    // first unprocessed point of the other sample.
    if (ia < na)
        sup = std::max(sup, std::fabs(1.0 - fb));
    if (ib < nb)
        sup = std::max(sup, std::fabs(fa - 1.0));
    return sup;
}

double
ksSorted(const std::vector<double> &a, const std::vector<double> &b)
{
    size_t na = a.size(), nb = b.size();
    if (na > (size_t{1} << 31) || nb > (size_t{1} << 31))
        return ksSortedReference(a, b);

    // Single-step merge with an integer guard. The ECDF gap at a merge
    // point is |ia/na - ib/nb|; scaled by na*nb it is the integer
    // |ia*nb - ib*na|, maintained here as a running sum (+nb per a
    // element, -na per b element). Distinct integer values are at
    // least 1/(na*nb) apart as reals, which dwarfs the rounding of the
    // two divisions, so the integer order strictly dominates the
    // double order: every point achieving the double supremum ties the
    // integer maximum. The double expression of the reference walk is
    // evaluated only when the integer maximum is reached (>=, so ties
    // are never skipped), at tie-group boundaries only — yielding a
    // bit-identical supremum while skipping two divisions and a
    // hard-to-predict tie loop at almost every point.
    size_t ia = 0, ib = 0;
    const long long lna = static_cast<long long>(na);
    const long long lnb = static_cast<long long>(nb);
    long long cum = 0, best = 0;
    double sup = 0.0;
    double v = 0.0;
    while (ia < na && ib < nb) {
        double va = a[ia], vb = b[ib];
        bool take_a = va <= vb;
        v = take_a ? va : vb;
        ia += take_a ? 1 : 0;
        ib += take_a ? 0 : 1;
        cum += take_a ? lnb : -lna;
        // Evaluate only once the whole tie group is consumed: the
        // reference walk's merge points are tie-group boundaries, and
        // mid-group gaps may exceed every boundary gap.
        if ((ia >= na || a[ia] != v) && (ib >= nb || b[ib] != v)) {
            long long gap = cum < 0 ? -cum : cum;
            if (gap >= best) {
                best = gap;
                double fa =
                    static_cast<double>(ia) / static_cast<double>(na);
                double fb =
                    static_cast<double>(ib) / static_cast<double>(nb);
                sup = std::max(sup, std::fabs(fa - fb));
            }
        }
    }
    // If one side ran out mid-group, finish the group and evaluate its
    // boundary; re-evaluating an already-scored point is idempotent.
    while (ia < na && a[ia] == v) {
        ++ia;
        cum += lnb;
    }
    while (ib < nb && b[ib] == v) {
        ++ib;
        cum -= lna;
    }
    {
        long long gap = cum < 0 ? -cum : cum;
        if (gap >= best) {
            double fa = static_cast<double>(ia) / static_cast<double>(na);
            double fb = static_cast<double>(ib) / static_cast<double>(nb);
            sup = std::max(sup, std::fabs(fa - fb));
        }
    }
    // After one sample is exhausted its ECDF is 1; the gap can only
    // shrink toward the final point where both reach 1, except at the
    // first unprocessed point of the other sample.
    if (ia < na) {
        double fb = static_cast<double>(ib) / static_cast<double>(nb);
        sup = std::max(sup, std::fabs(1.0 - fb));
    }
    if (ib < nb) {
        double fa = static_cast<double>(ia) / static_cast<double>(na);
        sup = std::max(sup, std::fabs(fa - 1.0));
    }
    return sup;
}

} // anonymous namespace

double
ksStatistic(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.empty() || b.empty())
        throw std::invalid_argument("ksStatistic requires non-empty samples");
    std::vector<double> sa = a, sb = b;
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    return ksSorted(sa, sb);
}

double
ksStatistic(const Ecdf &a, const Ecdf &b)
{
    return ksSorted(a.sortedSample(), b.sortedSample());
}

double
ksStatisticSorted(const std::vector<double> &a,
                  const std::vector<double> &b)
{
    if (a.empty() || b.empty())
        throw std::invalid_argument("ksStatistic requires non-empty samples");
    return ksSorted(a, b);
}

double
ksStatisticSortedReference(const std::vector<double> &a,
                           const std::vector<double> &b)
{
    if (a.empty() || b.empty())
        throw std::invalid_argument("ksStatistic requires non-empty samples");
    return ksSortedReference(a, b);
}

double
ksStatisticAgainstSorted(const std::vector<double> &sorted,
                         const std::function<double(double)> &cdf)
{
    if (sorted.empty())
        throw std::invalid_argument(
            "ksStatisticAgainst requires a non-empty sample");
    size_t n = sorted.size();
    double nd = static_cast<double>(n);
    double sup = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double f = cdf(sorted[i]);
        double upper = static_cast<double>(i + 1) / nd - f;
        double lower = f - static_cast<double>(i) / nd;
        sup = std::max({sup, upper, lower});
    }
    return sup;
}

double
ksStatisticAgainst(const std::vector<double> &sample,
                   const std::function<double(double)> &cdf)
{
    if (sample.empty())
        throw std::invalid_argument(
            "ksStatisticAgainst requires a non-empty sample");
    std::vector<double> sorted = sample;
    std::sort(sorted.begin(), sorted.end());
    return ksStatisticAgainstSorted(sorted, cdf);
}

} // namespace stats
} // namespace sharp
