#include "stats/ecdf.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sharp
{
namespace stats
{

Ecdf::Ecdf(std::vector<double> sample) : sorted(std::move(sample))
{
    if (sorted.empty())
        throw std::invalid_argument("Ecdf requires a non-empty sample");
    std::sort(sorted.begin(), sorted.end());
}

double
Ecdf::operator()(double x) const
{
    auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    return static_cast<double>(it - sorted.begin()) /
           static_cast<double>(sorted.size());
}

double
Ecdf::inverse(double p) const
{
    if (p < 0.0 || p > 1.0)
        throw std::invalid_argument("Ecdf::inverse requires p in [0, 1]");
    if (p == 0.0)
        return sorted.front();
    double idx = std::ceil(p * static_cast<double>(sorted.size())) - 1.0;
    size_t i = static_cast<size_t>(std::max(0.0, idx));
    return sorted[std::min(i, sorted.size() - 1)];
}

namespace
{

double
ksSorted(const std::vector<double> &a, const std::vector<double> &b)
{
    size_t na = a.size(), nb = b.size();
    size_t ia = 0, ib = 0;
    double fa = 0.0, fb = 0.0;
    double sup = 0.0;
    while (ia < na && ib < nb) {
        double va = a[ia], vb = b[ib];
        double v = std::min(va, vb);
        // Step both ECDFs past all observations equal to v so ties are
        // handled exactly.
        while (ia < na && a[ia] == v)
            ++ia;
        while (ib < nb && b[ib] == v)
            ++ib;
        fa = static_cast<double>(ia) / static_cast<double>(na);
        fb = static_cast<double>(ib) / static_cast<double>(nb);
        sup = std::max(sup, std::fabs(fa - fb));
    }
    // After one sample is exhausted its ECDF is 1; the gap can only
    // shrink toward the final point where both reach 1, except at the
    // first unprocessed point of the other sample.
    if (ia < na)
        sup = std::max(sup, std::fabs(1.0 - fb));
    if (ib < nb)
        sup = std::max(sup, std::fabs(fa - 1.0));
    return sup;
}

} // anonymous namespace

double
ksStatistic(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.empty() || b.empty())
        throw std::invalid_argument("ksStatistic requires non-empty samples");
    std::vector<double> sa = a, sb = b;
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    return ksSorted(sa, sb);
}

double
ksStatistic(const Ecdf &a, const Ecdf &b)
{
    return ksSorted(a.sortedSample(), b.sortedSample());
}

double
ksStatisticAgainst(const std::vector<double> &sample,
                   const std::function<double(double)> &cdf)
{
    if (sample.empty())
        throw std::invalid_argument(
            "ksStatisticAgainst requires a non-empty sample");
    std::vector<double> sorted = sample;
    std::sort(sorted.begin(), sorted.end());
    size_t n = sorted.size();
    double nd = static_cast<double>(n);
    double sup = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double f = cdf(sorted[i]);
        double upper = static_cast<double>(i + 1) / nd - f;
        double lower = f - static_cast<double>(i) / nd;
        sup = std::max({sup, upper, lower});
    }
    return sup;
}

} // namespace stats
} // namespace sharp
