/**
 * @file
 * Empirical cumulative distribution function — the central artifact of
 * SHARP's distribution-based comparisons: the KS statistic is a supremum
 * distance between two of these.
 */

#ifndef SHARP_STATS_ECDF_HH
#define SHARP_STATS_ECDF_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace sharp
{
namespace stats
{

/**
 * Right-continuous ECDF over a sample: F(x) = #{x_i <= x} / n.
 */
class Ecdf
{
  public:
    /** Build from a sample (copied and sorted). Must be non-empty. */
    explicit Ecdf(std::vector<double> sample);

    /** Evaluate F(x). */
    double operator()(double x) const;

    /** Inverse ECDF: smallest sample value with F(value) >= p. */
    double inverse(double p) const;

    /** Number of underlying observations. */
    size_t size() const { return sorted.size(); }

    /** The sorted sample (ascending). */
    const std::vector<double> &sortedSample() const { return sorted; }

  private:
    std::vector<double> sorted;
};

/**
 * Two-sample Kolmogorov–Smirnov statistic:
 * sup_x |F1(x) - F2(x)|, computed exactly by a linear merge of the two
 * sorted samples. This is the paper's distribution similarity metric
 * and the basis of the KS stopping rule.
 *
 * Both samples must be non-empty.
 */
double ksStatistic(const std::vector<double> &a,
                   const std::vector<double> &b);

/** KS statistic over pre-built ECDFs. */
double ksStatistic(const Ecdf &a, const Ecdf &b);

/**
 * KS statistic over two already-sorted samples (ascending) — the
 * linear merge walk with no copying or sorting. This is the form the
 * incremental statistics engine (core::StatsCache) evaluates against
 * its maintained sorted runs; bit-identical to ksStatistic on the same
 * multisets.
 */
double ksStatisticSorted(const std::vector<double> &a,
                         const std::vector<double> &b);

/**
 * Reference implementation of the two-sample sorted walk: evaluates the
 * ECDF gap in doubles at every tie-group boundary. ksStatisticSorted's
 * integer-guarded fast path must agree with this bit for bit (the
 * equivalence property tests enforce it); it is also the fallback for
 * samples too large for the integer scaling.
 */
double ksStatisticSortedReference(const std::vector<double> &a,
                                  const std::vector<double> &b);

/**
 * One-sample Kolmogorov–Smirnov statistic against a theoretical CDF:
 * sup_x |F_n(x) - F(x)|. Used by the distribution classifier to score
 * candidate parametric fits. @p cdf must be non-decreasing into [0, 1].
 */
double ksStatisticAgainst(const std::vector<double> &sample,
                          const std::function<double(double)> &cdf);

/** One-sample KS over an already-sorted sample (ascending). */
double ksStatisticAgainstSorted(const std::vector<double> &sorted,
                                const std::function<double(double)> &cdf);

} // namespace stats
} // namespace sharp

#endif // SHARP_STATS_ECDF_HH
