#include "stats/effect_size.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/descriptive.hh"

namespace sharp
{
namespace stats
{

double
cohensD(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() < 2 || y.size() < 2)
        throw std::invalid_argument("cohensD requires n >= 2 per sample");
    double nx = static_cast<double>(x.size());
    double ny = static_cast<double>(y.size());
    double pooled_var = ((nx - 1.0) * variance(x) +
                         (ny - 1.0) * variance(y)) /
                        (nx + ny - 2.0);
    double diff = mean(x) - mean(y);
    if (pooled_var <= 0.0)
        return diff == 0.0 ? 0.0
                           : std::copysign(
                                 std::numeric_limits<double>::infinity(),
                                 diff);
    return diff / std::sqrt(pooled_var);
}

double
hedgesG(const std::vector<double> &x, const std::vector<double> &y)
{
    double d = cohensD(x, y);
    double dof =
        static_cast<double>(x.size() + y.size()) - 2.0;
    // Hedges' correction factor J ~ 1 - 3/(4 dof - 1).
    double correction = 1.0 - 3.0 / (4.0 * dof - 1.0);
    return d * correction;
}

namespace
{

/**
 * Count, for each y, how many x are smaller / equal, via sorted x and
 * binary search; yields sum over pairs of sign(x - y) in
 * O((n+m) log n).
 */
void
pairCounts(const std::vector<double> &x, const std::vector<double> &y,
           double &greater, double &less, double &equal)
{
    std::vector<double> sorted = x;
    std::sort(sorted.begin(), sorted.end());
    greater = less = equal = 0.0;
    for (double v : y) {
        auto lo = std::lower_bound(sorted.begin(), sorted.end(), v);
        auto hi = std::upper_bound(sorted.begin(), sorted.end(), v);
        double below = static_cast<double>(lo - sorted.begin());
        double ties = static_cast<double>(hi - lo);
        double above = static_cast<double>(sorted.end() - hi);
        greater += above; // x > y pairs
        less += below;    // x < y pairs
        equal += ties;
    }
}

} // anonymous namespace

double
cliffsDelta(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.empty() || y.empty())
        throw std::invalid_argument(
            "cliffsDelta requires non-empty samples");
    double greater, less, equal;
    pairCounts(x, y, greater, less, equal);
    double pairs = static_cast<double>(x.size()) *
                   static_cast<double>(y.size());
    (void)equal;
    return (greater - less) / pairs;
}

double
commonLanguageEffect(const std::vector<double> &x,
                     const std::vector<double> &y)
{
    if (x.empty() || y.empty())
        throw std::invalid_argument(
            "commonLanguageEffect requires non-empty samples");
    double greater, less, equal;
    pairCounts(x, y, greater, less, equal);
    double pairs = static_cast<double>(x.size()) *
                   static_cast<double>(y.size());
    (void)less;
    return (greater + 0.5 * equal) / pairs;
}

const char *
cliffsDeltaMagnitude(double delta)
{
    double mag = std::fabs(delta);
    if (mag < 0.147)
        return "negligible";
    if (mag < 0.33)
        return "small";
    if (mag < 0.474)
        return "medium";
    return "large";
}

} // namespace stats
} // namespace sharp
