/**
 * @file
 * Effect sizes for two-sample comparisons.
 *
 * Hypothesis tests answer "is there a difference?"; with enough runs
 * the answer is almost always yes. Effect sizes answer "how big is
 * it?" — the question a hardware-purchase decision actually needs.
 * The Reporter attaches these alongside the similarity metrics:
 *
 *  - Cohen's d / Hedges' g: standardized mean difference (parametric);
 *  - Cliff's delta: P(X > Y) - P(X < Y), rank-based, robust to
 *    non-normality and directly interpretable for run times;
 *  - common-language effect size: P(a random X exceeds a random Y).
 */

#ifndef SHARP_STATS_EFFECT_SIZE_HH
#define SHARP_STATS_EFFECT_SIZE_HH

#include <string>
#include <vector>

namespace sharp
{
namespace stats
{

/**
 * Cohen's d with the pooled standard deviation. Positive when x's
 * mean exceeds y's. Requires n >= 2 per sample; 0 when both samples
 * have zero variance and equal means.
 */
double cohensD(const std::vector<double> &x,
               const std::vector<double> &y);

/** Hedges' g: Cohen's d with the small-sample bias correction. */
double hedgesG(const std::vector<double> &x,
               const std::vector<double> &y);

/**
 * Cliff's delta in [-1, 1]: +1 when every x exceeds every y, 0 when
 * the samples are stochastically equal. Computed exactly in
 * O((n+m) log(n+m)).
 */
double cliffsDelta(const std::vector<double> &x,
                   const std::vector<double> &y);

/** Common-language effect size P(X > Y) + 0.5 P(X = Y), in [0, 1]. */
double commonLanguageEffect(const std::vector<double> &x,
                            const std::vector<double> &y);

/**
 * Conventional magnitude label for |Cliff's delta|:
 * negligible (< .147), small (< .33), medium (< .474), large.
 */
const char *cliffsDeltaMagnitude(double delta);

} // namespace stats
} // namespace sharp

#endif // SHARP_STATS_EFFECT_SIZE_HH
