#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hh"

namespace sharp
{
namespace stats
{

const char *
binRuleName(BinRule rule)
{
    switch (rule) {
      case BinRule::Sturges: return "sturges";
      case BinRule::FreedmanDiaconis: return "freedman-diaconis";
      case BinRule::Scott: return "scott";
      case BinRule::SturgesFdMin: return "min(sturges, freedman-diaconis)";
    }
    return "unknown";
}

namespace
{

double
sturgesWidth(const std::vector<double> &values)
{
    auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    double range = *mx - *mn;
    if (range <= 0.0)
        return 0.0;
    double bins =
        std::ceil(std::log2(static_cast<double>(values.size()))) + 1.0;
    return range / bins;
}

double
fdWidth(const std::vector<double> &values)
{
    double spread = iqr(values);
    if (spread <= 0.0)
        return 0.0;
    return 2.0 * spread /
           std::cbrt(static_cast<double>(values.size()));
}

double
scottWidth(const std::vector<double> &values)
{
    double sd = stddev(values);
    if (sd <= 0.0)
        return 0.0;
    return 3.49 * sd / std::cbrt(static_cast<double>(values.size()));
}

} // anonymous namespace

double
binWidth(const std::vector<double> &values, BinRule rule)
{
    if (values.empty())
        throw std::invalid_argument("binWidth requires a non-empty sample");

    double sturges = sturgesWidth(values);
    switch (rule) {
      case BinRule::Sturges:
        return sturges;
      case BinRule::FreedmanDiaconis: {
        double fd = fdWidth(values);
        return fd > 0.0 ? fd : sturges;
      }
      case BinRule::Scott: {
        double scott = scottWidth(values);
        return scott > 0.0 ? scott : sturges;
      }
      case BinRule::SturgesFdMin: {
        double fd = fdWidth(values);
        if (fd <= 0.0)
            return sturges;
        if (sturges <= 0.0)
            return fd;
        return std::min(sturges, fd);
      }
    }
    return sturges;
}

Histogram
Histogram::build(const std::vector<double> &values, BinRule rule)
{
    if (values.empty())
        throw std::invalid_argument("Histogram requires a non-empty sample");
    double w = binWidth(values, rule);
    auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    double range = *mx - *mn;
    size_t bins = 1;
    if (w > 0.0 && range > 0.0)
        bins = static_cast<size_t>(std::ceil(range / w));
    // Guard against pathological widths producing absurd bin counts.
    bins = std::clamp<size_t>(bins, 1, 100000);
    return buildWithBins(values, bins);
}

Histogram
Histogram::buildWithBins(const std::vector<double> &values, size_t bins)
{
    if (values.empty())
        throw std::invalid_argument("Histogram requires a non-empty sample");
    if (bins == 0)
        throw std::invalid_argument("Histogram requires at least one bin");

    auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    Histogram h;
    h.lo = *mn;
    h.hi = *mx;
    h.total = values.size();
    if (h.hi <= h.lo) {
        h.counts.assign(1, values.size());
        h.binW = 0.0;
        return h;
    }
    h.counts.assign(bins, 0);
    h.binW = (h.hi - h.lo) / static_cast<double>(bins);
    for (double v : values) {
        size_t idx = static_cast<size_t>((v - h.lo) / h.binW);
        if (idx >= bins)
            idx = bins - 1; // v == hi lands in the last bin.
        ++h.counts[idx];
    }
    return h;
}

double
Histogram::center(size_t index) const
{
    if (binW <= 0.0)
        return lo;
    return lo + (static_cast<double>(index) + 0.5) * binW;
}

double
Histogram::density(size_t index) const
{
    if (total == 0 || binW <= 0.0)
        return 0.0;
    return static_cast<double>(counts.at(index)) /
           (static_cast<double>(total) * binW);
}

std::vector<double>
Histogram::probabilities() const
{
    std::vector<double> probs(counts.size(), 0.0);
    if (total == 0)
        return probs;
    for (size_t i = 0; i < counts.size(); ++i) {
        probs[i] = static_cast<double>(counts[i]) /
                   static_cast<double>(total);
    }
    return probs;
}

} // namespace stats
} // namespace sharp
