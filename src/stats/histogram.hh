/**
 * @file
 * Histograms with the binning rules the paper uses for Fig. 4:
 * "We choose the histogram bin size as the minimum bin width between
 * the Sturges method and the Freedman-Diaconis rule."
 */

#ifndef SHARP_STATS_HISTOGRAM_HH
#define SHARP_STATS_HISTOGRAM_HH

#include <cstddef>
#include <string>
#include <vector>

namespace sharp
{
namespace stats
{

/** Bin-width selection rules. */
enum class BinRule
{
    Sturges,         ///< ceil(log2 n) + 1 bins over the range.
    FreedmanDiaconis, ///< width = 2 * IQR / n^(1/3).
    Scott,           ///< width = 3.49 * sd / n^(1/3).
    SturgesFdMin,    ///< the paper's rule: min width of Sturges and FD.
};

/** Name of a bin rule, e.g. "freedman-diaconis". */
const char *binRuleName(BinRule rule);

/**
 * Compute the bin width prescribed by @p rule for @p values.
 * Falls back to Sturges when FD's IQR (or Scott's sd) is zero.
 * Values must be non-empty; returns 0 when all values are equal.
 */
double binWidth(const std::vector<double> &values, BinRule rule);

/**
 * A fixed-width histogram over [lo, hi] with counts per bin.
 */
class Histogram
{
  public:
    /**
     * Build a histogram of @p values using @p rule to pick bin width.
     * Degenerate samples (all equal) produce a single bin.
     */
    static Histogram build(const std::vector<double> &values, BinRule rule);

    /** Build with an explicit number of equal-width bins (>= 1). */
    static Histogram buildWithBins(const std::vector<double> &values,
                                   size_t bins);

    size_t numBins() const { return counts.size(); }
    double lowerBound() const { return lo; }
    double upperBound() const { return hi; }
    double width() const { return binW; }
    size_t totalCount() const { return total; }

    /** Count in bin @p index. */
    size_t count(size_t index) const { return counts.at(index); }

    /** All counts. */
    const std::vector<size_t> &allCounts() const { return counts; }

    /** Bin center of bin @p index. */
    double center(size_t index) const;

    /** Probability density estimate of bin @p index. */
    double density(size_t index) const;

    /**
     * Normalized bin probabilities (count / total) — the discrete
     * distribution used by histogram-space divergences.
     */
    std::vector<double> probabilities() const;

  private:
    Histogram() = default;

    double lo = 0.0;
    double hi = 0.0;
    double binW = 0.0;
    size_t total = 0;
    std::vector<size_t> counts;
};

} // namespace stats
} // namespace sharp

#endif // SHARP_STATS_HISTOGRAM_HH
