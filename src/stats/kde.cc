#include "stats/kde.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "stats/descriptive.hh"

namespace sharp
{
namespace stats
{

double
kdeBandwidth(const std::vector<double> &values, BandwidthRule rule)
{
    if (values.empty())
        throw std::invalid_argument("kdeBandwidth requires a sample");
    double n = static_cast<double>(values.size());
    double sd = stddev(values);
    double spread_iqr = iqr(values) / 1.34;

    double scale;
    switch (rule) {
      case BandwidthRule::Silverman:
        if (sd > 0.0 && spread_iqr > 0.0)
            scale = 0.9 * std::min(sd, spread_iqr);
        else
            scale = 0.9 * std::max(sd, spread_iqr);
        break;
      case BandwidthRule::Scott:
      default:
        scale = 1.06 * sd;
        break;
    }
    double h = scale * std::pow(n, -0.2);
    if (h <= 0.0) {
        // Degenerate sample: fall back to a tiny positive bandwidth
        // relative to the magnitude of the data.
        double mag = std::fabs(values.front());
        h = mag > 0.0 ? mag * 1e-6 : 1e-6;
    }
    return h;
}

Kde::Kde(std::vector<double> sample_in, double bandwidth)
    : sample(std::move(sample_in))
{
    if (sample.empty())
        throw std::invalid_argument("Kde requires a non-empty sample");
    h = bandwidth > 0.0
            ? bandwidth
            : kdeBandwidth(sample, BandwidthRule::Silverman);
    std::sort(sample.begin(), sample.end());
}

double
Kde::operator()(double x) const
{
    // Kernels beyond ~8 bandwidths contribute < 1e-14 of a kernel mass;
    // restrict to the relevant window using the sorted sample.
    const double cutoff = 8.0 * h;
    auto lo = std::lower_bound(sample.begin(), sample.end(), x - cutoff);
    auto hi = std::upper_bound(sample.begin(), sample.end(), x + cutoff);

    const double norm =
        1.0 / (static_cast<double>(sample.size()) * h *
               std::sqrt(2.0 * std::numbers::pi));
    double sum = 0.0;
    for (auto it = lo; it != hi; ++it) {
        double z = (x - *it) / h;
        sum += std::exp(-0.5 * z * z);
    }
    return norm * sum;
}

Kde::Grid
Kde::evaluateGrid(size_t points) const
{
    if (points < 2)
        throw std::invalid_argument("evaluateGrid requires >= 2 points");
    double lo = sample.front() - 3.0 * h;
    double hi = sample.back() + 3.0 * h;
    Grid grid;
    grid.x.resize(points);
    grid.density.resize(points);
    double step = (hi - lo) / static_cast<double>(points - 1);
    for (size_t i = 0; i < points; ++i) {
        grid.x[i] = lo + step * static_cast<double>(i);
        grid.density[i] = (*this)(grid.x[i]);
    }
    return grid;
}

std::vector<Mode>
findModes(const std::vector<double> &sample, double prominence,
          double bandwidth, size_t gridPoints)
{
    if (sample.empty())
        throw std::invalid_argument("findModes requires a non-empty sample");
    if (prominence <= 0.0 || prominence >= 1.0)
        throw std::invalid_argument("prominence must be in (0, 1)");

    // Degenerate sample: a single point mass.
    auto [mn, mx] = std::minmax_element(sample.begin(), sample.end());
    if (*mx - *mn <= 0.0)
        return {Mode{*mn, std::numeric_limits<double>::infinity(), 1.0}};

    Kde kde(sample, bandwidth);
    Kde::Grid grid = kde.evaluateGrid(gridPoints);
    size_t n = grid.x.size();

    // Find local maxima (plateau-aware).
    struct Peak
    {
        size_t index;
        double density;
    };
    std::vector<Peak> peaks;
    for (size_t i = 0; i < n; ++i) {
        double here = grid.density[i];
        // Walk plateaus: find the first strictly different neighbor on
        // each side.
        size_t l = i;
        while (l > 0 && grid.density[l - 1] == here)
            --l;
        size_t r = i;
        while (r + 1 < n && grid.density[r + 1] == here)
            ++r;
        bool left_ok = (l == 0) || grid.density[l - 1] < here;
        bool right_ok = (r == n - 1) || grid.density[r + 1] < here;
        if (left_ok && right_ok && here > 0.0) {
            peaks.push_back({(l + r) / 2, here});
            i = r; // skip the plateau
        }
    }
    if (peaks.empty())
        return {};

    double top = 0.0;
    for (const auto &peak : peaks)
        top = std::max(top, peak.density);

    // Merge adjacent peaks separated by shallow valleys: grid-level
    // noise wiggles on a smooth density (e.g. uniform data under a
    // small bandwidth) otherwise masquerade as extra modes. A valley
    // only separates two modes if the dip below the lower peak is at
    // least `prominence` of the global maximum (topographic
    // prominence).
    auto valleyDepth = [&](const Peak &a, const Peak &b) {
        double valley = std::numeric_limits<double>::infinity();
        for (size_t i = a.index; i <= b.index; ++i)
            valley = std::min(valley, grid.density[i]);
        return std::min(a.density, b.density) - valley;
    };
    bool merged = true;
    while (merged && peaks.size() > 1) {
        merged = false;
        for (size_t p = 0; p + 1 < peaks.size(); ++p) {
            if (valleyDepth(peaks[p], peaks[p + 1]) <
                prominence * top) {
                // Drop the lower of the two peaks.
                size_t victim =
                    peaks[p].density < peaks[p + 1].density ? p : p + 1;
                peaks.erase(peaks.begin() + static_cast<long>(victim));
                merged = true;
                break;
            }
        }
    }

    std::vector<Peak> kept;
    for (const auto &peak : peaks) {
        if (peak.density >= prominence * top)
            kept.push_back(peak);
    }
    if (kept.empty())
        return {};

    // Apportion mass at the valleys (density minima) between adjacent
    // kept peaks, then integrate the grid density per segment.
    std::vector<size_t> boundaries; // segment end indices (exclusive)
    for (size_t p = 0; p + 1 < kept.size(); ++p) {
        size_t lo_i = kept[p].index;
        size_t hi_i = kept[p + 1].index;
        size_t valley = lo_i;
        double best = std::numeric_limits<double>::infinity();
        for (size_t i = lo_i; i <= hi_i; ++i) {
            if (grid.density[i] < best) {
                best = grid.density[i];
                valley = i;
            }
        }
        boundaries.push_back(valley);
    }
    boundaries.push_back(n);

    // Integrate total density for normalization.
    double total = 0.0;
    for (double d : grid.density)
        total += d;

    std::vector<Mode> modes;
    size_t start = 0;
    for (size_t p = 0; p < kept.size(); ++p) {
        size_t end = boundaries[p];
        double mass = 0.0;
        for (size_t i = start; i < end; ++i)
            mass += grid.density[i];
        modes.push_back(Mode{grid.x[kept[p].index], kept[p].density,
                             total > 0.0 ? mass / total : 0.0});
        start = end;
    }
    return modes;
}

size_t
countModes(const std::vector<double> &sample, double prominence)
{
    return findModes(sample, prominence).size();
}

} // namespace stats
} // namespace sharp
