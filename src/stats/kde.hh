/**
 * @file
 * Gaussian kernel density estimation and KDE-based mode detection.
 *
 * Fig. 4 of the paper classifies 70% of Rodinia run-time distributions
 * as multimodal; the classifier and the modality stopping rule need a
 * robust mode counter, which we build from a KDE evaluated on a grid.
 */

#ifndef SHARP_STATS_KDE_HH
#define SHARP_STATS_KDE_HH

#include <cstddef>
#include <vector>

namespace sharp
{
namespace stats
{

/** KDE bandwidth selection rules. */
enum class BandwidthRule
{
    Silverman, ///< 0.9 * min(sd, IQR/1.34) * n^(-1/5)
    Scott,     ///< 1.06 * sd * n^(-1/5)
};

/** Compute the bandwidth for @p values under @p rule (non-empty). */
double kdeBandwidth(const std::vector<double> &values, BandwidthRule rule);

/**
 * A Gaussian kernel density estimate over a sample.
 */
class Kde
{
  public:
    /**
     * @param sample     the observations (non-empty; copied)
     * @param bandwidth  kernel bandwidth; pass <= 0 to use Silverman
     */
    explicit Kde(std::vector<double> sample, double bandwidth = 0.0);

    /** Density estimate at @p x. */
    double operator()(double x) const;

    /** The bandwidth in use. */
    double bandwidth() const { return h; }

    /**
     * Evaluate the density on a uniform grid of @p points spanning the
     * sample range extended by 3 bandwidths each side.
     * @return pair-like struct of grid x positions and densities.
     */
    struct Grid
    {
        std::vector<double> x;
        std::vector<double> density;
    };
    Grid evaluateGrid(size_t points = 256) const;

  private:
    std::vector<double> sample;
    double h;
};

/** A detected density mode. */
struct Mode
{
    /** Location of the local density maximum. */
    double location;
    /** Density value at the peak. */
    double density;
    /** Fraction of total probability mass attributed to this mode. */
    double mass;
};

/**
 * Detect modes of a sample as local maxima of its KDE on a grid.
 *
 * A local maximum qualifies as a mode if its peak density exceeds
 * @p prominence times the highest peak; this filters grid-level noise
 * wiggles. Mass is apportioned by the valleys between adjacent peaks.
 *
 * @param sample      the observations (non-empty)
 * @param prominence  relative peak-height threshold in (0, 1)
 * @param bandwidth   KDE bandwidth; <= 0 selects Silverman
 * @param gridPoints  resolution of the evaluation grid
 */
std::vector<Mode> findModes(const std::vector<double> &sample,
                            double prominence = 0.05,
                            double bandwidth = 0.0,
                            size_t gridPoints = 256);

/** Convenience: number of modes found with default parameters. */
size_t countModes(const std::vector<double> &sample,
                  double prominence = 0.05);

} // namespace stats
} // namespace sharp

#endif // SHARP_STATS_KDE_HH
