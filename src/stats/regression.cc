#include "stats/regression.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hh"

namespace sharp
{
namespace stats
{

namespace
{

void
checkXy(const std::vector<double> &x, const std::vector<double> &y,
        size_t min_n, const char *who)
{
    if (x.size() != y.size())
        throw std::invalid_argument(std::string(who) +
                                    ": x and y sizes differ");
    if (x.size() < min_n)
        throw std::invalid_argument(std::string(who) +
                                    ": too few points");
    double lo = *std::min_element(x.begin(), x.end());
    double hi = *std::max_element(x.begin(), x.end());
    if (hi <= lo)
        throw std::invalid_argument(std::string(who) +
                                    ": x must not be constant");
}

/** Weighted least squares for y = a + b x with weights w. */
void
weightedLeastSquares(const std::vector<double> &x,
                     const std::vector<double> &y,
                     const std::vector<double> &w, double &a, double &b)
{
    double sw = 0, swx = 0, swy = 0, swxx = 0, swxy = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        sw += w[i];
        swx += w[i] * x[i];
        swy += w[i] * y[i];
        swxx += w[i] * x[i] * x[i];
        swxy += w[i] * x[i] * y[i];
    }
    double denom = sw * swxx - swx * swx;
    if (std::fabs(denom) < 1e-300) {
        b = 0.0;
        a = sw > 0 ? swy / sw : 0.0;
        return;
    }
    b = (sw * swxy - swx * swy) / denom;
    a = (swy - b * swx) / sw;
}

} // anonymous namespace

LinearFit
olsFit(const std::vector<double> &x, const std::vector<double> &y)
{
    checkXy(x, y, 2, "olsFit");
    std::vector<double> w(x.size(), 1.0);
    double a, b;
    weightedLeastSquares(x, y, w, a, b);

    double my = mean(y);
    double ss_res = 0.0, ss_tot = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
        double r = y[i] - (a + b * x[i]);
        ss_res += r * r;
        double d = y[i] - my;
        ss_tot += d * d;
    }
    double r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
    return {a, b, r2};
}

double
pinballLoss(const std::vector<double> &y, const std::vector<double> &pred,
            double tau)
{
    if (y.size() != pred.size() || y.empty())
        throw std::invalid_argument("pinballLoss: size mismatch or empty");
    double loss = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
        double r = y[i] - pred[i];
        loss += r >= 0.0 ? tau * r : (tau - 1.0) * r;
    }
    return loss / static_cast<double>(y.size());
}

LinearFit
quantileFit(const std::vector<double> &x, const std::vector<double> &y,
            double tau)
{
    if (!(tau > 0.0 && tau < 1.0))
        throw std::invalid_argument("quantileFit requires tau in (0, 1)");
    checkXy(x, y, 8, "quantileFit");

    // IRLS on the smoothed check loss: weight_i =
    // |tau - 1{r_i < 0}| / max(|r_i|, eps). Initialize from OLS.
    LinearFit fit = olsFit(x, y);
    double a = fit.intercept, b = fit.slope;

    double y_scale = stddev(y);
    double eps = std::max(1e-9, 1e-6 * (y_scale > 0 ? y_scale : 1.0));

    std::vector<double> w(x.size());
    for (int iter = 0; iter < 100; ++iter) {
        for (size_t i = 0; i < x.size(); ++i) {
            double r = y[i] - (a + b * x[i]);
            double grad_mag = r >= 0.0 ? tau : 1.0 - tau;
            w[i] = grad_mag / std::max(std::fabs(r), eps);
        }
        double a_new, b_new;
        weightedLeastSquares(x, y, w, a_new, b_new);
        double delta = std::fabs(a_new - a) + std::fabs(b_new - b);
        a = a_new;
        b = b_new;
        if (delta < 1e-10 * (1.0 + std::fabs(a) + std::fabs(b)))
            break;
    }

    // Goodness: 1 - pinball / pinball of the best constant model (the
    // tau-quantile of y).
    std::vector<double> pred(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        pred[i] = a + b * x[i];
    double loss = pinballLoss(y, pred, tau);
    double q = quantile(y, tau);
    std::vector<double> const_pred(x.size(), q);
    double base = pinballLoss(y, const_pred, tau);
    double goodness = base > 0.0 ? 1.0 - loss / base : 1.0;
    return {a, b, goodness};
}

} // namespace stats
} // namespace sharp
