/**
 * @file
 * Simple and quantile linear regression.
 *
 * De Oliveira et al. (cited in the paper's related work) argue quantile
 * regression is more reliable than ANOVA for comparing performance
 * distributions; SHARP "fully records [distributions] in CSV files so
 * that any additional tests and analyses like quantile regression ...
 * can be carried out with ease". We provide both OLS and quantile fits
 * so the Reporter can do that analysis natively.
 */

#ifndef SHARP_STATS_REGRESSION_HH
#define SHARP_STATS_REGRESSION_HH

#include <cstddef>
#include <vector>

namespace sharp
{
namespace stats
{

/** A fitted line y = intercept + slope * x. */
struct LinearFit
{
    double intercept;
    double slope;
    /** Coefficient of determination (OLS) or pinball-loss ratio (QR). */
    double goodness;

    /** Predict y at @p x. */
    double
    predict(double x) const
    {
        return intercept + slope * x;
    }
};

/**
 * Ordinary least squares fit. Requires >= 2 points and non-constant x.
 * goodness is R^2.
 */
LinearFit olsFit(const std::vector<double> &x,
                 const std::vector<double> &y);

/**
 * Linear quantile regression at quantile @p tau in (0, 1), minimizing
 * the pinball (check) loss by iteratively reweighted least squares with
 * a small smoothing epsilon. goodness is 1 - loss/loss_of_constant_fit.
 *
 * Requires >= 8 points and non-constant x.
 */
LinearFit quantileFit(const std::vector<double> &x,
                      const std::vector<double> &y, double tau);

/** Mean pinball loss of predictions @p pred against @p y at @p tau. */
double pinballLoss(const std::vector<double> &y,
                   const std::vector<double> &pred, double tau);

} // namespace stats
} // namespace sharp

#endif // SHARP_STATS_REGRESSION_HH
