#include "stats/similarity.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hh"
#include "stats/ecdf.hh"
#include "stats/kde.hh"

namespace sharp
{
namespace stats
{

namespace
{

/**
 * Resample @p sorted to exactly @p n points by quantile matching
 * (type-7 interpolation). Used to align unequal-length samples for the
 * paired NAMD metric.
 */
std::vector<double>
resampleQuantiles(const std::vector<double> &sorted, size_t n)
{
    std::vector<double> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        double p = n == 1 ? 0.5
                          : static_cast<double>(i) /
                                static_cast<double>(n - 1);
        out.push_back(quantileSorted(sorted, p));
    }
    return out;
}

} // anonymous namespace

double
namdSorted(const std::vector<double> &sx_in,
           const std::vector<double> &sy_in)
{
    if (sx_in.empty() || sy_in.empty())
        throw std::invalid_argument("namd requires non-empty samples");

    // Only the longer sample is materialized (quantile-resampled down
    // to the shorter length); equal-length inputs are used in place.
    size_t n = std::min(sx_in.size(), sy_in.size());
    std::vector<double> resampled_x, resampled_y;
    if (sx_in.size() != n)
        resampled_x = resampleQuantiles(sx_in, n);
    if (sy_in.size() != n)
        resampled_y = resampleQuantiles(sy_in, n);
    const std::vector<double> &sx = resampled_x.empty() ? sx_in
                                                        : resampled_x;
    const std::vector<double> &sy = resampled_y.empty() ? sy_in
                                                        : resampled_y;

    double mean_x = mean(sx);
    double mean_y = mean(sy);
    if (mean_x == 0.0 || mean_y == 0.0) {
        throw std::invalid_argument(
            "namd requires samples with nonzero means");
    }

    double abs_sum = 0.0;
    for (size_t i = 0; i < n; ++i)
        abs_sum += std::fabs(sx[i] - sy[i]);
    double mad = abs_sum / static_cast<double>(n);
    return 0.5 * (mad / mean_x + mad / mean_y);
}

double
namd(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.empty() || y.empty())
        throw std::invalid_argument("namd requires non-empty samples");

    std::vector<double> sx = x, sy = y;
    std::sort(sx.begin(), sx.end());
    std::sort(sy.begin(), sy.end());
    return namdSorted(sx, sy);
}

double
ksDistance(const std::vector<double> &x, const std::vector<double> &y)
{
    return ksStatistic(x, y);
}

double
ksDistanceSorted(const std::vector<double> &sx,
                 const std::vector<double> &sy)
{
    return ksStatisticSorted(sx, sy);
}

double
wasserstein1Sorted(const std::vector<double> &sx,
                   const std::vector<double> &sy)
{
    if (sx.empty() || sy.empty())
        throw std::invalid_argument("wasserstein1 requires non-empty "
                                    "samples");

    // W1 = integral over p of |Qx(p) - Qy(p)|; evaluate on the merged
    // probability grid i/na and j/nb, which is exact for step quantile
    // functions.
    size_t na = sx.size(), nb = sy.size();
    size_t ia = 0, ib = 0;
    double prev_p = 0.0;
    double dist = 0.0;
    while (ia < na && ib < nb) {
        double pa = static_cast<double>(ia + 1) / static_cast<double>(na);
        double pb = static_cast<double>(ib + 1) / static_cast<double>(nb);
        double p = std::min(pa, pb);
        dist += (p - prev_p) * std::fabs(sx[ia] - sy[ib]);
        prev_p = p;
        if (pa <= p)
            ++ia;
        if (pb <= p)
            ++ib;
    }
    return dist;
}

double
wasserstein1(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.empty() || y.empty())
        throw std::invalid_argument("wasserstein1 requires non-empty "
                                    "samples");
    std::vector<double> sx = x, sy = y;
    std::sort(sx.begin(), sx.end());
    std::sort(sy.begin(), sy.end());
    return wasserstein1Sorted(sx, sy);
}

double
overlapCoefficient(const std::vector<double> &x,
                   const std::vector<double> &y)
{
    if (x.empty() || y.empty())
        throw std::invalid_argument(
            "overlapCoefficient requires non-empty samples");

    Kde kx(x), ky(y);
    auto [min_x, max_x] = std::minmax_element(x.begin(), x.end());
    auto [min_y, max_y] = std::minmax_element(y.begin(), y.end());
    double lo = std::min(*min_x, *min_y) -
                3.0 * std::max(kx.bandwidth(), ky.bandwidth());
    double hi = std::max(*max_x, *max_y) +
                3.0 * std::max(kx.bandwidth(), ky.bandwidth());

    const size_t points = 512;
    double step = (hi - lo) / static_cast<double>(points - 1);
    if (step <= 0.0)
        return 1.0; // both degenerate at the same point
    double overlap = 0.0;
    for (size_t i = 0; i < points; ++i) {
        double t = lo + step * static_cast<double>(i);
        overlap += std::min(kx(t), ky(t)) * step;
    }
    return std::clamp(overlap, 0.0, 1.0);
}

double
jensenShannonDivergence(const std::vector<double> &x,
                        const std::vector<double> &y, size_t bins)
{
    if (x.empty() || y.empty())
        throw std::invalid_argument(
            "jensenShannonDivergence requires non-empty samples");
    if (bins == 0)
        throw std::invalid_argument("jensenShannonDivergence needs bins");

    auto [min_x, max_x] = std::minmax_element(x.begin(), x.end());
    auto [min_y, max_y] = std::minmax_element(y.begin(), y.end());
    double lo = std::min(*min_x, *min_y);
    double hi = std::max(*max_x, *max_y);
    if (hi <= lo)
        return 0.0;

    auto discretize = [&](const std::vector<double> &sample) {
        std::vector<double> probs(bins, 0.0);
        double width = (hi - lo) / static_cast<double>(bins);
        for (double v : sample) {
            size_t idx = static_cast<size_t>((v - lo) / width);
            if (idx >= bins)
                idx = bins - 1;
            probs[idx] += 1.0;
        }
        for (double &p : probs)
            p /= static_cast<double>(sample.size());
        return probs;
    };

    std::vector<double> px = discretize(x);
    std::vector<double> py = discretize(y);

    auto klTerm = [](double p, double m) {
        if (p <= 0.0 || m <= 0.0)
            return 0.0;
        return p * std::log(p / m);
    };

    double js = 0.0;
    for (size_t i = 0; i < bins; ++i) {
        double m = 0.5 * (px[i] + py[i]);
        js += 0.5 * klTerm(px[i], m) + 0.5 * klTerm(py[i], m);
    }
    return std::max(0.0, js);
}

SimilarityReport
SimilarityReport::compute(const std::vector<double> &x,
                          const std::vector<double> &y)
{
    // One sort per sample serves NAMD, KS, and Wasserstein; the KDE
    // overlap and the histogram JS divergence take the raw samples —
    // the KDE picks its bandwidth in arrival order before sorting
    // internally, so handing it the sorted copies would change it.
    std::vector<double> sx = x, sy = y;
    std::sort(sx.begin(), sx.end());
    std::sort(sy.begin(), sy.end());

    SimilarityReport report;
    report.namd = namdSorted(sx, sy);
    report.ks = ksDistanceSorted(sx, sy);
    report.wasserstein = wasserstein1Sorted(sx, sy);
    report.overlap = overlapCoefficient(x, y);
    report.jensenShannon = jensenShannonDivergence(x, y);
    return report;
}

} // namespace stats
} // namespace sharp
