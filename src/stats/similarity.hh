/**
 * @file
 * Distribution similarity metrics (§V-A.3 of the paper).
 *
 * NAMD — Normalized Absolute Mean Difference — is the paper's
 * representative *point-summary* metric; the two-sample KS statistic is
 * the *distribution-based* alternative SHARP advocates. We also provide
 * Wasserstein-1, the overlap coefficient, and Jensen–Shannon divergence
 * as additional distribution-space measures.
 */

#ifndef SHARP_STATS_SIMILARITY_HH
#define SHARP_STATS_SIMILARITY_HH

#include <cstddef>
#include <vector>

namespace sharp
{
namespace stats
{

/**
 * Normalized Absolute Mean Difference, per the paper:
 *
 *   NAMD = 1/2 * ( (1/X̄) Σ|X_i − Y_i| + (1/Ȳ) Σ|X_i − Y_i| ) / n
 *
 * The paper's formula omits the 1/n factor in print, but without it the
 * metric grows with sample size, contradicting its use of "NAMD = 0"
 * thresholds across different-sized runs; we therefore use the mean
 * absolute difference, normalized by each sample's mean, averaged.
 *
 * Assumes (like the paper) equal-length samples; pairs are matched by
 * sorted order so the metric is permutation-invariant, and when lengths
 * differ the longer sample is subsampled by quantile matching.
 *
 * @throws std::invalid_argument if either sample is empty or either
 *         mean is zero.
 */
double namd(const std::vector<double> &x, const std::vector<double> &y);

/** NAMD over already-sorted samples (ascending); no copies made. */
double namdSorted(const std::vector<double> &sx,
                  const std::vector<double> &sy);

/**
 * Two-sample Kolmogorov–Smirnov distance in [0, 1]; re-exported here so
 * similarity consumers need one header. See ecdf.hh.
 */
double ksDistance(const std::vector<double> &x,
                  const std::vector<double> &y);

/** KS distance over already-sorted samples (ascending). */
double ksDistanceSorted(const std::vector<double> &sx,
                        const std::vector<double> &sy);

/**
 * 1-Wasserstein (earth-mover) distance between empirical distributions,
 * computed as the L1 distance between quantile functions.
 */
double wasserstein1(const std::vector<double> &x,
                    const std::vector<double> &y);

/** Wasserstein-1 over already-sorted samples (ascending). */
double wasserstein1Sorted(const std::vector<double> &sx,
                          const std::vector<double> &sy);

/**
 * Overlap coefficient of the two KDE-smoothed densities, in [0, 1]
 * (1 = identical). Computed on a shared grid.
 */
double overlapCoefficient(const std::vector<double> &x,
                          const std::vector<double> &y);

/**
 * Jensen–Shannon divergence (natural log) between histogram
 * discretizations of the samples over a common range, in [0, ln 2].
 */
double jensenShannonDivergence(const std::vector<double> &x,
                               const std::vector<double> &y,
                               size_t bins = 64);

/**
 * A bundle of all similarity metrics between two samples, as logged by
 * the Reporter for each pairwise comparison.
 */
struct SimilarityReport
{
    double namd;
    double ks;
    double wasserstein;
    double overlap;
    double jensenShannon;

    static SimilarityReport compute(const std::vector<double> &x,
                                    const std::vector<double> &y);
};

} // namespace stats
} // namespace sharp

#endif // SHARP_STATS_SIMILARITY_HH
