#include "stats/special.hh"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace sharp
{
namespace stats
{

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double
normalQuantile(double p)
{
    if (!(p > 0.0 && p < 1.0))
        throw std::invalid_argument("normalQuantile requires p in (0,1)");

    // Acklam's rational approximation, |relative error| < 1.15e-9,
    // followed by one Halley refinement step.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00, 2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double p_low = 0.02425;
    double x;
    if (p < p_low) {
        double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        double q = p - 0.5;
        double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // Halley refinement.
    double e = normalCdf(x) - p;
    double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
    x = x - u / (1.0 + x * u / 2.0);
    return x;
}

double
logGamma(double x)
{
    if (x <= 0.0)
        throw std::invalid_argument("logGamma requires x > 0");

    // Lanczos approximation, g = 7, n = 9.
    static const double coef[] = {
        0.99999999999980993, 676.5203681218851, -1259.1392167224028,
        771.32342877765313, -176.61502916214059, 12.507343278686905,
        -0.13857109526572012, 9.9843695780195716e-6,
        1.5056327351493116e-7};

    if (x < 0.5) {
        // Reflection formula.
        return std::log(M_PI / std::sin(M_PI * x)) - logGamma(1.0 - x);
    }

    x -= 1.0;
    double sum = coef[0];
    for (int i = 1; i < 9; ++i)
        sum += coef[i] / (x + static_cast<double>(i));
    double t = x + 7.5;
    return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
           std::log(sum);
}

namespace
{

/** Series expansion of P(a, x), valid for x < a + 1. */
double
gammaPSeries(double a, double x)
{
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if (std::fabs(del) < std::fabs(sum) * 1e-15)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - logGamma(a));
}

/** Continued fraction for Q(a, x) = 1 - P(a, x), valid for x >= a + 1. */
double
gammaQContinuedFraction(double a, double x)
{
    const double tiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= 500; ++i) {
        double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = b + an / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < 1e-15)
            break;
    }
    return std::exp(-x + a * std::log(x) - logGamma(a)) * h;
}

/** Continued fraction for the incomplete beta function. */
double
betaContinuedFraction(double x, double a, double b)
{
    const double tiny = 1e-300;
    double qab = a + b;
    double qap = a + 1.0;
    double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < tiny)
        d = tiny;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= 500; ++m) {
        double m_d = static_cast<double>(m);
        double m2 = 2.0 * m_d;
        double aa = m_d * (b - m_d) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m_d) * (qab + m_d) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < 1e-15)
            break;
    }
    return h;
}

} // anonymous namespace

double
regularizedGammaP(double a, double x)
{
    if (a <= 0.0)
        throw std::invalid_argument("regularizedGammaP requires a > 0");
    if (x < 0.0)
        throw std::invalid_argument("regularizedGammaP requires x >= 0");
    if (x == 0.0)
        return 0.0;
    if (x < a + 1.0)
        return gammaPSeries(a, x);
    return 1.0 - gammaQContinuedFraction(a, x);
}

double
regularizedBeta(double x, double a, double b)
{
    if (a <= 0.0 || b <= 0.0)
        throw std::invalid_argument("regularizedBeta requires a, b > 0");
    if (x < 0.0 || x > 1.0)
        throw std::invalid_argument("regularizedBeta requires x in [0,1]");
    if (x == 0.0)
        return 0.0;
    if (x == 1.0)
        return 1.0;

    double log_front = logGamma(a + b) - logGamma(a) - logGamma(b) +
                       a * std::log(x) + b * std::log(1.0 - x);
    double front = std::exp(log_front);
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(x, a, b) / a;
    return 1.0 - front * betaContinuedFraction(1.0 - x, b, a) / b;
}

double
studentTCdf(double t, double dof)
{
    if (dof <= 0.0)
        throw std::invalid_argument("studentTCdf requires dof > 0");
    if (std::isinf(t))
        return t > 0 ? 1.0 : 0.0;
    double x = dof / (dof + t * t);
    double prob = 0.5 * regularizedBeta(x, dof / 2.0, 0.5);
    return t > 0.0 ? 1.0 - prob : prob;
}

double
studentTQuantile(double p, double dof)
{
    if (!(p > 0.0 && p < 1.0))
        throw std::invalid_argument("studentTQuantile requires p in (0,1)");
    if (dof <= 0.0)
        throw std::invalid_argument("studentTQuantile requires dof > 0");

    // For large dof the t distribution is the normal distribution to
    // within ~1/dof; the rules that evaluate this per-sample benefit
    // from skipping the bisection.
    if (dof > 2000.0)
        return normalQuantile(p);

    // Bisection bracketed by a generous normal-based guess; the CDF is
    // strictly monotonic so this always converges.
    double lo = -1.0, hi = 1.0;
    while (studentTCdf(lo, dof) > p)
        lo *= 2.0;
    while (studentTCdf(hi, dof) < p)
        hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        double mid = 0.5 * (lo + hi);
        if (studentTCdf(mid, dof) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-12 * (1.0 + std::fabs(hi)))
            break;
    }
    return 0.5 * (lo + hi);
}

double
chiSquareCdf(double x, double dof)
{
    if (dof <= 0.0)
        throw std::invalid_argument("chiSquareCdf requires dof > 0");
    if (x <= 0.0)
        return 0.0;
    return regularizedGammaP(dof / 2.0, x / 2.0);
}

double
kolmogorovComplementaryCdf(double lambda)
{
    if (lambda <= 0.0)
        return 1.0;
    double sum = 0.0;
    double sign = 1.0;
    for (int j = 1; j <= 100; ++j) {
        double jd = static_cast<double>(j);
        double term = std::exp(-2.0 * jd * jd * lambda * lambda);
        sum += sign * term;
        if (term < 1e-12)
            break;
        sign = -sign;
    }
    double q = 2.0 * sum;
    if (q < 0.0)
        return 0.0;
    if (q > 1.0)
        return 1.0;
    return q;
}

} // namespace stats
} // namespace sharp
