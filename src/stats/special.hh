/**
 * @file
 * Special mathematical functions underpinning the statistics library:
 * the normal CDF/quantile, log-gamma, regularized incomplete gamma and
 * beta functions (for chi-square and Student-t tails), and the
 * Kolmogorov asymptotic distribution.
 *
 * Implementations follow standard numerical recipes (Lanczos
 * approximation, continued fractions, Acklam's inverse-normal) with
 * accuracy far beyond what hypothesis-test p-values require.
 */

#ifndef SHARP_STATS_SPECIAL_HH
#define SHARP_STATS_SPECIAL_HH

namespace sharp
{
namespace stats
{

/** Standard normal CDF Phi(x). */
double normalCdf(double x);

/** Standard normal quantile Phi^{-1}(p), p in (0, 1). */
double normalQuantile(double p);

/** Natural log of the gamma function, x > 0. */
double logGamma(double x);

/** Regularized lower incomplete gamma P(a, x), a > 0, x >= 0. */
double regularizedGammaP(double a, double x);

/** Regularized incomplete beta I_x(a, b); a, b > 0; x in [0, 1]. */
double regularizedBeta(double x, double a, double b);

/** CDF of Student's t distribution with @p dof degrees of freedom. */
double studentTCdf(double t, double dof);

/** Quantile of Student's t distribution, p in (0, 1). */
double studentTQuantile(double p, double dof);

/** CDF of the chi-square distribution with @p dof degrees of freedom. */
double chiSquareCdf(double x, double dof);

/**
 * Kolmogorov distribution complementary CDF:
 * Q(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
 * Used for the asymptotic p-value of the two-sample KS test.
 */
double kolmogorovComplementaryCdf(double lambda);

} // namespace stats
} // namespace sharp

#endif // SHARP_STATS_SPECIAL_HH
