#include "stats/speedup.hh"

#include <algorithm>
#include <stdexcept>

#include "stats/descriptive.hh"

namespace sharp
{
namespace stats
{

namespace
{

void
checkSample(const std::vector<double> &sample, const char *which)
{
    if (sample.empty()) {
        throw std::invalid_argument(std::string("speedupOfMedians: ") +
                                    which + " sample is empty");
    }
    for (double v : sample) {
        if (!(v > 0.0)) {
            throw std::invalid_argument(
                std::string("speedupOfMedians: ") + which +
                " sample has a non-positive value; speedup ratios "
                "need a positive metric");
        }
    }
}

/** Median of a resample drawn with replacement from @p sample. */
double
resampledMedian(const std::vector<double> &sample,
                std::vector<double> &scratch, rng::Xoshiro256 &gen)
{
    scratch.resize(sample.size());
    for (size_t i = 0; i < sample.size(); ++i)
        scratch[i] = sample[gen.nextBelow(sample.size())];
    std::sort(scratch.begin(), scratch.end());
    return quantileSorted(scratch, 0.5);
}

} // anonymous namespace

SpeedupEstimate
speedupOfMedians(const std::vector<double> &baseline,
                 const std::vector<double> &candidate, double level,
                 size_t resamples, rng::Xoshiro256 &gen)
{
    if (!(level > 0.0 && level < 1.0))
        throw std::invalid_argument("confidence level must be in (0, 1)");
    if (resamples == 0)
        throw std::invalid_argument("bootstrap requires resamples >= 1");
    checkSample(baseline, "baseline");
    checkSample(candidate, "candidate");

    SpeedupEstimate estimate;
    estimate.baselineMedian = median(baseline);
    estimate.candidateMedian = median(candidate);
    estimate.speedup = estimate.baselineMedian / estimate.candidateMedian;

    std::vector<double> ratios;
    ratios.reserve(resamples);
    std::vector<double> base_scratch, cand_scratch;
    for (size_t r = 0; r < resamples; ++r) {
        double b = resampledMedian(baseline, base_scratch, gen);
        double c = resampledMedian(candidate, cand_scratch, gen);
        ratios.push_back(b / c);
    }
    std::sort(ratios.begin(), ratios.end());
    double alpha = 1.0 - level;
    estimate.ci = {quantileSorted(ratios, alpha / 2.0),
                   quantileSorted(ratios, 1.0 - alpha / 2.0), level};
    return estimate;
}

} // namespace stats
} // namespace sharp
