/**
 * @file
 * Speedup estimation with bootstrap confidence intervals.
 *
 * Touati, Worms & Briais ("Towards a Statistical Methodology to
 * Evaluate Program Speedups", 2009; later "The Speedup-Test") argue
 * that a speedup reported without a confidence statement is not a
 * defensible claim: run-time distributions are skewed and
 * heavy-tailed, so SHARP reports the speedup of the *median* — robust
 * where the mean ratio is not — together with a two-sample percentile
 * bootstrap interval. `sharp compare` uses this as its point estimate
 * and confirmation test: a median shift only counts as a regression
 * when the whole interval lies below 1.
 */

#ifndef SHARP_STATS_SPEEDUP_HH
#define SHARP_STATS_SPEEDUP_HH

#include <cstddef>
#include <vector>

#include "rng/xoshiro.hh"
#include "stats/ci.hh"

namespace sharp
{
namespace stats
{

/** A speedup point estimate with its bootstrap interval. */
struct SpeedupEstimate
{
    double baselineMedian = 0.0;
    double candidateMedian = 0.0;
    /**
     * baselineMedian / candidateMedian. For a smaller-is-better metric
     * (run time), > 1 means the candidate got faster, < 1 slower.
     */
    double speedup = 0.0;
    ConfidenceInterval ci{0.0, 0.0, 0.0};
};

/**
 * Speedup of the median with a two-sample percentile-bootstrap CI:
 * each resample draws both samples independently (with replacement)
 * and recomputes the ratio of medians; the interval is the
 * [alpha/2, 1 - alpha/2] percentile span of the resampled ratios.
 *
 * @param baseline   the reference sample (all values > 0, non-empty)
 * @param candidate  the new sample (all values > 0, non-empty)
 * @param level      confidence level in (0, 1)
 * @param resamples  bootstrap resamples (>= 100 recommended)
 * @param gen        entropy source (deterministic given its state)
 * @throws std::invalid_argument on empty or non-positive samples or a
 *         level outside (0, 1).
 */
SpeedupEstimate speedupOfMedians(const std::vector<double> &baseline,
                                 const std::vector<double> &candidate,
                                 double level, size_t resamples,
                                 rng::Xoshiro256 &gen);

} // namespace stats
} // namespace sharp

#endif // SHARP_STATS_SPEEDUP_HH
