#include "stats/tests.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/descriptive.hh"
#include "stats/ecdf.hh"
#include "stats/special.hh"

namespace sharp
{
namespace stats
{

TestResult
ksTest(const std::vector<double> &x, const std::vector<double> &y)
{
    double d = ksStatistic(x, y);
    double nx = static_cast<double>(x.size());
    double ny = static_cast<double>(y.size());
    double ne = nx * ny / (nx + ny);
    double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
    return {d, kolmogorovComplementaryCdf(lambda)};
}

TestResult
mannWhitneyU(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.empty() || y.empty())
        throw std::invalid_argument("mannWhitneyU requires non-empty "
                                    "samples");
    size_t nx = x.size(), ny = y.size();
    struct Tagged
    {
        double value;
        bool fromX;
    };
    std::vector<Tagged> pooled;
    pooled.reserve(nx + ny);
    for (double v : x)
        pooled.push_back({v, true});
    for (double v : y)
        pooled.push_back({v, false});
    std::sort(pooled.begin(), pooled.end(),
              [](const Tagged &a, const Tagged &b) {
                  return a.value < b.value;
              });

    // Midranks with tie groups; accumulate tie correction term.
    double rank_sum_x = 0.0;
    double tie_term = 0.0;
    size_t i = 0;
    while (i < pooled.size()) {
        size_t j = i;
        while (j + 1 < pooled.size() &&
               pooled[j + 1].value == pooled[i].value) {
            ++j;
        }
        double midrank =
            (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
        double t = static_cast<double>(j - i + 1);
        if (t > 1.0)
            tie_term += t * t * t - t;
        for (size_t k = i; k <= j; ++k) {
            if (pooled[k].fromX)
                rank_sum_x += midrank;
        }
        i = j + 1;
    }

    double nxd = static_cast<double>(nx);
    double nyd = static_cast<double>(ny);
    double u_x = rank_sum_x - nxd * (nxd + 1.0) / 2.0;
    double mu = nxd * nyd / 2.0;
    double n_total = nxd + nyd;
    double sigma2 = nxd * nyd / 12.0 *
                    ((n_total + 1.0) -
                     tie_term / (n_total * (n_total - 1.0)));
    if (sigma2 <= 0.0)
        return {u_x, 1.0}; // all values tied: no evidence of difference
    double z = (u_x - mu);
    // Continuity correction toward the mean.
    if (z > 0.5)
        z -= 0.5;
    else if (z < -0.5)
        z += 0.5;
    else
        z = 0.0;
    z /= std::sqrt(sigma2);
    double p = 2.0 * (1.0 - normalCdf(std::fabs(z)));
    return {u_x, std::min(1.0, p)};
}

TestResult
welchTTest(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() < 2 || y.size() < 2)
        throw std::invalid_argument("welchTTest requires n >= 2 per sample");
    double mx = mean(x), my = mean(y);
    double vx = variance(x), vy = variance(y);
    double nx = static_cast<double>(x.size());
    double ny = static_cast<double>(y.size());
    double se2 = vx / nx + vy / ny;
    if (se2 <= 0.0) {
        // Zero variance in both samples: distributions are constants.
        return {mx == my ? 0.0 : std::numeric_limits<double>::infinity(),
                mx == my ? 1.0 : 0.0};
    }
    double t = (mx - my) / std::sqrt(se2);
    double dof = se2 * se2 /
                 (vx * vx / (nx * nx * (nx - 1.0)) +
                  vy * vy / (ny * ny * (ny - 1.0)));
    double p = 2.0 * (1.0 - studentTCdf(std::fabs(t), dof));
    return {t, std::clamp(p, 0.0, 1.0)};
}

TestResult
jarqueBera(const std::vector<double> &x)
{
    if (x.size() < 4)
        throw std::invalid_argument("jarqueBera requires n >= 4");
    double n = static_cast<double>(x.size());
    // JB uses the population (g1, g2) moments, not the bias-adjusted ones.
    double m = mean(x);
    double m2 = 0.0, m3 = 0.0, m4 = 0.0;
    for (double v : x) {
        double d = v - m;
        double d2 = d * d;
        m2 += d2;
        m3 += d2 * d;
        m4 += d2 * d2;
    }
    m2 /= n;
    m3 /= n;
    m4 /= n;
    if (m2 <= 0.0)
        return {0.0, 1.0};
    double s = m3 / std::pow(m2, 1.5);
    double k = m4 / (m2 * m2) - 3.0;
    double jb = n / 6.0 * (s * s + k * k / 4.0);
    double p = 1.0 - chiSquareCdf(jb, 2.0);
    return {jb, std::clamp(p, 0.0, 1.0)};
}

TestResult
andersonDarlingNormal(const std::vector<double> &x)
{
    if (x.size() < 8)
        throw std::invalid_argument("andersonDarlingNormal requires n >= 8");
    double n = static_cast<double>(x.size());
    double m = mean(x);
    double sd = stddev(x);
    if (sd <= 0.0)
        return {0.0, 1.0}; // constant sample: vacuously "normal"

    std::vector<double> z;
    z.reserve(x.size());
    for (double v : x)
        z.push_back((v - m) / sd);
    std::sort(z.begin(), z.end());

    double a2 = 0.0;
    size_t count = z.size();
    for (size_t i = 0; i < count; ++i) {
        double phi_i = std::clamp(normalCdf(z[i]), 1e-15, 1.0 - 1e-15);
        double phi_rev =
            std::clamp(normalCdf(z[count - 1 - i]), 1e-15, 1.0 - 1e-15);
        a2 += (2.0 * static_cast<double>(i) + 1.0) *
              (std::log(phi_i) + std::log(1.0 - phi_rev));
    }
    a2 = -n - a2 / n;

    // Small-sample adjustment (case: mu and sigma estimated).
    double a2_star = a2 * (1.0 + 0.75 / n + 2.25 / (n * n));

    // D'Agostino & Stephens p-value approximation.
    double p;
    if (a2_star >= 0.6)
        p = std::exp(1.2937 - 5.709 * a2_star + 0.0186 * a2_star * a2_star);
    else if (a2_star >= 0.34)
        p = std::exp(0.9177 - 4.279 * a2_star - 1.38 * a2_star * a2_star);
    else if (a2_star >= 0.2)
        p = 1.0 - std::exp(-8.318 + 42.796 * a2_star -
                           59.938 * a2_star * a2_star);
    else
        p = 1.0 - std::exp(-13.436 + 101.14 * a2_star -
                           223.73 * a2_star * a2_star);
    return {a2_star, std::clamp(p, 0.0, 1.0)};
}

namespace
{

/**
 * Modified Bessel function K_{1/4}(z) by numerical quadrature of
 * K_nu(z) = integral_0^inf exp(-z cosh t) cosh(nu t) dt. Accurate to
 * ~1e-8 for the z range the CvM tail series needs.
 */
double
besselK14(double z)
{
    // Integrand is negligible once z*cosh(t) exceeds ~745.
    double t_max = std::acosh(std::max(2.0, 745.0 / z));
    const int steps = 4000; // Simpson resolution
    double h = t_max / steps;
    auto f = [z](double t) {
        return std::exp(-z * std::cosh(t)) * std::cosh(t / 4.0);
    };
    double sum = f(0.0) + f(t_max);
    for (int i = 1; i < steps; ++i) {
        double t = h * static_cast<double>(i);
        sum += f(t) * (i % 2 == 1 ? 4.0 : 2.0);
    }
    return sum * h / 3.0;
}

/**
 * CDF of the limiting Cramér–von Mises distribution W^2
 * (Csörgő & Faraway 1996, eq. 1.3).
 */
double
cvmLimitCdf(double x)
{
    if (x <= 0.0)
        return 0.0;
    if (x > 10.0)
        return 1.0;
    double total = 0.0;
    for (int k = 0; k < 12; ++k) {
        double kd = static_cast<double>(k);
        // Gamma(k + 1/2) / (Gamma(1/2) k!)
        double log_coef = logGamma(kd + 0.5) - logGamma(0.5) -
                          logGamma(kd + 1.0);
        double four_k1 = 4.0 * kd + 1.0;
        double z = four_k1 * four_k1 / (16.0 * x);
        double term = std::exp(log_coef - z) * std::sqrt(four_k1) *
                      besselK14(z);
        total += term;
        if (term < 1e-14 * std::max(total, 1e-300))
            break;
    }
    double cdf = total / (M_PI * std::sqrt(x));
    return std::clamp(cdf, 0.0, 1.0);
}

} // anonymous namespace

TestResult
cramerVonMises(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.empty() || y.empty())
        throw std::invalid_argument(
            "cramerVonMises requires non-empty samples");

    size_t n = x.size(), m = y.size();
    struct Tagged
    {
        double value;
        bool fromX;
    };
    std::vector<Tagged> pooled;
    pooled.reserve(n + m);
    for (double v : x)
        pooled.push_back({v, true});
    for (double v : y)
        pooled.push_back({v, false});
    std::sort(pooled.begin(), pooled.end(),
              [](const Tagged &a, const Tagged &b) {
                  return a.value < b.value;
              });

    // Midranks of each sample in the pooled ordering.
    std::vector<double> rank_x, rank_y;
    rank_x.reserve(n);
    rank_y.reserve(m);
    size_t i = 0;
    while (i < pooled.size()) {
        size_t j = i;
        while (j + 1 < pooled.size() &&
               pooled[j + 1].value == pooled[i].value) {
            ++j;
        }
        double midrank =
            (static_cast<double>(i + 1) + static_cast<double>(j + 1)) /
            2.0;
        for (size_t k = i; k <= j; ++k) {
            if (pooled[k].fromX)
                rank_x.push_back(midrank);
            else
                rank_y.push_back(midrank);
        }
        i = j + 1;
    }

    double nd = static_cast<double>(n), md = static_cast<double>(m);
    double u = 0.0;
    for (size_t k = 0; k < n; ++k) {
        double d = rank_x[k] - static_cast<double>(k + 1);
        u += nd * d * d;
    }
    for (size_t k = 0; k < m; ++k) {
        double d = rank_y[k] - static_cast<double>(k + 1);
        u += md * d * d;
    }
    double total = nd + md;
    double t = u / (nd * md * total) -
               (4.0 * nd * md - 1.0) / (6.0 * total);
    double p = 1.0 - cvmLimitCdf(t);
    return {t, std::clamp(p, 0.0, 1.0)};
}

size_t
requiredSampleSize(const std::vector<double> &pilot, double relWidth,
                   double level)
{
    if (pilot.size() < 2)
        throw std::invalid_argument(
            "requiredSampleSize needs a pilot with >= 2 samples");
    if (!(relWidth > 0.0))
        throw std::invalid_argument(
            "requiredSampleSize needs relWidth > 0");
    if (!(level > 0.0 && level < 1.0))
        throw std::invalid_argument(
            "requiredSampleSize needs level in (0, 1)");

    double m = mean(pilot);
    if (m == 0.0)
        throw std::invalid_argument(
            "requiredSampleSize needs a nonzero pilot mean");
    double cv = stddev(pilot) / std::fabs(m);
    if (cv == 0.0)
        return 2; // constant data: any two runs suffice

    // n = (2 t cv / w)^2 with t depending on n: fixed-point iterate
    // from the normal approximation.
    double quantile_p = 0.5 + level / 2.0;
    double n_est = std::pow(
        2.0 * normalQuantile(quantile_p) * cv / relWidth, 2.0);
    for (int iter = 0; iter < 4; ++iter) {
        double dof = std::max(1.0, n_est - 1.0);
        double t = studentTQuantile(quantile_p, dof);
        n_est = std::pow(2.0 * t * cv / relWidth, 2.0);
        n_est = std::min(n_est, 1e9);
    }
    return static_cast<size_t>(std::max(2.0, std::ceil(n_est)));
}

} // namespace stats
} // namespace sharp
