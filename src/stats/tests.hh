/**
 * @file
 * Hypothesis tests used by the Reporter and the distribution
 * classifier: two-sample KS with asymptotic p-value, Mann–Whitney U
 * (used by Eismann et al. for variability regression testing, cited in
 * the paper), Welch's t, Jarque–Bera and Anderson–Darling normality.
 */

#ifndef SHARP_STATS_TESTS_HH
#define SHARP_STATS_TESTS_HH

#include <cstddef>
#include <vector>

namespace sharp
{
namespace stats
{

/** Outcome of a hypothesis test. */
struct TestResult
{
    /** The test statistic. */
    double statistic;
    /** Two-sided p-value (or the test's natural p-value). */
    double pValue;

    /** Reject the null at significance @p alpha? */
    bool rejectAt(double alpha) const { return pValue < alpha; }
};

/**
 * Two-sample Kolmogorov–Smirnov test.
 * Statistic D = sup|F1 - F2|; p-value from the Kolmogorov asymptotic
 * distribution with the effective-size correction
 * lambda = (sqrt(ne) + 0.12 + 0.11/sqrt(ne)) * D.
 */
TestResult ksTest(const std::vector<double> &x,
                  const std::vector<double> &y);

/**
 * Mann–Whitney U test (two-sided, normal approximation with tie
 * correction and continuity correction). Statistic is U for sample x.
 */
TestResult mannWhitneyU(const std::vector<double> &x,
                        const std::vector<double> &y);

/**
 * Welch's unequal-variance t-test (two-sided), with
 * Welch–Satterthwaite degrees of freedom.
 */
TestResult welchTTest(const std::vector<double> &x,
                      const std::vector<double> &y);

/**
 * Jarque–Bera normality test: JB = n/6 * (S^2 + K^2/4), asymptotically
 * chi-square with 2 dof under normality.
 */
TestResult jarqueBera(const std::vector<double> &x);

/**
 * Anderson–Darling test of composite normality (case 4: mean and
 * variance estimated). Statistic is the small-sample adjusted A*^2;
 * p-value from the Stephens / D'Agostino approximation.
 */
TestResult andersonDarlingNormal(const std::vector<double> &x);

/**
 * Two-sample Cramér–von Mises test. Where KS reacts to the single
 * largest CDF gap, CvM integrates the squared gap over the whole
 * distribution, making it more sensitive to diffuse differences.
 * Statistic is the classic T = U/(nm(n+m)) - (4nm-1)/(6(n+m)) form;
 * the p-value uses the asymptotic approximation of Anderson (1962).
 */
TestResult cramerVonMises(const std::vector<double> &x,
                          const std::vector<double> &y);

/**
 * Estimate the number of runs needed for the two-sided t CI on the
 * mean to reach a relative width below @p relWidth at confidence
 * @p level, extrapolating from a pilot sample's coefficient of
 * variation. The estimate (>= 2) may be smaller than the pilot when
 * the pilot was already more than sufficient.
 * @throws std::invalid_argument on a pilot with < 2 samples, zero
 *         mean, or non-positive targets.
 */
size_t requiredSampleSize(const std::vector<double> &pilot,
                          double relWidth, double level = 0.95);

} // namespace stats
} // namespace sharp

#endif // SHARP_STATS_TESTS_HH
