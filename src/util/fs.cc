#include "util/fs.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <dirent.h>
#include <sys/stat.h>

namespace sharp
{
namespace util
{

bool
isDirectory(const std::string &path)
{
    struct stat st = {};
    return stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::vector<std::string>
listDirectory(const std::string &path)
{
    DIR *dir = opendir(path.c_str());
    if (!dir) {
        throw std::runtime_error("cannot list directory '" + path +
                                 "': " + std::strerror(errno));
    }
    std::vector<std::string> names;
    while (const dirent *entry = readdir(dir)) {
        std::string name = entry->d_name;
        if (name != "." && name != "..")
            names.push_back(std::move(name));
    }
    closedir(dir);
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace util
} // namespace sharp
