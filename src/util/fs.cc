#include "util/fs.hh"

#include <algorithm>
#include <cerrno>
#include <utility>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <dirent.h>
#include <sys/stat.h>

namespace sharp
{
namespace util
{

bool
isDirectory(const std::string &path)
{
    struct stat st = {};
    return stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool
fileExists(const std::string &path)
{
    struct stat st = {};
    return stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

void
makeDirectories(const std::string &path)
{
    if (path.empty() || isDirectory(path))
        return;
    // Create parents first; a trailing component beyond the last '/'
    // is the directory itself.
    size_t slash = path.find_last_of('/');
    if (slash != std::string::npos && slash > 0)
        makeDirectories(path.substr(0, slash));
    if (mkdir(path.c_str(), 0777) != 0 && errno != EEXIST) {
        throw std::runtime_error("cannot create directory '" + path +
                                 "': " + std::strerror(errno));
    }
}

std::string
readFileText(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("cannot read '" + path +
                                 "': " + std::strerror(errno));
    }
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

bool
isSymlink(const std::string &path)
{
    struct stat st = {};
    return lstat(path.c_str(), &st) == 0 && S_ISLNK(st.st_mode);
}

std::vector<std::string>
listDirectory(const std::string &path)
{
    DIR *dir = opendir(path.c_str());
    if (!dir) {
        throw std::runtime_error("cannot list directory '" + path +
                                 "': " + std::strerror(errno));
    }
    std::vector<std::string> names;
    while (const dirent *entry = readdir(dir)) {
        std::string name = entry->d_name;
        if (name != "." && name != "..")
            names.push_back(std::move(name));
    }
    closedir(dir);
    std::sort(names.begin(), names.end());
    return names;
}

namespace
{

void
walkFiles(const std::string &dir, bool fatal,
          std::vector<std::pair<dev_t, ino_t>> &visited,
          std::vector<std::string> &out)
{
    // The identity guard is what breaks symlink cycles: a directory
    // already on the visited list (reached through a link loop or a
    // bind mount) is not entered again.
    struct stat st = {};
    if (stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        if (fatal) {
            throw std::runtime_error("cannot list directory '" + dir +
                                     "': " + std::strerror(errno));
        }
        return;
    }
    std::pair<dev_t, ino_t> identity{st.st_dev, st.st_ino};
    if (std::find(visited.begin(), visited.end(), identity) !=
        visited.end())
        return;
    visited.push_back(identity);

    std::vector<std::string> names;
    try {
        names = listDirectory(dir);
    } catch (const std::exception &) {
        if (fatal)
            throw;
        return;
    }
    for (const auto &name : names) {
        std::string full = dir;
        if (!full.empty() && full.back() != '/')
            full += '/';
        full += name;
        if (isDirectory(full)) {
            if (!isSymlink(full))
                walkFiles(full, false, visited, out);
        } else if (fileExists(full)) {
            out.push_back(std::move(full));
        }
    }
}

} // anonymous namespace

std::vector<std::string>
listFilesRecursive(const std::string &root)
{
    std::vector<std::pair<dev_t, ino_t>> visited;
    std::vector<std::string> files;
    walkFiles(root, true, visited, files);
    return files;
}

} // namespace util
} // namespace sharp
