#include "util/fs.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <dirent.h>
#include <sys/stat.h>

namespace sharp
{
namespace util
{

bool
isDirectory(const std::string &path)
{
    struct stat st = {};
    return stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool
fileExists(const std::string &path)
{
    struct stat st = {};
    return stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

void
makeDirectories(const std::string &path)
{
    if (path.empty() || isDirectory(path))
        return;
    // Create parents first; a trailing component beyond the last '/'
    // is the directory itself.
    size_t slash = path.find_last_of('/');
    if (slash != std::string::npos && slash > 0)
        makeDirectories(path.substr(0, slash));
    if (mkdir(path.c_str(), 0777) != 0 && errno != EEXIST) {
        throw std::runtime_error("cannot create directory '" + path +
                                 "': " + std::strerror(errno));
    }
}

std::string
readFileText(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("cannot read '" + path +
                                 "': " + std::strerror(errno));
    }
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

std::vector<std::string>
listDirectory(const std::string &path)
{
    DIR *dir = opendir(path.c_str());
    if (!dir) {
        throw std::runtime_error("cannot list directory '" + path +
                                 "': " + std::strerror(errno));
    }
    std::vector<std::string> names;
    while (const dirent *entry = readdir(dir)) {
        std::string name = entry->d_name;
        if (name != "." && name != "..")
            names.push_back(std::move(name));
    }
    closedir(dir);
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace util
} // namespace sharp
