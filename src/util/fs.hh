/**
 * @file
 * Minimal filesystem helpers for the CLI layer: directory detection
 * and non-recursive, deterministically ordered listings. Kept tiny on
 * purpose — artifact discovery (`sharp check DIR`, `--scenarios DIR`)
 * needs exactly this much and nothing in src/ should grow a general
 * filesystem dependency.
 */

#ifndef SHARP_UTIL_FS_HH
#define SHARP_UTIL_FS_HH

#include <string>
#include <vector>

namespace sharp
{
namespace util
{

/** True when @p path names an existing directory. */
bool isDirectory(const std::string &path);

/** True when @p path names an existing regular file. */
bool fileExists(const std::string &path);

/**
 * Create @p path and any missing parents (mkdir -p). Existing
 * directories are fine; anything else in the way is an error.
 * @throws std::runtime_error when a component cannot be created.
 */
void makeDirectories(const std::string &path);

/**
 * The entire contents of the file at @p path.
 * @throws std::runtime_error when the file cannot be read.
 */
std::string readFileText(const std::string &path);

/** True when @p path itself is a symbolic link (not its target). */
bool isSymlink(const std::string &path);

/**
 * Entry names (not paths) in @p path, sorted lexicographically so
 * callers iterate in the same order on every filesystem. "." and ".."
 * are omitted.
 *
 * @throws std::runtime_error when the directory cannot be opened.
 */
std::vector<std::string> listDirectory(const std::string &path);

/**
 * Every regular file under @p root (depth-first, entries in sorted
 * order), as paths prefixed with @p root. Symlinked directories are
 * not followed — a cycle of links (state dirs under test once grew
 * `campaigns/loop -> ..`) must not hang artifact discovery — and each
 * visited directory is entered at most once. Unreadable
 * subdirectories are skipped rather than fatal.
 *
 * @throws std::runtime_error when @p root itself cannot be listed.
 */
std::vector<std::string> listFilesRecursive(const std::string &root);

} // namespace util
} // namespace sharp

#endif // SHARP_UTIL_FS_HH
