#include "util/heartbeat.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace sharp
{
namespace util
{

HeartbeatChannel
HeartbeatChannel::create()
{
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
        throw std::runtime_error(std::string("pipe: ") +
                                 std::strerror(errno));
    }
    // Both ends are non-blocking: the supervisor drains the read end
    // opportunistically from its poll loop, and the worker's writes
    // must neither block nor turn a full buffer into a spurious
    // failure (sendHeartbeat treats EAGAIN as delivered).
    for (int fd : fds) {
        int flags = ::fcntl(fd, F_GETFL, 0);
        if (flags >= 0)
            ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
    HeartbeatChannel channel;
    channel.readFd = fds[0];
    channel.writeFd = fds[1];
    return channel;
}

void
HeartbeatChannel::closeRead()
{
    if (readFd >= 0) {
        ::close(readFd);
        readFd = -1;
    }
}

void
HeartbeatChannel::closeWrite()
{
    if (writeFd >= 0) {
        ::close(writeFd);
        writeFd = -1;
    }
}

bool
sendHeartbeat(int writeFd)
{
    if (writeFd < 0)
        return false;
    char beat = 1;
    for (;;) {
        ssize_t n = ::write(writeFd, &beat, 1);
        if (n == 1)
            return true;
        if (n < 0 && errno == EINTR)
            continue;
        // A full pipe means the supervisor has unread beats — still
        // alive by definition. Only a closed read end is a failure.
        return n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
    }
}

size_t
drainHeartbeats(int readFd)
{
    if (readFd < 0)
        return 0;
    size_t beats = 0;
    char chunk[256];
    for (;;) {
        ssize_t n = ::read(readFd, chunk, sizeof(chunk));
        if (n > 0) {
            beats += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return beats; // EAGAIN (nothing pending), EOF, or error
    }
}

} // namespace util
} // namespace sharp
