/**
 * @file
 * Heartbeat plumbing for supervised worker processes.
 *
 * A shard worker proves liveness by writing one byte per completed
 * round into a pipe; the supervising daemon polls the read end and
 * resets the shard's deadline on every byte. A worker that hangs
 * mid-round stops beating, the deadline lapses, and the watchdog
 * kills and fails the campaign over — no in-band protocol, no shared
 * memory, and the pipe closes by itself when the worker dies, so a
 * SIGKILLed shard is also detectable as EOF.
 */

#ifndef SHARP_UTIL_HEARTBEAT_HH
#define SHARP_UTIL_HEARTBEAT_HH

#include <cstddef>

namespace sharp
{
namespace util
{

/**
 * A one-way heartbeat pipe. The parent keeps readFd (non-blocking)
 * and the forked worker keeps writeFd; each side closes the end it
 * does not use.
 */
struct HeartbeatChannel
{
    int readFd = -1;
    int writeFd = -1;

    /**
     * Create the pipe (read end non-blocking).
     * @throws std::runtime_error when pipe() fails.
     */
    static HeartbeatChannel create();

    void closeRead();
    void closeWrite();
};

/**
 * Write one heartbeat byte. A full pipe counts as a successful beat —
 * the reader is merely behind, which is proof of life in itself.
 * Returns false only when the pipe is broken (supervisor gone).
 */
bool sendHeartbeat(int writeFd);

/**
 * Drain all pending heartbeat bytes from a non-blocking read end.
 * @return the number of beats consumed (0 when none were pending).
 */
size_t drainHeartbeats(int readFd);

} // namespace util
} // namespace sharp

#endif // SHARP_UTIL_HEARTBEAT_HH
