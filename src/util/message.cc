#include "util/message.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace sharp
{
namespace util
{

namespace
{

// warn()/inform() may fire from pool workers (parallel suite runs);
// the sink and the streams are shared, so emission is serialized.
std::mutex emitMutex;
std::string *captureSink = nullptr;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return std::string(fmt);
    std::string buf(static_cast<size_t>(len), '\0');
    std::vsnprintf(buf.data(), buf.size() + 1, fmt, ap);
    return buf;
}

void
emit(const char *prefix, const std::string &msg, FILE *stream)
{
    std::lock_guard<std::mutex> lock(emitMutex);
    if (captureSink) {
        captureSink->append(prefix);
        captureSink->append(msg);
        captureSink->push_back('\n');
        return;
    }
    std::fprintf(stream, "%s%s\n", prefix, msg.c_str());
}

} // anonymous namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("warn: ", msg, stderr);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("info: ", msg, stdout);
}

void
setMessageCapture(std::string *sink)
{
    std::lock_guard<std::mutex> lock(emitMutex);
    captureSink = sink;
}

} // namespace util
} // namespace sharp
