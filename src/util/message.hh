/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (framework bugs), fatal() for unrecoverable user errors, warn() and
 * inform() for non-fatal status messages. All messages go to stderr
 * except inform(), which goes to stdout.
 */

#ifndef SHARP_UTIL_MESSAGE_HH
#define SHARP_UTIL_MESSAGE_HH

#include <cstdarg>
#include <string>

namespace sharp
{
namespace util
{

/**
 * Abort with a message. Call when an internal invariant is violated,
 * i.e. a bug in SHARP itself. Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit with an error message. Call when the *user* supplied an invalid
 * configuration or input that makes continuing impossible. Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about suspicious but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Route warn()/inform() output into a string buffer instead of the
 * standard streams; used by tests. Passing nullptr restores the default.
 */
void setMessageCapture(std::string *sink);

} // namespace util
} // namespace sharp

#endif // SHARP_UTIL_MESSAGE_HH
