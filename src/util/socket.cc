#include "util/socket.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace sharp
{
namespace util
{

namespace
{

/** Fill a sockaddr_un for @p path, rejecting over-long paths. */
sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un address = {};
    address.sun_family = AF_UNIX;
    if (path.size() >= sizeof(address.sun_path)) {
        throw std::runtime_error(
            "socket path '" + path + "' exceeds the " +
            std::to_string(sizeof(address.sun_path) - 1) +
            "-byte unix-socket limit");
    }
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
    return address;
}

} // anonymous namespace

int
listenUnixSocket(const std::string &path, int backlog)
{
    sockaddr_un address = unixAddress(path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    }
    // A socket file left behind by a dead daemon would make bind fail
    // with EADDRINUSE even though nobody is listening.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&address),
               sizeof(address)) != 0) {
        int saved = errno;
        ::close(fd);
        throw std::runtime_error("bind '" + path +
                                 "': " + std::strerror(saved));
    }
    if (::listen(fd, backlog) != 0) {
        int saved = errno;
        ::close(fd);
        ::unlink(path.c_str());
        throw std::runtime_error("listen '" + path +
                                 "': " + std::strerror(saved));
    }
    return fd;
}

int
connectUnixSocket(const std::string &path)
{
    sockaddr_un address = unixAddress(path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&address),
                  sizeof(address)) != 0) {
        int saved = errno;
        ::close(fd);
        throw std::runtime_error("cannot connect to '" + path +
                                 "': " + std::strerror(saved));
    }
    return fd;
}

bool
sendLine(int fd, const std::string &line)
{
    std::string framed = line;
    framed.push_back('\n');
    size_t sent = 0;
    while (sent < framed.size()) {
        // MSG_NOSIGNAL: a peer that hung up must surface as an error
        // return, not a process-killing SIGPIPE.
        ssize_t n = ::send(fd, framed.data() + sent,
                           framed.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Non-blocking sender (the daemon) with a full socket
                // buffer: wait briefly for the peer to drain rather
                // than dropping it mid-response.
                pollfd waiter = {};
                waiter.fd = fd;
                waiter.events = POLLOUT;
                if (::poll(&waiter, 1, 5000) > 0)
                    continue;
            }
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

bool
takeLine(std::string &buffer, std::string &line)
{
    size_t end = buffer.find('\n');
    if (end == std::string::npos)
        return false;
    line = buffer.substr(0, end);
    buffer.erase(0, end + 1);
    return true;
}

bool
recvLine(int fd, std::string &buffer, std::string &line)
{
    if (takeLine(buffer, line))
        return true;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF with no complete line
        buffer.append(chunk, static_cast<size_t>(n));
        if (takeLine(buffer, line))
            return true;
    }
}

void
closeQuietly(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

} // namespace util
} // namespace sharp
