/**
 * @file
 * Unix-domain stream socket helpers for the service layer.
 *
 * `sharp serve` speaks a line-delimited JSON protocol over a local
 * socket; these are exactly the primitives that protocol needs — bind
 * and listen on a path, connect to one, and move whole lines — kept
 * out of src/serve so tests and the client library share one
 * implementation. All functions work on raw fds; ownership stays with
 * the caller (the daemon polls many fds at once and cannot hide them
 * behind RAII wrappers without fighting poll()).
 */

#ifndef SHARP_UTIL_SOCKET_HH
#define SHARP_UTIL_SOCKET_HH

#include <string>

namespace sharp
{
namespace util
{

/**
 * Create, bind, and listen on a unix stream socket at @p path. A
 * stale socket file from a dead daemon is unlinked first — the live
 * daemon is the one holding the listening fd, not the file.
 * @throws std::runtime_error when the path is too long for sockaddr_un
 *         or any socket call fails.
 */
int listenUnixSocket(const std::string &path, int backlog = 16);

/**
 * Connect to the unix stream socket at @p path.
 * @return the connected fd.
 * @throws std::runtime_error when the socket is absent or refuses.
 */
int connectUnixSocket(const std::string &path);

/**
 * Write @p line plus a terminating newline, looping over partial
 * writes. Returns false on any write error (including EPIPE from a
 * vanished peer) — the protocol treats that as a dropped client, not
 * a daemon failure.
 */
bool sendLine(int fd, const std::string &line);

/**
 * Read from @p fd into @p buffer until it holds a full line, then
 * move that line (newline stripped) into @p line. @p buffer carries
 * partial data between calls on the same connection. Returns false on
 * EOF or error with no complete line available.
 */
bool recvLine(int fd, std::string &buffer, std::string &line);

/** Extract one complete line from @p buffer if present (no I/O). */
bool takeLine(std::string &buffer, std::string &line);

/** close() that tolerates already-closed fds; -1 is a no-op. */
void closeQuietly(int fd);

} // namespace util
} // namespace sharp

#endif // SHARP_UTIL_SOCKET_HH
