#include "util/string_utils.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace sharp
{
namespace util
{

std::vector<std::string>
split(std::string_view text, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, std::string_view delim)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out.append(delim);
        out.append(parts[i]);
    }
    return out;
}

std::string
trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return std::string(text.substr(begin, end - begin));
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::optional<double>
parseDouble(std::string_view text)
{
    std::string buf = trim(text);
    if (buf.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(buf.c_str(), &end);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return std::nullopt;
    return value;
}

std::optional<long>
parseLong(std::string_view text)
{
    std::string buf = trim(text);
    if (buf.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    long value = std::strtol(buf.c_str(), &end, 10);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return std::nullopt;
    return value;
}

std::string
replaceAll(std::string text, std::string_view from, std::string_view to)
{
    if (from.empty())
        return text;
    size_t pos = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
        text.replace(pos, from.size(), to);
        pos += to.size();
    }
    return text;
}

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    std::string out(buf);
    if (out.find('.') != std::string::npos) {
        size_t last = out.find_last_not_of('0');
        if (out[last] == '.')
            --last;
        out.erase(last + 1);
    }
    // Normalize negative zero.
    if (out == "-0")
        out = "0";
    return out;
}

} // namespace util
} // namespace sharp
