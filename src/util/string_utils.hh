/**
 * @file
 * Small string-manipulation helpers shared across SHARP modules.
 */

#ifndef SHARP_UTIL_STRING_UTILS_HH
#define SHARP_UTIL_STRING_UTILS_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sharp
{
namespace util
{

/** Split @p text on @p delim. Empty fields are preserved. */
std::vector<std::string> split(std::string_view text, char delim);

/** Join @p parts with @p delim between consecutive elements. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view delim);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view text);

/** True if @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True if @p text ends with @p suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view text);

/** Parse a double; returns nullopt if the full string is not a number. */
std::optional<double> parseDouble(std::string_view text);

/** Parse a long; returns nullopt if the full string is not an integer. */
std::optional<long> parseLong(std::string_view text);

/** Replace every occurrence of @p from in @p text with @p to. */
std::string replaceAll(std::string text, std::string_view from,
                       std::string_view to);

/**
 * Format a double compactly: fixed notation with @p precision digits,
 * trailing zeros removed ("3.4600" -> "3.46", "2.0" -> "2").
 */
std::string formatDouble(double value, int precision = 6);

} // namespace util
} // namespace sharp

#endif // SHARP_UTIL_STRING_UTILS_HH
