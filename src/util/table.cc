#include "util/table.hh"

#include <algorithm>

#include "util/message.hh"
#include "util/string_utils.hh"

namespace sharp
{
namespace util
{

TextTable::TextTable(std::vector<std::string> headers_in)
    : headers(std::move(headers_in))
{
    if (this->headers.empty())
        panic("TextTable requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != headers.size()) {
        panic("TextTable row has %zu cells, expected %zu", row.size(),
              headers.size());
    }
    rows.push_back(std::move(row));
}

std::vector<size_t>
TextTable::columnWidths() const
{
    std::vector<size_t> widths(headers.size());
    for (size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    return widths;
}

bool
TextTable::looksNumeric(const std::string &cell)
{
    return parseDouble(cell).has_value();
}

namespace
{

std::string
pad(const std::string &cell, size_t width, bool right_align)
{
    std::string spaces(width - std::min(width, cell.size()), ' ');
    return right_align ? spaces + cell : cell + spaces;
}

} // anonymous namespace

std::string
TextTable::render() const
{
    auto widths = columnWidths();
    std::string sep = "+";
    for (size_t w : widths)
        sep += std::string(w + 2, '-') + "+";
    sep += "\n";

    std::string out = sep;
    out += "|";
    for (size_t c = 0; c < headers.size(); ++c)
        out += " " + pad(headers[c], widths[c], false) + " |";
    out += "\n" + sep;
    for (const auto &row : rows) {
        out += "|";
        for (size_t c = 0; c < row.size(); ++c)
            out += " " + pad(row[c], widths[c], looksNumeric(row[c])) + " |";
        out += "\n";
    }
    out += sep;
    return out;
}

std::string
TextTable::renderMarkdown() const
{
    auto widths = columnWidths();
    std::string out = "|";
    for (size_t c = 0; c < headers.size(); ++c)
        out += " " + pad(headers[c], widths[c], false) + " |";
    out += "\n|";
    for (size_t w : widths)
        out += std::string(w + 2, '-') + "|";
    out += "\n";
    for (const auto &row : rows) {
        out += "|";
        for (size_t c = 0; c < row.size(); ++c)
            out += " " + pad(row[c], widths[c], looksNumeric(row[c])) + " |";
        out += "\n";
    }
    return out;
}

} // namespace util
} // namespace sharp
