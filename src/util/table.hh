/**
 * @file
 * Plain-text table formatter used by the reporter and the benchmark
 * harnesses to print paper-style tables.
 */

#ifndef SHARP_UTIL_TABLE_HH
#define SHARP_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace sharp
{
namespace util
{

/**
 * A simple column-aligned text table.
 *
 * Columns are sized to the widest cell. Numeric-looking cells are
 * right-aligned, text cells left-aligned. render() produces an ASCII
 * table; renderMarkdown() produces a GitHub-flavored markdown table.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows. */
    size_t numRows() const { return rows.size(); }

    /** Render as an ASCII box table. */
    std::string render() const;

    /** Render as a markdown table. */
    std::string renderMarkdown() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;

    std::vector<size_t> columnWidths() const;
    static bool looksNumeric(const std::string &cell);
};

} // namespace util
} // namespace sharp

#endif // SHARP_UTIL_TABLE_HH
