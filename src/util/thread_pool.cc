#include "util/thread_pool.hh"

#include <algorithm>
#include <atomic>

namespace sharp
{
namespace util
{

ThreadPool::ThreadPool(size_t threads)
{
    size_t n = std::max<size_t>(threads, 1);
    workers.reserve(n);
    for (size_t i = 0; i < n; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    wakeup.notify_all();
    for (auto &worker : workers)
        worker.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex);
        queue.push_back(std::move(packaged));
    }
    wakeup.notify_one();
    return future;
}

size_t
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<size_t>(n);
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            wakeup.wait(lock,
                        [this] { return stopping || !queue.empty(); });
            // Drain the queue even when stopping so submitted futures
            // always complete.
            if (queue.empty())
                return;
            task = std::move(queue.front());
            queue.pop_front();
        }
        task(); // exceptions land in the task's future
    }
}

void
parallelFor(size_t jobs, size_t count,
            const std::function<void(size_t)> &fn)
{
    if (count == 0)
        return;
    if (jobs <= 1 || count == 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    size_t width = std::min(jobs, count);
    std::atomic<size_t> next{0};
    std::vector<std::exception_ptr> errors(count);

    {
        ThreadPool pool(width);
        std::vector<std::future<void>> done;
        done.reserve(width);
        for (size_t w = 0; w < width; ++w) {
            done.push_back(pool.submit([&] {
                while (true) {
                    size_t i = next.fetch_add(1);
                    if (i >= count)
                        return;
                    try {
                        fn(i);
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                }
            }));
        }
        for (auto &future : done)
            future.get();
    }

    for (auto &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

} // namespace util
} // namespace sharp
