/**
 * @file
 * A small reusable thread pool for the parallel execution layer.
 *
 * The suite runner and the benchmarks fan independent work units out
 * over a fixed set of worker threads. The pool is deliberately tiny:
 * fixed size, FIFO queue, futures for completion, no work stealing.
 * parallelFor() is the main entry point — it runs an index range on a
 * bounded number of workers while letting results land at their index,
 * so callers keep deterministic output ordering regardless of
 * completion order.
 */

#ifndef SHARP_UTIL_THREAD_POOL_HH
#define SHARP_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sharp
{
namespace util
{

/**
 * Fixed-size pool of worker threads consuming a FIFO task queue.
 * Tasks may be submitted from any thread, including pool workers
 * (submission never blocks on task completion).
 */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 is clamped to 1.
     */
    explicit ThreadPool(size_t threads);

    /** Joins all workers; pending tasks are still executed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task. The returned future completes when the task has
     * run; if the task throws, the exception is delivered through the
     * future.
     */
    std::future<void> submit(std::function<void()> task);

    /** Number of worker threads. */
    size_t size() const { return workers.size(); }

    /** Hardware thread count (>= 1 even when unknown). */
    static size_t hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::packaged_task<void()>> queue;
    std::mutex mutex;
    std::condition_variable wakeup;
    bool stopping = false;
};

/**
 * Run fn(0) ... fn(count - 1) using at most @p jobs concurrent
 * workers and block until every call has returned.
 *
 * With jobs <= 1 (or count <= 1) the calls happen inline on the
 * calling thread, in index order — the serial path stays available
 * and bit-identical for determinism checks. With jobs > 1 a
 * transient pool of min(jobs, count) workers drains an atomic index
 * counter, so indices are claimed in order even though they complete
 * out of order; callers write results to slot i of a preallocated
 * vector to keep output ordering deterministic.
 *
 * If any call throws, the first exception (by index) is rethrown
 * after all workers have finished; the remaining indices still run.
 */
void parallelFor(size_t jobs, size_t count,
                 const std::function<void(size_t)> &fn);

} // namespace util
} // namespace sharp

#endif // SHARP_UTIL_THREAD_POOL_HH
