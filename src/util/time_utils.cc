#include "util/time_utils.hh"

#include <chrono>
#include <cstdio>
#include <ctime>

#include "util/string_utils.hh"

namespace sharp
{
namespace util
{

uint64_t
monotonicNanos()
{
    auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

std::string
isoTimestamp()
{
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    return buf;
}

std::string
formatDuration(double seconds)
{
    if (seconds < 0)
        return "-" + formatDuration(-seconds);
    if (seconds < 1e-3) {
        return formatDouble(seconds * 1e6, 3) + " us";
    } else if (seconds < 1.0) {
        return formatDouble(seconds * 1e3, 3) + " ms";
    } else if (seconds < 120.0) {
        return formatDouble(seconds, 3) + " s";
    }
    long minutes = static_cast<long>(seconds) / 60;
    double rem = seconds - static_cast<double>(minutes) * 60.0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%ld m %s s", minutes,
                  formatDouble(rem, 1).c_str());
    return buf;
}

} // namespace util
} // namespace sharp
