/**
 * @file
 * Wall-clock helpers: monotonic timing for measurements and ISO-8601
 * timestamps for metadata records.
 */

#ifndef SHARP_UTIL_TIME_UTILS_HH
#define SHARP_UTIL_TIME_UTILS_HH

#include <cstdint>
#include <string>

namespace sharp
{
namespace util
{

/** Monotonic clock reading in nanoseconds; only differences are meaningful. */
uint64_t monotonicNanos();

/** Current wall-clock time formatted as "YYYY-MM-DDTHH:MM:SSZ" (UTC). */
std::string isoTimestamp();

/**
 * Format a duration in seconds as a human-readable string, e.g.
 * "532 ms", "3.46 s", "2 m 13 s".
 */
std::string formatDuration(double seconds);

/**
 * Simple stopwatch over the monotonic clock.
 */
class Stopwatch
{
  public:
    Stopwatch() : startNs(monotonicNanos()) {}

    /** Restart the stopwatch. */
    void reset() { startNs = monotonicNanos(); }

    /** Elapsed time since construction or last reset, in seconds. */
    double
    elapsedSeconds() const
    {
        return static_cast<double>(monotonicNanos() - startNs) * 1e-9;
    }

  private:
    uint64_t startNs;
};

} // namespace util
} // namespace sharp

#endif // SHARP_UTIL_TIME_UTILS_HH
