#include "workflow/executor.hh"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "launcher/local_backend.hh"

namespace sharp
{
namespace workflow
{

const char *
taskStatusName(TaskStatus status)
{
    switch (status) {
      case TaskStatus::Pending: return "pending";
      case TaskStatus::Succeeded: return "succeeded";
      case TaskStatus::Failed: return "failed";
      case TaskStatus::Skipped: return "skipped";
    }
    return "unknown";
}

size_t
ExecutionReport::count(TaskStatus wanted) const
{
    size_t n = 0;
    for (const auto &[name, st] : status) {
        (void)name;
        if (st == wanted)
            ++n;
    }
    return n;
}

Executor::Executor(TaskRunner runner_in) : runner(std::move(runner_in))
{
    if (!runner)
        throw std::invalid_argument("Executor requires a task runner");
}

ExecutionReport
Executor::execute(const TaskGraph &graph)
{
    graph.validate();

    ExecutionReport report;
    for (const auto &task : graph.tasks())
        report.status[task.name] = TaskStatus::Pending;

    for (const auto &name : graph.topologicalOrder()) {
        const Task &task = graph.task(name);

        bool deps_ok = true;
        for (const auto &dep : task.dependencies) {
            if (report.status[dep] != TaskStatus::Succeeded) {
                deps_ok = false;
                break;
            }
        }
        if (!deps_ok) {
            report.status[name] = TaskStatus::Skipped;
            report.success = false;
            continue;
        }

        report.executionOrder.push_back(name);
        bool ok = runner(task);
        report.status[name] =
            ok ? TaskStatus::Succeeded : TaskStatus::Failed;
        if (!ok)
            report.success = false;
    }
    return report;
}

ExecutionReport
Executor::executeParallel(const TaskGraph &graph, size_t maxThreads)
{
    graph.validate();
    if (maxThreads == 0)
        maxThreads = 1;

    ExecutionReport report;
    for (const auto &task : graph.tasks())
        report.status[task.name] = TaskStatus::Pending;

    for (const auto &wave : graph.waves()) {
        // Partition the wave into runnable and skipped tasks.
        std::vector<std::string> runnable;
        for (const auto &name : wave) {
            const Task &task = graph.task(name);
            bool deps_ok = true;
            for (const auto &dep : task.dependencies) {
                if (report.status[dep] != TaskStatus::Succeeded) {
                    deps_ok = false;
                    break;
                }
            }
            if (deps_ok) {
                runnable.push_back(name);
                report.executionOrder.push_back(name);
            } else {
                report.status[name] = TaskStatus::Skipped;
                report.success = false;
            }
        }

        // Run the wave in chunks of up to maxThreads tasks.
        std::vector<char> ok(runnable.size(), 0);
        for (size_t base = 0; base < runnable.size();
             base += maxThreads) {
            size_t count =
                std::min(maxThreads, runnable.size() - base);
            std::vector<std::thread> threads;
            threads.reserve(count);
            for (size_t t = 0; t < count; ++t) {
                size_t index = base + t;
                threads.emplace_back([this, &graph, &runnable, &ok,
                                      index] {
                    ok[index] =
                        runner(graph.task(runnable[index])) ? 1 : 0;
                });
            }
            for (auto &thread : threads)
                thread.join();
        }
        for (size_t i = 0; i < runnable.size(); ++i) {
            report.status[runnable[i]] =
                ok[i] ? TaskStatus::Succeeded : TaskStatus::Failed;
            if (!ok[i])
                report.success = false;
        }
    }
    return report;
}

Executor::TaskRunner
shellRunner(double timeout_seconds)
{
    return [timeout_seconds](const Task &task) {
        if (task.command.empty())
            return true; // empty recipe: a pure synchronization point
        launcher::ProcessOutcome outcome = launcher::runProcess(
            {"/bin/sh", "-c", task.command}, timeout_seconds);
        return outcome.started && !outcome.timedOut &&
               outcome.exitStatus == 0;
    };
}

} // namespace workflow
} // namespace sharp
