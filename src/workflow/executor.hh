/**
 * @file
 * Native workflow execution: runs a TaskGraph in dependency order
 * without requiring an external `make`. Callers supply a task runner
 * (typically wrapping a Launcher or a LocalProcessBackend); the
 * executor handles ordering, failure propagation, and per-task status.
 */

#ifndef SHARP_WORKFLOW_EXECUTOR_HH
#define SHARP_WORKFLOW_EXECUTOR_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "workflow/task_graph.hh"

namespace sharp
{
namespace workflow
{

/** Per-task execution status. */
enum class TaskStatus
{
    Pending,
    Succeeded,
    Failed,
    Skipped, ///< a dependency failed
};

/** Name of a task status. */
const char *taskStatusName(TaskStatus status);

/** The outcome of a workflow execution. */
struct ExecutionReport
{
    /** Status per task. */
    std::map<std::string, TaskStatus> status;
    /** Tasks in the order they were attempted. */
    std::vector<std::string> executionOrder;
    /** True when every task succeeded. */
    bool success = true;

    /** Count of tasks with the given status. */
    size_t count(TaskStatus wanted) const;
};

/**
 * Executes tasks in topological order.
 */
class Executor
{
  public:
    /** Runs one task; returns true on success. */
    using TaskRunner = std::function<bool(const Task &)>;

    /**
     * @param runner the task runner
     * @throws std::invalid_argument when runner is empty
     */
    explicit Executor(TaskRunner runner);

    /**
     * Run the whole graph. Tasks whose dependencies failed (or were
     * skipped) are skipped, not run.
     * @throws std::invalid_argument when the graph is invalid
     */
    ExecutionReport execute(const TaskGraph &graph);

    /**
     * Run the graph wave by wave, executing the tasks of each wave on
     * up to @p maxThreads concurrent threads (the `make -j` of the
     * native executor). The runner must be thread-safe. Task status
     * semantics match execute(); executionOrder lists tasks grouped by
     * wave, in insertion order within a wave.
     */
    ExecutionReport executeParallel(const TaskGraph &graph,
                                    size_t maxThreads = 4);

  private:
    TaskRunner runner;
};

/** A TaskRunner that executes each task's command via /bin/sh. */
Executor::TaskRunner shellRunner(double timeout_seconds = 60.0);

} // namespace workflow
} // namespace sharp

#endif // SHARP_WORKFLOW_EXECUTOR_HH
