/**
 * @file
 * Makefile emission: the paper's workflow execution mechanism. Each
 * task becomes a phony target whose recipe is its command and whose
 * prerequisites are its dependencies; `make <workflow>` runs the DAG
 * with make's own scheduling (including -j parallelism).
 */

#ifndef SHARP_WORKFLOW_MAKEFILE_WRITER_HH
#define SHARP_WORKFLOW_MAKEFILE_WRITER_HH

#include <string>

#include "workflow/task_graph.hh"

namespace sharp
{
namespace workflow
{

/**
 * Render @p graph as a Makefile.
 *
 * @param graph       a validated task graph
 * @param defaultGoal name of the all-encompassing phony default target
 * @return Makefile text
 * @throws std::invalid_argument when the graph fails validation
 */
std::string renderMakefile(const TaskGraph &graph,
                           const std::string &defaultGoal = "workflow");

/** Write the Makefile to @p path. */
void writeMakefile(const TaskGraph &graph, const std::string &path,
                   const std::string &defaultGoal = "workflow");

/** Sanitize a task name into a valid make target token. */
std::string makeTargetName(const std::string &taskName);

} // namespace workflow
} // namespace sharp

#endif // SHARP_WORKFLOW_MAKEFILE_WRITER_HH
