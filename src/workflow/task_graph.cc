#include "workflow/task_graph.hh"

#include <algorithm>
#include <stdexcept>

namespace sharp
{
namespace workflow
{

void
TaskGraph::addTask(Task task)
{
    if (index.count(task.name)) {
        throw std::invalid_argument("duplicate workflow task: " +
                                    task.name);
    }
    index[task.name] = taskList.size();
    taskList.push_back(std::move(task));
}

void
TaskGraph::addDependency(const std::string &task_name,
                         const std::string &depends_on)
{
    auto it = index.find(task_name);
    if (it == index.end())
        throw std::out_of_range("unknown workflow task: " + task_name);
    if (!index.count(depends_on))
        throw std::out_of_range("unknown workflow task: " + depends_on);
    taskList[it->second].dependencies.push_back(depends_on);
}

const Task &
TaskGraph::task(const std::string &name) const
{
    auto it = index.find(name);
    if (it == index.end())
        throw std::out_of_range("unknown workflow task: " + name);
    return taskList[it->second];
}

bool
TaskGraph::contains(const std::string &name) const
{
    return index.count(name) > 0;
}

void
TaskGraph::validate() const
{
    for (const auto &task : taskList) {
        for (const auto &dep : task.dependencies) {
            if (!index.count(dep)) {
                throw std::invalid_argument(
                    "task '" + task.name +
                    "' depends on unknown task '" + dep + "'");
            }
            if (dep == task.name) {
                throw std::invalid_argument("task '" + task.name +
                                            "' depends on itself");
            }
        }
    }
    topologicalOrder(); // throws on cycles
}

std::vector<std::string>
TaskGraph::topologicalOrder() const
{
    // Kahn's algorithm with insertion-order tie-breaking.
    std::map<std::string, size_t> in_degree;
    for (const auto &task : taskList)
        in_degree[task.name] = 0;
    for (const auto &task : taskList) {
        for (const auto &dep : task.dependencies) {
            if (!index.count(dep)) {
                throw std::invalid_argument(
                    "task '" + task.name +
                    "' depends on unknown task '" + dep + "'");
            }
        }
        in_degree[task.name] = task.dependencies.size();
    }

    std::vector<std::string> order;
    std::vector<bool> emitted(taskList.size(), false);
    while (order.size() < taskList.size()) {
        bool progress = false;
        for (size_t i = 0; i < taskList.size(); ++i) {
            if (emitted[i] || in_degree[taskList[i].name] != 0)
                continue;
            emitted[i] = true;
            order.push_back(taskList[i].name);
            // Decrement in-degree of dependents.
            for (size_t j = 0; j < taskList.size(); ++j) {
                if (emitted[j])
                    continue;
                const auto &deps = taskList[j].dependencies;
                size_t hits = static_cast<size_t>(
                    std::count(deps.begin(), deps.end(),
                               taskList[i].name));
                in_degree[taskList[j].name] -= hits;
            }
            progress = true;
        }
        if (!progress)
            throw std::invalid_argument("workflow graph has a cycle");
    }
    return order;
}

std::vector<std::vector<std::string>>
TaskGraph::waves() const
{
    if (taskList.empty())
        return {};
    std::vector<std::string> order = topologicalOrder();
    std::map<std::string, size_t> depth;
    for (const auto &name : order) {
        const Task &t = task(name);
        size_t d = 0;
        for (const auto &dep : t.dependencies)
            d = std::max(d, depth[dep] + 1);
        depth[name] = d;
    }
    size_t max_depth = 0;
    for (const auto &[name, d] : depth)
        max_depth = std::max(max_depth, d);

    std::vector<std::vector<std::string>> out(max_depth + 1);
    for (const auto &task : taskList)
        out[depth[task.name]].push_back(task.name);
    return out;
}

} // namespace workflow
} // namespace sharp
