#include "workflow/task_graph.hh"

#include <algorithm>
#include <stdexcept>

namespace sharp
{
namespace workflow
{

namespace
{

std::string
joinCycle(const std::vector<std::string> &cycle)
{
    std::string out;
    for (const auto &name : cycle) {
        if (!out.empty())
            out += " -> ";
        out += name;
    }
    return out;
}

} // anonymous namespace

void
TaskGraph::addTask(Task task)
{
    if (index.count(task.name)) {
        throw std::invalid_argument("duplicate workflow task: " +
                                    task.name);
    }
    index[task.name] = taskList.size();
    taskList.push_back(std::move(task));
}

void
TaskGraph::addDependency(const std::string &task_name,
                         const std::string &depends_on)
{
    auto it = index.find(task_name);
    if (it == index.end())
        throw std::out_of_range("unknown workflow task: " + task_name);
    if (!index.count(depends_on))
        throw std::out_of_range("unknown workflow task: " + depends_on);
    taskList[it->second].dependencies.push_back(depends_on);
}

const Task &
TaskGraph::task(const std::string &name) const
{
    auto it = index.find(name);
    if (it == index.end())
        throw std::out_of_range("unknown workflow task: " + name);
    return taskList[it->second];
}

bool
TaskGraph::contains(const std::string &name) const
{
    return index.count(name) > 0;
}

void
TaskGraph::validate() const
{
    for (const auto &task : taskList) {
        for (const auto &dep : task.dependencies) {
            if (!index.count(dep)) {
                throw std::invalid_argument(
                    "task '" + task.name +
                    "' depends on unknown task '" + dep + "'");
            }
            if (dep == task.name) {
                throw std::invalid_argument("task '" + task.name +
                                            "' depends on itself");
            }
        }
    }
    std::vector<std::string> cycle = findCycle();
    if (!cycle.empty())
        throw std::invalid_argument("workflow graph has a cycle: " +
                                    joinCycle(cycle));
}

std::vector<std::string>
TaskGraph::findCycle() const
{
    // Iterative DFS, insertion order, three colors: 0 unvisited,
    // 1 on the current path, 2 finished. A back edge to a color-1
    // task closes a cycle; the path stack spells it out.
    std::vector<int> color(taskList.size(), 0);
    std::vector<size_t> path;

    for (size_t root = 0; root < taskList.size(); ++root) {
        if (color[root] != 0)
            continue;
        // Frame: (task index, next dependency to explore).
        std::vector<std::pair<size_t, size_t>> stack;
        stack.emplace_back(root, 0);
        color[root] = 1;
        path.push_back(root);
        while (!stack.empty()) {
            auto &[at, next_dep] = stack.back();
            const auto &deps = taskList[at].dependencies;
            if (next_dep >= deps.size()) {
                color[at] = 2;
                path.pop_back();
                stack.pop_back();
                continue;
            }
            auto it = index.find(deps[next_dep]);
            ++next_dep;
            if (it == index.end())
                continue; // dangling: validate() reports it
            size_t to = it->second;
            if (color[to] == 1) {
                // Close the loop: slice the path from `to` onward.
                std::vector<std::string> cycle;
                auto start =
                    std::find(path.begin(), path.end(), to);
                for (auto walk = start; walk != path.end(); ++walk)
                    cycle.push_back(taskList[*walk].name);
                cycle.push_back(taskList[to].name);
                return cycle;
            }
            if (color[to] == 0) {
                color[to] = 1;
                path.push_back(to);
                stack.emplace_back(to, 0);
            }
        }
    }
    return {};
}

std::vector<std::string>
TaskGraph::topologicalOrder() const
{
    // Kahn's algorithm with insertion-order tie-breaking.
    std::map<std::string, size_t> in_degree;
    for (const auto &task : taskList)
        in_degree[task.name] = 0;
    for (const auto &task : taskList) {
        for (const auto &dep : task.dependencies) {
            if (!index.count(dep)) {
                throw std::invalid_argument(
                    "task '" + task.name +
                    "' depends on unknown task '" + dep + "'");
            }
        }
        in_degree[task.name] = task.dependencies.size();
    }

    std::vector<std::string> order;
    std::vector<bool> emitted(taskList.size(), false);
    while (order.size() < taskList.size()) {
        bool progress = false;
        for (size_t i = 0; i < taskList.size(); ++i) {
            if (emitted[i] || in_degree[taskList[i].name] != 0)
                continue;
            emitted[i] = true;
            order.push_back(taskList[i].name);
            // Decrement in-degree of dependents.
            for (size_t j = 0; j < taskList.size(); ++j) {
                if (emitted[j])
                    continue;
                const auto &deps = taskList[j].dependencies;
                size_t hits = static_cast<size_t>(
                    std::count(deps.begin(), deps.end(),
                               taskList[i].name));
                in_degree[taskList[j].name] -= hits;
            }
            progress = true;
        }
        if (!progress) {
            throw std::invalid_argument(
                "workflow graph has a cycle: " +
                joinCycle(findCycle()));
        }
    }
    return order;
}

std::vector<std::vector<std::string>>
TaskGraph::waves() const
{
    if (taskList.empty())
        return {};
    std::vector<std::string> order = topologicalOrder();
    std::map<std::string, size_t> depth;
    for (const auto &name : order) {
        const Task &t = task(name);
        size_t d = 0;
        for (const auto &dep : t.dependencies)
            d = std::max(d, depth[dep] + 1);
        depth[name] = d;
    }
    size_t max_depth = 0;
    for (const auto &[name, d] : depth)
        max_depth = std::max(max_depth, d);

    std::vector<std::vector<std::string>> out(max_depth + 1);
    for (const auto &task : taskList)
        out[depth[task.name]].push_back(task.name);
    return out;
}

} // namespace workflow
} // namespace sharp
