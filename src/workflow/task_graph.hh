/**
 * @file
 * Task dependency graphs.
 *
 * "Modern workflows often combine different applications or
 * application stages, sometimes with complex dependency relationships.
 * To execute these workflows with their dependency graphs, SHARP uses
 * the time-tested 'make' tool." (§IV-b) The graph model here backs
 * both the Makefile emitter and the native executor.
 */

#ifndef SHARP_WORKFLOW_TASK_GRAPH_HH
#define SHARP_WORKFLOW_TASK_GRAPH_HH

#include <map>
#include <string>
#include <vector>

namespace sharp
{
namespace workflow
{

/** One node of the workflow. */
struct Task
{
    /** Unique task name. */
    std::string name;
    /** Shell command (Makefile recipe) or function reference. */
    std::string command;
    /** Names of tasks that must complete first. */
    std::vector<std::string> dependencies;
};

/**
 * A directed acyclic dependency graph of named tasks.
 */
class TaskGraph
{
  public:
    TaskGraph() = default;

    /**
     * Add a task. @throws std::invalid_argument on duplicate names.
     */
    void addTask(Task task);

    /**
     * Add a dependency edge after the fact.
     * @throws std::out_of_range when either task is unknown.
     */
    void addDependency(const std::string &task,
                       const std::string &dependsOn);

    /** Number of tasks. */
    size_t size() const { return taskList.size(); }

    /** All tasks in insertion order. */
    const std::vector<Task> &tasks() const { return taskList; }

    /** Find a task. @throws std::out_of_range when unknown. */
    const Task &task(const std::string &name) const;

    /** True when a task exists. */
    bool contains(const std::string &name) const;

    /**
     * Validate the graph: every dependency must name an existing task
     * and the graph must be acyclic.
     * @throws std::invalid_argument describing the first problem
     *         found; for a cycle, the message spells out the full
     *         cycle path ("a -> b -> c -> a").
     */
    void validate() const;

    /**
     * First dependency cycle found, as the task names along it with
     * the starting task repeated at the end ("a", "b", "a"); empty
     * when the graph is acyclic. Dangling dependencies are ignored —
     * they cannot be part of a cycle. Deterministic: the search
     * follows insertion order.
     */
    std::vector<std::string> findCycle() const;

    /**
     * Tasks in a valid execution order (dependencies first). Ties are
     * broken by insertion order, making the result deterministic.
     * @throws std::invalid_argument when the graph has a cycle or a
     *         dangling dependency.
     */
    std::vector<std::string> topologicalOrder() const;

    /**
     * Group tasks into parallel waves: wave k contains tasks whose
     * longest dependency chain has length k. Tasks in one wave can run
     * concurrently.
     */
    std::vector<std::vector<std::string>> waves() const;

  private:
    std::vector<Task> taskList;
    std::map<std::string, size_t> index;
};

} // namespace workflow
} // namespace sharp

#endif // SHARP_WORKFLOW_TASK_GRAPH_HH
