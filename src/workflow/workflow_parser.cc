#include "workflow/workflow_parser.hh"

#include <map>
#include <stdexcept>

#include "check/diagnostic.hh"
#include "json/parser.hh"

namespace sharp
{
namespace workflow
{

namespace
{

/** One declared function: its command and where it was declared. */
struct FunctionInfo
{
    std::string command;
    const json::Value *site = nullptr;
    bool used = false;
};

using FunctionMap = std::map<std::string, FunctionInfo>;

FunctionMap
collectFunctions(const json::Value &doc, check::CheckResult &out)
{
    FunctionMap functions;
    const json::Value *list = doc.find("functions");
    if (!list)
        return functions;
    if (!list->isArray()) {
        out.error(*list, "wrong-type", "'functions' must be an array");
        return functions;
    }
    for (const auto &fn : list->asArray()) {
        if (!fn.isObject()) {
            out.error(fn, "wrong-type", "function must be an object");
            continue;
        }
        check::checkKnownFields(fn, {"name", "operation", "type"},
                                "function", out);
        std::string name = fn.getString("name", "");
        if (name.empty()) {
            out.error(fn, "missing-field", "function requires a name");
            continue;
        }
        if (functions.count(name)) {
            out.error(fn, "duplicate-function",
                      "duplicate function '" + name + "'");
            continue;
        }
        functions[name] =
            FunctionInfo{fn.getString("operation", ""), &fn, false};
    }
    return functions;
}

/**
 * Resolve an action's functionRef to a function name; empty means the
 * action is unusable (a diagnostic has been reported).
 */
std::string
actionFunctionName(const json::Value &action, check::CheckResult &out)
{
    if (!action.isObject()) {
        out.error(action, "wrong-type", "action must be an object");
        return "";
    }
    check::checkKnownFields(action, {"name", "functionRef", "arguments"},
                            "action", out);
    const json::Value *ref = action.find("functionRef");
    if (!ref) {
        out.error(action, "missing-field", "action requires functionRef");
        return "";
    }
    if (ref->isString())
        return ref->asString();
    if (ref->isObject()) {
        std::string name = ref->getString("refName", "");
        if (name.empty()) {
            out.error(*ref, "missing-field",
                      "functionRef requires refName");
            return "";
        }
        return name;
    }
    out.error(*ref, "wrong-type",
              "functionRef must be string or object");
    return "";
}

/** Resolve a state's transition target; empty = end state. */
std::string
stateTransition(const json::Value &state, check::CheckResult &out)
{
    const json::Value *transition = state.find("transition");
    if (!transition)
        return "";
    if (transition->isString())
        return transition->asString();
    if (transition->isObject())
        return transition->getString("nextState", "");
    out.error(*transition, "wrong-type",
              "transition must be string or object");
    return "";
}

/**
 * The real parser: build the workflow, appending every problem to
 * @p out instead of stopping at the first. Bad states are skipped and
 * the analysis continues, so `sharp check` reports a dangling
 * transition AND an unknown function AND a cycle in one pass. The
 * returned workflow is only meaningful when @p out has no errors.
 */
Workflow
buildWorkflow(const json::Value &doc, check::CheckResult &out)
{
    Workflow wf;
    if (!doc.isObject()) {
        out.error(doc, "wrong-type", "workflow must be a JSON object");
        return wf;
    }
    static const std::vector<std::string> known_top = {
        "id",    "name",      "version", "specVersion",
        "start", "functions", "states",  "description"};
    check::checkKnownFields(doc, known_top, "workflow", out);

    wf.id = doc.getString("id", "workflow");
    wf.name = doc.getString("name", wf.id);

    FunctionMap functions = collectFunctions(doc, out);
    std::vector<std::string> function_names;
    for (const auto &[name, info] : functions)
        function_names.push_back(name);

    const json::Value *states = doc.find("states");
    if (!states || !states->isArray() || states->size() == 0) {
        out.error(states ? *states : doc, "missing-field",
                  "workflow requires a non-empty 'states' array");
        return wf;
    }

    // First pass: collect state metadata and, per state, the names of
    // its first (entry) tasks and last (exit) tasks within the graph.
    struct StateTasks
    {
        std::string name;
        std::string transition;
        const json::Value *site = nullptr;
        std::vector<std::string> entryTasks;
        std::vector<std::string> exitTasks;
    };
    std::vector<StateTasks> state_tasks;

    auto addTask = [&wf, &out](Task task, const json::Value &site) {
        if (wf.graph.contains(task.name)) {
            out.error(site, "duplicate-task",
                      "duplicate workflow task '" + task.name + "'");
            return;
        }
        wf.graph.addTask(std::move(task));
    };

    // Resolves a function reference to its command; unknown functions
    // still yield a (command-less) task so sequencing analysis goes on.
    auto commandFor = [&functions, &function_names, &out](
                          const std::string &fn_name,
                          const json::Value &site) {
        auto it = functions.find(fn_name);
        if (it == functions.end()) {
            out.error(site, "dangling-function",
                      "action references unknown function '" + fn_name +
                          "'",
                      check::suggestName(fn_name, function_names));
            return std::string();
        }
        it->second.used = true;
        return it->second.command;
    };

    static const std::vector<std::string> known_state = {
        "name", "type", "actions", "branches", "transition", "end"};

    for (const auto &state : states->asArray()) {
        if (!state.isObject()) {
            out.error(state, "wrong-type", "state must be an object");
            continue;
        }
        check::checkKnownFields(state, known_state, "state", out);
        StateTasks st;
        st.site = &state;
        st.name = state.getString("name", "");
        if (st.name.empty()) {
            out.error(state, "missing-field", "state requires a name");
            continue;
        }
        bool duplicate = false;
        for (const auto &prior : state_tasks)
            duplicate = duplicate || prior.name == st.name;
        if (duplicate) {
            out.error(state, "duplicate-state",
                      "duplicate state '" + st.name + "'");
            continue;
        }
        st.transition = stateTransition(state, out);
        std::string type = state.getString("type", "operation");

        if (type == "operation") {
            const json::Value *actions = state.find("actions");
            if (!actions || !actions->isArray() ||
                actions->size() == 0) {
                out.error(actions ? *actions : state, "missing-field",
                          "operation state '" + st.name +
                              "' requires actions");
                state_tasks.push_back(std::move(st));
                continue;
            }
            // Actions within one operation state run sequentially.
            std::string prev;
            size_t i = 0;
            for (const auto &action : actions->asArray()) {
                std::string fn = actionFunctionName(action, out);
                if (fn.empty()) {
                    ++i;
                    continue;
                }
                std::string task_name =
                    st.name + "." + std::to_string(i) + "." + fn;
                Task task;
                task.name = task_name;
                task.command = commandFor(fn, action);
                if (!prev.empty())
                    task.dependencies.push_back(prev);
                addTask(std::move(task), action);
                if (i == 0)
                    st.entryTasks.push_back(task_name);
                prev = task_name;
                ++i;
            }
            if (!prev.empty())
                st.exitTasks.push_back(prev);
        } else if (type == "parallel") {
            const json::Value *branches = state.find("branches");
            if (!branches || !branches->isArray() ||
                branches->size() == 0) {
                out.error(branches ? *branches : state, "missing-field",
                          "parallel state '" + st.name +
                              "' requires branches");
                state_tasks.push_back(std::move(st));
                continue;
            }
            for (const auto &branch : branches->asArray()) {
                if (!branch.isObject()) {
                    out.error(branch, "wrong-type",
                              "branch must be an object");
                    continue;
                }
                check::checkKnownFields(branch, {"name", "actions"},
                                        "branch", out);
                std::string branch_name =
                    branch.getString("name", "branch");
                const json::Value *actions = branch.find("actions");
                if (!actions || !actions->isArray() ||
                    actions->size() == 0) {
                    out.error(actions ? *actions : branch,
                              "missing-field",
                              "branch '" + branch_name +
                                  "' requires actions");
                    continue;
                }
                std::string prev;
                size_t i = 0;
                for (const auto &action : actions->asArray()) {
                    std::string fn = actionFunctionName(action, out);
                    if (fn.empty()) {
                        ++i;
                        continue;
                    }
                    std::string task_name = st.name + "." + branch_name +
                                            "." + std::to_string(i) +
                                            "." + fn;
                    Task task;
                    task.name = task_name;
                    task.command = commandFor(fn, action);
                    if (!prev.empty())
                        task.dependencies.push_back(prev);
                    addTask(std::move(task), action);
                    if (i == 0)
                        st.entryTasks.push_back(task_name);
                    prev = task_name;
                    ++i;
                }
                if (!prev.empty())
                    st.exitTasks.push_back(prev);
            }
        } else {
            out.error(state, "unknown-state-type",
                      "unsupported state type '" + type +
                          "' in state '" + st.name + "'",
                      check::suggestName(type,
                                         {"operation", "parallel"}));
            state_tasks.push_back(std::move(st));
            continue;
        }
        state_tasks.push_back(std::move(st));
    }

    std::vector<std::string> state_names;
    for (const auto &st : state_tasks)
        state_names.push_back(st.name);

    // Second pass: wire state transitions — every entry task of the
    // target state depends on every exit task of the source state.
    for (const auto &st : state_tasks) {
        if (st.transition.empty())
            continue;
        const StateTasks *target = nullptr;
        for (const auto &candidate : state_tasks) {
            if (candidate.name == st.transition)
                target = &candidate;
        }
        if (!target) {
            out.error(*st.site, "dangling-transition",
                      "state '" + st.name +
                          "' transitions to unknown state '" +
                          st.transition + "'",
                      check::suggestName(st.transition, state_names));
            continue;
        }
        for (const auto &entry : target->entryTasks) {
            for (const auto &exit : st.exitTasks)
                wf.graph.addDependency(entry, exit);
        }
    }

    // The declared start state, when present, must exist.
    if (const json::Value *start = doc.find("start")) {
        std::string start_name;
        if (start->isString())
            start_name = start->asString();
        else if (start->isObject())
            start_name = start->getString("stateName", "");
        else
            out.error(*start, "wrong-type",
                      "'start' must be string or object");
        bool found = start_name.empty();
        for (const auto &name : state_names)
            found = found || name == start_name;
        if (!found) {
            out.error(*start, "dangling-transition",
                      "start references unknown state '" + start_name +
                          "'",
                      check::suggestName(start_name, state_names));
        }
    }

    for (const auto &[name, info] : functions) {
        if (!info.used && info.site) {
            out.warning(*info.site, "unused-function",
                        "function '" + name +
                            "' is never referenced by any action");
        }
    }

    // Transition wiring can close a loop; report it with the full
    // cycle path rather than a bare "has a cycle".
    std::vector<std::string> cycle = wf.graph.findCycle();
    if (!cycle.empty()) {
        std::string path;
        for (const auto &name : cycle) {
            if (!path.empty())
                path += " -> ";
            path += name;
        }
        out.error(*states, "workflow-cycle",
                  "workflow graph has a cycle: " + path);
    }
    return wf;
}

} // anonymous namespace

void
checkWorkflow(const json::Value &doc, check::CheckResult &out)
{
    buildWorkflow(doc, out);
}

Workflow
parseServerlessWorkflow(const json::Value &doc)
{
    check::CheckResult findings;
    Workflow wf = buildWorkflow(doc, findings);
    check::throwIfErrors(std::move(findings));
    wf.graph.validate();
    return wf;
}

Workflow
parseServerlessWorkflowText(const std::string &text)
{
    return parseServerlessWorkflow(json::parse(text));
}

} // namespace workflow
} // namespace sharp
