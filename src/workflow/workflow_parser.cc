#include "workflow/workflow_parser.hh"

#include <map>
#include <stdexcept>

#include "json/parser.hh"

namespace sharp
{
namespace workflow
{

namespace
{

/** Function name -> operation (command). */
using FunctionMap = std::map<std::string, std::string>;

FunctionMap
parseFunctions(const json::Value &doc)
{
    FunctionMap functions;
    const json::Value *list = doc.find("functions");
    if (!list)
        return functions;
    if (!list->isArray())
        throw std::invalid_argument("'functions' must be an array");
    for (const auto &fn : list->asArray()) {
        if (!fn.isObject())
            throw std::invalid_argument("function must be an object");
        std::string name = fn.getString("name", "");
        if (name.empty())
            throw std::invalid_argument("function requires a name");
        functions[name] = fn.getString("operation", "");
    }
    return functions;
}

/** Resolve an action's functionRef to a function name. */
std::string
actionFunctionName(const json::Value &action)
{
    const json::Value *ref = action.find("functionRef");
    if (!ref)
        throw std::invalid_argument("action requires functionRef");
    if (ref->isString())
        return ref->asString();
    if (ref->isObject()) {
        std::string name = ref->getString("refName", "");
        if (name.empty())
            throw std::invalid_argument("functionRef requires refName");
        return name;
    }
    throw std::invalid_argument("functionRef must be string or object");
}

/** Resolve a state's transition target; empty = end. */
std::string
stateTransition(const json::Value &state)
{
    const json::Value *transition = state.find("transition");
    if (transition) {
        if (transition->isString())
            return transition->asString();
        if (transition->isObject())
            return transition->getString("nextState", "");
        throw std::invalid_argument(
            "transition must be string or object");
    }
    return "";
}

} // anonymous namespace

Workflow
parseServerlessWorkflow(const json::Value &doc)
{
    if (!doc.isObject())
        throw std::invalid_argument("workflow must be a JSON object");

    Workflow wf;
    wf.id = doc.getString("id", "workflow");
    wf.name = doc.getString("name", wf.id);

    FunctionMap functions = parseFunctions(doc);

    const json::Value *states = doc.find("states");
    if (!states || !states->isArray() || states->size() == 0)
        throw std::invalid_argument(
            "workflow requires a non-empty 'states' array");

    // First pass: collect state metadata and, per state, the names of
    // its first (entry) tasks and last (exit) tasks within the graph.
    struct StateTasks
    {
        std::string name;
        std::string transition;
        std::vector<std::string> entryTasks;
        std::vector<std::string> exitTasks;
    };
    std::vector<StateTasks> state_tasks;

    auto commandFor = [&functions](const std::string &fn_name) {
        auto it = functions.find(fn_name);
        if (it == functions.end())
            throw std::invalid_argument("action references unknown "
                                        "function '" +
                                        fn_name + "'");
        return it->second;
    };

    for (const auto &state : states->asArray()) {
        if (!state.isObject())
            throw std::invalid_argument("state must be an object");
        StateTasks st;
        st.name = state.getString("name", "");
        if (st.name.empty())
            throw std::invalid_argument("state requires a name");
        st.transition = stateTransition(state);
        std::string type = state.getString("type", "operation");

        if (type == "operation") {
            const json::Value *actions = state.find("actions");
            if (!actions || !actions->isArray() || actions->size() == 0)
                throw std::invalid_argument("operation state '" +
                                            st.name +
                                            "' requires actions");
            // Actions within one operation state run sequentially.
            std::string prev;
            size_t i = 0;
            for (const auto &action : actions->asArray()) {
                std::string fn = actionFunctionName(action);
                std::string task_name =
                    st.name + "." + std::to_string(i) + "." + fn;
                Task task;
                task.name = task_name;
                task.command = commandFor(fn);
                if (!prev.empty())
                    task.dependencies.push_back(prev);
                wf.graph.addTask(std::move(task));
                if (i == 0)
                    st.entryTasks.push_back(task_name);
                prev = task_name;
                ++i;
            }
            st.exitTasks.push_back(prev);
        } else if (type == "parallel") {
            const json::Value *branches = state.find("branches");
            if (!branches || !branches->isArray() ||
                branches->size() == 0) {
                throw std::invalid_argument("parallel state '" +
                                            st.name +
                                            "' requires branches");
            }
            for (const auto &branch : branches->asArray()) {
                if (!branch.isObject())
                    throw std::invalid_argument(
                        "branch must be an object");
                std::string branch_name =
                    branch.getString("name", "branch");
                const json::Value *actions = branch.find("actions");
                if (!actions || !actions->isArray() ||
                    actions->size() == 0) {
                    throw std::invalid_argument(
                        "branch '" + branch_name + "' requires actions");
                }
                std::string prev;
                size_t i = 0;
                for (const auto &action : actions->asArray()) {
                    std::string fn = actionFunctionName(action);
                    std::string task_name = st.name + "." + branch_name +
                                            "." + std::to_string(i) +
                                            "." + fn;
                    Task task;
                    task.name = task_name;
                    task.command = commandFor(fn);
                    if (!prev.empty())
                        task.dependencies.push_back(prev);
                    wf.graph.addTask(std::move(task));
                    if (i == 0)
                        st.entryTasks.push_back(task_name);
                    prev = task_name;
                    ++i;
                }
                st.exitTasks.push_back(prev);
            }
        } else {
            throw std::invalid_argument("unsupported state type '" +
                                        type + "' in state '" + st.name +
                                        "'");
        }
        state_tasks.push_back(std::move(st));
    }

    // Second pass: wire state transitions — every entry task of the
    // target state depends on every exit task of the source state.
    auto findState =
        [&state_tasks](const std::string &name) -> const StateTasks & {
        for (const auto &st : state_tasks) {
            if (st.name == name)
                return st;
        }
        throw std::invalid_argument("transition to unknown state '" +
                                    name + "'");
    };

    for (const auto &st : state_tasks) {
        if (st.transition.empty())
            continue;
        const StateTasks &target = findState(st.transition);
        for (const auto &entry : target.entryTasks) {
            for (const auto &exit : st.exitTasks)
                wf.graph.addDependency(entry, exit);
        }
    }

    wf.graph.validate();
    return wf;
}

Workflow
parseServerlessWorkflowText(const std::string &text)
{
    return parseServerlessWorkflow(json::parse(text));
}

} // namespace workflow
} // namespace sharp
