/**
 * @file
 * Parser for a subset of the CNCF Serverless Workflow Specification.
 *
 * "SHARP includes a standalone program to translate workflows from a
 * subset of the popular CNCF's standard Serverless Workflow
 * Specification (in JSON or YAML format) to a valid Makefile (invoking
 * Launcher), which can then be run using 'make'." (§IV-b)
 *
 * Supported subset:
 *   - top-level: id, name, start, functions[], states[]
 *   - functions: {name, operation}  (operation = command line)
 *   - states:
 *       type "operation": actions[] of functionRef (by name or
 *         {refName}), then transition (string or {nextState}) or end
 *       type "parallel": branches[] = {name, actions[]}; all branches
 *         depend on the state's predecessor and join before the
 *         state's transition target
 *
 * The translation yields a TaskGraph: one task per action, sequenced
 * by state transitions, fanned out/in around parallel states.
 */

#ifndef SHARP_WORKFLOW_WORKFLOW_PARSER_HH
#define SHARP_WORKFLOW_WORKFLOW_PARSER_HH

#include <string>

#include "json/value.hh"
#include "workflow/task_graph.hh"

namespace sharp
{
namespace check
{
class CheckResult;
} // namespace check

namespace workflow
{

/** A parsed workflow: identity plus its task graph. */
struct Workflow
{
    std::string id;
    std::string name;
    TaskGraph graph;
};

/**
 * Parse a Serverless Workflow document (JSON).
 * @throws std::invalid_argument on unsupported or malformed documents.
 */
Workflow parseServerlessWorkflow(const json::Value &doc);

/**
 * Parse from JSON text. Named distinctly from the Value overload so a
 * string literal does not face an ambiguous conversion.
 */
Workflow parseServerlessWorkflowText(const std::string &text);

/**
 * Static analysis of a workflow document: every structural problem
 * parseServerlessWorkflow would reject — reported all at once with
 * source locations instead of one exception at a time — plus lint
 * findings (unknown fields, unused functions). Dependency cycles are
 * reported with the full cycle path. Never throws; findings are
 * appended to @p out.
 */
void checkWorkflow(const json::Value &doc, check::CheckResult &out);

} // namespace workflow
} // namespace sharp

#endif // SHARP_WORKFLOW_WORKFLOW_PARSER_HH
