// Seeded defect fixture: a retry loop around ::read with no EINTR
// handling anywhere in the loop -> eintr-guard (error).
#include <unistd.h>

long
drainFd(int fd, char *buffer, unsigned long size)
{
    long total = 0;
    while (size > 0) {
        long got = ::read(fd, buffer, size); // line 10, column 22
        if (got <= 0)
            break;
        total += got;
        size -= static_cast<unsigned long>(got);
    }
    return total;
}
