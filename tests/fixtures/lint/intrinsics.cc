// Seeded defect fixture: every finding here is an intrinsics-confined
// error (the fixture path is outside src/simd). Tests pin the
// line:column of each; keep edits append-only.
#include <immintrin.h> // line 4, column 11 (header identifier)

double
rawAvxSum(const double *p)
{
    __m256d v = _mm256_loadu_pd(p); // line 9, column 17
    double out[4];
    _mm256_storeu_pd(out, v); // line 11, column 5
    return out[0] + out[1] + out[2] + out[3];
}

double
rawNeonLoad(const double *p)
{
    // NEON load/store intrinsics are confined the same way.
    return vld1q_f64(p); // line 19, column 12
}
