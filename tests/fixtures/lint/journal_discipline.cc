// Seeded defect fixture: hand-rolled durability instead of
// record::appendJsonlLine -> journal-append-discipline (error).
#include <cstdio>
#include <unistd.h>

void
appendByHand(std::FILE *file, const char *line)
{
    std::fputs(line, file);
    std::fflush(file);
    if (fsync(fileno(file)) != 0) { // line 11, column 9
        // swallowed
    }
}
