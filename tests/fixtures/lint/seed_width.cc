// Seeded defect fixture: seeds routed through double -> seed-width
// (error). Reads must use getUint64; writes the decimal-string form.
#include <cstdint>

#include "json/value.hh"

std::uint64_t
readSeed(const sharp::json::Value &doc)
{
    return static_cast<std::uint64_t>(
        doc.getNumber("seed", 1.0)); // line 11, column 13
}

void
writeSeed(sharp::json::Value &doc, std::uint64_t seed)
{
    doc.set("jitter_seed", static_cast<double>(seed)); // line 17, col 9
}
