// Suppression fixture: the same defects as the other files, each
// excused by a sharp-lint allow() comment -> zero findings.
#include <ctime>
#include <unistd.h>

long
knowinglyWallClock()
{
    // sharp-lint: allow(no-wall-clock)
    return time(nullptr);
}

void
knowinglyBestEffort(int fd)
{
    fsync(fd); // sharp-lint: allow(journal-append-discipline, unchecked-syscall)
}
