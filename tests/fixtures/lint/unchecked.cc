// Seeded defect fixture: a statement-position syscall with the result
// dropped on the floor -> unchecked-syscall (warning).
#include <unistd.h>

void
bestEffortTruncate(int fd)
{
    ftruncate(fd, 0); // line 8, column 5
}
