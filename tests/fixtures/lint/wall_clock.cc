// Seeded defect fixture: every finding here is a no-wall-clock error.
// Tests pin the line:column of each; keep edits append-only.
#include <ctime>
#include <random>

unsigned
ambientEntropy()
{
    std::random_device device; // line 9, column 10
    return device();
}

long
wallClock()
{
    return time(nullptr); // line 16, column 12
}

int
hiddenState()
{
    return rand(); // line 22, column 12
}
