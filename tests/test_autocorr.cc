/**
 * @file
 * Tests for autocorrelation analysis and effective sample size — the
 * inputs of the autocorrelation-tailored stopping rule.
 */

#include <gtest/gtest.h>

#include "rng/sampler.hh"
#include "stats/autocorr.hh"

namespace
{

using namespace sharp::stats;
using namespace sharp::rng;

TEST(Autocorrelation, LagZeroIsOne)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 2.0, 1.0};
    EXPECT_DOUBLE_EQ(autocorrelation(xs, 0), 1.0);
}

TEST(Autocorrelation, IidIsNearZero)
{
    Xoshiro256 gen(1);
    NormalSampler sampler(0.0, 1.0);
    auto xs = sampler.sampleMany(gen, 5000);
    for (size_t lag : {1u, 2u, 5u, 10u})
        EXPECT_NEAR(autocorrelation(xs, lag), 0.0, 0.05) << lag;
}

TEST(Autocorrelation, Ar1MatchesPhiPowers)
{
    Xoshiro256 gen(2);
    Ar1Sampler sampler(0.0, 0.7, 1.0);
    auto xs = sampler.sampleMany(gen, 20000);
    EXPECT_NEAR(autocorrelation(xs, 1), 0.7, 0.03);
    EXPECT_NEAR(autocorrelation(xs, 2), 0.49, 0.04);
    EXPECT_NEAR(autocorrelation(xs, 3), 0.343, 0.04);
}

TEST(Autocorrelation, AlternatingSeriesIsNegative)
{
    std::vector<double> xs;
    for (int i = 0; i < 100; ++i)
        xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
    EXPECT_NEAR(autocorrelation(xs, 1), -1.0, 0.05);
}

TEST(Autocorrelation, ConstantSeriesIsZero)
{
    std::vector<double> xs(50, 3.0);
    EXPECT_DOUBLE_EQ(autocorrelation(xs, 1), 0.0);
}

TEST(Autocorrelation, LagBeyondLengthIsZero)
{
    std::vector<double> xs = {1.0, 2.0};
    EXPECT_DOUBLE_EQ(autocorrelation(xs, 5), 0.0);
}

TEST(Acf, ReturnsAllLags)
{
    Xoshiro256 gen(3);
    NormalSampler sampler(0.0, 1.0);
    auto xs = sampler.sampleMany(gen, 200);
    auto rho = acf(xs, 10);
    ASSERT_EQ(rho.size(), 11u);
    EXPECT_DOUBLE_EQ(rho[0], 1.0);
}

TEST(EffectiveSampleSize, FullForIidData)
{
    Xoshiro256 gen(4);
    NormalSampler sampler(0.0, 1.0);
    auto xs = sampler.sampleMany(gen, 2000);
    double ess = effectiveSampleSize(xs);
    EXPECT_GT(ess, 1500.0);
    EXPECT_LE(ess, 2000.0);
}

TEST(EffectiveSampleSize, ReducedForCorrelatedData)
{
    Xoshiro256 gen(5);
    Ar1Sampler sampler(0.0, 0.9, 1.0);
    auto xs = sampler.sampleMany(gen, 2000);
    double ess = effectiveSampleSize(xs);
    // AR(1) with phi=0.9: n_eff ~ n * (1-phi)/(1+phi) ~ n/19.
    EXPECT_LT(ess, 400.0);
    EXPECT_GT(ess, 20.0);
}

TEST(EffectiveSampleSize, SinusoidalProcessSeverelyReduced)
{
    Xoshiro256 gen(6);
    SinusoidalSampler sampler(10.0, 2.0, 50.0, 0.3);
    auto xs = sampler.sampleMany(gen, 1000);
    EXPECT_LT(effectiveSampleSize(xs), 200.0);
}

TEST(EffectiveSampleSize, BoundedByOneAndN)
{
    std::vector<double> short_series = {1.0, 2.0, 3.0};
    double ess = effectiveSampleSize(short_series);
    EXPECT_GE(ess, 1.0);
    EXPECT_LE(ess, 3.0);
}

TEST(LjungBox, RejectsCorrelatedAcceptsIid)
{
    Xoshiro256 gen(7);
    Ar1Sampler correlated(0.0, 0.6, 1.0);
    auto xs = correlated.sampleMany(gen, 500);
    EXPECT_LT(ljungBox(xs, 10).pValue, 1e-6);

    NormalSampler iid(0.0, 1.0);
    int rejections = 0;
    for (int trial = 0; trial < 20; ++trial) {
        auto ys = iid.sampleMany(gen, 300);
        rejections += ljungBox(ys, 10).pValue < 0.05;
    }
    EXPECT_LE(rejections, 4);
}

TEST(LjungBox, RejectsBadArguments)
{
    std::vector<double> xs = {1.0, 2.0, 3.0};
    EXPECT_THROW(ljungBox(xs, 0), std::invalid_argument);
    EXPECT_THROW(ljungBox(xs, 5), std::invalid_argument);
}

} // anonymous namespace
