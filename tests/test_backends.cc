/**
 * @file
 * Tests for the execution backends: simulated, phased, FaaS, and the
 * fully real local-process backend (fork/exec against /bin/sh).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "launcher/faas_backend.hh"
#include "launcher/local_backend.hh"
#include "launcher/metrics.hh"
#include "launcher/sim_backend.hh"
#include "json/parser.hh"
#include "record/failure.hh"
#include "sim/machine.hh"
#include "sim/rodinia.hh"
#include "util/time_utils.hh"

namespace
{

using namespace sharp::launcher;
using namespace sharp::sim;
using sharp::record::FailureKind;
namespace json = sharp::json;

TEST(SimBackend, ProducesExecutionTimeMetric)
{
    SimBackend backend(rodiniaByName("bfs"), machineById("machine1"), 0,
                       1);
    RunResult res = backend.run();
    EXPECT_TRUE(res.success);
    EXPECT_GT(res.metric("execution_time"), 0.0);
    EXPECT_EQ(res.machineId, "machine1");
    EXPECT_EQ(backend.workloadName(), "bfs");
    EXPECT_EQ(backend.name(), "sim");
}

TEST(SimBackend, MissingMetricIsNan)
{
    SimBackend backend(rodiniaByName("bfs"), machineById("machine1"));
    RunResult res = backend.run();
    EXPECT_TRUE(std::isnan(res.metric("power")));
}

TEST(SimBackend, SetDaySwitchesEnvironment)
{
    SimBackend backend(rodiniaByName("hotspot"),
                       machineById("machine2"), 0, 3);
    backend.setDay(4);
    EXPECT_EQ(backend.day(), 4);
    // Still produces valid samples after the switch.
    EXPECT_GT(backend.run().metric("execution_time"), 0.0);
}

TEST(SimBackend, DefaultBatchIsSequential)
{
    SimBackend backend(rodiniaByName("bfs"), machineById("machine1"));
    auto results = backend.runBatch(4);
    ASSERT_EQ(results.size(), 4u);
    for (const auto &res : results)
        EXPECT_TRUE(res.success);
}

TEST(PhasedSimBackend, ReportsAllThreeMetrics)
{
    PhasedSimBackend backend(machineById("machine1"), 2);
    RunResult res = backend.run();
    double total = res.metric("execution_time");
    double detection = res.metric("detection_time");
    double tracking = res.metric("tracking_time");
    EXPECT_GT(detection, 0.0);
    EXPECT_GT(tracking, 0.0);
    EXPECT_GT(total, detection + tracking);
    EXPECT_EQ(backend.workloadName(), "leukocyte");
}

TEST(FaasBackend, BatchedRunsSpreadAcrossWorkers)
{
    auto cluster = std::make_unique<FaasCluster>(
        rodiniaByName("bfs-CUDA"),
        std::vector<MachineSpec>{machineById("machine1"),
                                 machineById("machine3")},
        1);
    FaasBackend backend(std::move(cluster), "bfs-CUDA");
    auto results = backend.runBatch(2);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].machineId, "machine1");
    EXPECT_EQ(results[1].machineId, "machine3");
    EXPECT_GT(results[0].metric("execution_time"), 0.0);
    EXPECT_DOUBLE_EQ(results[0].metric("cold_start"), 1.0);
}

TEST(FaasBackend, ResponseModeIncludesColdStart)
{
    auto make_backend = [](bool measure_response) {
        auto cluster = std::make_unique<FaasCluster>(
            rodiniaByName("bfs-CUDA"),
            std::vector<MachineSpec>{machineById("machine1")}, 7);
        return FaasBackend(std::move(cluster), "bfs-CUDA",
                           measure_response);
    };
    FaasBackend exec_mode = make_backend(false);
    FaasBackend resp_mode = make_backend(true);
    double t_exec = exec_mode.run().metric("execution_time");
    double t_resp = resp_mode.run().metric("execution_time");
    EXPECT_GT(t_resp, t_exec); // the cold start is in there
}

TEST(LocalBackend, RunsRealCommandAndMeasuresWallTime)
{
    LocalProcessBackend backend({"/bin/sh", "-c", "sleep 0.05"});
    RunResult res = backend.run();
    ASSERT_TRUE(res.success) << res.error;
    double t = res.metric("execution_time");
    EXPECT_GE(t, 0.04);
    EXPECT_LT(t, 2.0);
    EXPECT_EQ(res.machineId, "localhost");
}

TEST(LocalBackend, CapturesOutput)
{
    LocalProcessBackend backend({"/bin/sh", "-c", "echo hello-sharp"});
    RunResult res = backend.run();
    ASSERT_TRUE(res.success);
    EXPECT_NE(res.output.find("hello-sharp"), std::string::npos);
}

TEST(LocalBackend, ExtractsMetricsViaRegex)
{
    LocalProcessBackend::Options opts;
    opts.metrics = defaultMetricSpecs();
    MetricSpec latency;
    latency.name = "latency_ms";
    latency.source = MetricSource::OutputRegex;
    latency.pattern = "latency: ([0-9.]+) ms";
    opts.metrics.push_back(latency);
    LocalProcessBackend backend(
        {"/bin/sh", "-c", "echo 'latency: 12.5 ms'"}, opts);
    RunResult res = backend.run();
    ASSERT_TRUE(res.success) << res.error;
    EXPECT_DOUBLE_EQ(res.metric("latency_ms"), 12.5);
}

TEST(LocalBackend, FailsWhenMetricMissingFromOutput)
{
    LocalProcessBackend::Options opts;
    MetricSpec metric;
    metric.name = "missing";
    metric.source = MetricSource::OutputRegex;
    metric.pattern = "value=([0-9]+)";
    opts.metrics = {metric};
    LocalProcessBackend backend({"/bin/sh", "-c", "echo nothing"}, opts);
    RunResult res = backend.run();
    EXPECT_FALSE(res.success);
    EXPECT_EQ(res.kind, FailureKind::UnparsableOutput);
    EXPECT_NE(res.error.find("missing"), std::string::npos);
}

TEST(LocalBackend, NonZeroExitIsFailure)
{
    LocalProcessBackend backend({"/bin/sh", "-c", "exit 3"});
    RunResult res = backend.run();
    EXPECT_FALSE(res.success);
    EXPECT_EQ(res.kind, FailureKind::NonzeroExit);
    EXPECT_NE(res.error.find("3"), std::string::npos);
}

TEST(LocalBackend, MissingBinaryIsFailure)
{
    LocalProcessBackend backend({"/no/such/binary-xyz"});
    RunResult res = backend.run();
    EXPECT_FALSE(res.success);
    // execvp failure surfaces as exit 127 in the child; the backend
    // classifies it back into a spawn error.
    EXPECT_EQ(res.kind, FailureKind::SpawnError);
}

TEST(LocalBackend, TimeoutKillsRunaway)
{
    LocalProcessBackend::Options opts;
    opts.timeoutSeconds = 0.2;
    LocalProcessBackend backend({"/bin/sh", "-c", "sleep 5"}, opts);
    RunResult res = backend.run();
    EXPECT_FALSE(res.success);
    EXPECT_EQ(res.kind, FailureKind::Timeout);
    EXPECT_NE(res.error.find("timed out"), std::string::npos);
}

TEST(LocalBackend, SignalDeathIsClassifiedAsCrash)
{
    LocalProcessBackend backend({"/bin/sh", "-c", "kill -SEGV $$"});
    RunResult res = backend.run();
    EXPECT_FALSE(res.success);
    EXPECT_EQ(res.kind, FailureKind::SignalCrash);
    EXPECT_NE(res.error.find("signal"), std::string::npos);
}

TEST(LocalBackend, SuccessHasNoFailureKind)
{
    LocalProcessBackend backend({"/bin/true"});
    RunResult res = backend.run();
    ASSERT_TRUE(res.success) << res.error;
    EXPECT_EQ(res.kind, FailureKind::None);
}

TEST(LocalBackend, RejectsEmptyCommand)
{
    EXPECT_THROW(LocalProcessBackend({}), std::invalid_argument);
}

// Regression test for the timeout-drain hang: a backgrounded
// grandchild inherits the pipe's write end and keeps writing, so EOF
// never arrives on its own. The timeout kill must reach the whole
// process group and the drain window must be a bounded deadline, not
// an unbounded poll.
TEST(LocalBackend, GrandchildHoldingPipeDoesNotHangTimeout)
{
    sharp::util::Stopwatch watch;
    ProcessOutcome outcome = runProcess(
        {"/bin/sh", "-c",
         "(while true; do echo tick; sleep 0.05; done) & sleep 30"},
        0.5);
    double elapsed = watch.elapsedSeconds();
    EXPECT_TRUE(outcome.timedOut);
    // Bounded: ~timeout + drain window at worst, far below the 30 s
    // the command would otherwise take (and below forever, which the
    // unbounded poll produced).
    EXPECT_LT(elapsed, 2.0);
}

TEST(LocalBackend, BatchForksChildrenConcurrently)
{
    LocalProcessBackend backend({"/bin/sh", "-c", "sleep 0.2"});
    sharp::util::Stopwatch watch;
    auto results = backend.runBatch(8);
    double elapsed = watch.elapsedSeconds();
    ASSERT_EQ(results.size(), 8u);
    for (const auto &res : results) {
        ASSERT_TRUE(res.success) << res.error;
        EXPECT_GE(res.metric("execution_time"), 0.15);
    }
    // Serial execution would take ~1.6 s; genuine overlap keeps the
    // batch well under half of that even on a loaded CI machine.
    EXPECT_LT(elapsed, 1.0);
}

TEST(LocalBackend, BatchEnforcesPerChildTimeout)
{
    LocalProcessBackend::Options opts;
    opts.timeoutSeconds = 0.3;
    LocalProcessBackend backend({"/bin/sh", "-c", "sleep 5"}, opts);
    sharp::util::Stopwatch watch;
    auto results = backend.runBatch(4);
    EXPECT_LT(watch.elapsedSeconds(), 2.0);
    ASSERT_EQ(results.size(), 4u);
    for (const auto &res : results) {
        EXPECT_FALSE(res.success);
        EXPECT_NE(res.error.find("timed out"), std::string::npos);
    }
}

TEST(LocalBackend, BatchCapturesPerChildOutput)
{
    LocalProcessBackend backend({"/bin/sh", "-c", "echo out-$$"});
    auto results = backend.runBatch(3);
    ASSERT_EQ(results.size(), 3u);
    for (const auto &res : results) {
        ASSERT_TRUE(res.success) << res.error;
        EXPECT_NE(res.output.find("out-"), std::string::npos);
    }
    // Each child wrote to its own pipe: outputs are not interleaved,
    // and distinct PIDs prove they were distinct processes.
    EXPECT_NE(results[0].output, results[1].output);
}

TEST(RunProcessBatch, ZeroAndFailureCases)
{
    EXPECT_TRUE(runProcessBatch({"/bin/true"}, 0, 1.0).empty());

    auto empty = runProcessBatch({}, 2, 1.0);
    ASSERT_EQ(empty.size(), 2u);
    EXPECT_FALSE(empty[0].started);

    auto missing = runProcessBatch({"/no/such/binary-xyz"}, 2, 5.0);
    ASSERT_EQ(missing.size(), 2u);
    for (const auto &outcome : missing) {
        EXPECT_TRUE(outcome.started);
        EXPECT_EQ(outcome.exitStatus, 127);
        EXPECT_NE(outcome.output.find("execvp failed"),
                  std::string::npos);
    }
}

TEST(MetricSpec, FromJsonWallTime)
{
    auto spec = MetricSpec::fromJson(
        json::parse(R"({"name": "execution_time"})"));
    EXPECT_EQ(spec.source, MetricSource::WallTime);
    EXPECT_DOUBLE_EQ(spec.extract("whatever", 1.25).value(), 1.25);
}

TEST(MetricSpec, FromJsonPattern)
{
    auto spec = MetricSpec::fromJson(json::parse(
        R"x({"name": "rss", "pattern": "Maximum resident .*: ([0-9]+)"})x"));
    EXPECT_EQ(spec.source, MetricSource::OutputRegex);
    auto v = spec.extract("Maximum resident set size: 5120", 0.0);
    EXPECT_DOUBLE_EQ(v.value(), 5120.0);
    EXPECT_FALSE(spec.extract("no match here", 0.0).has_value());
}

TEST(MetricSpec, JsonRoundTrip)
{
    auto spec = MetricSpec::fromJson(json::parse(
        R"x({"name": "lat", "pattern": "lat=([0-9.]+)"})x"));
    auto again = MetricSpec::fromJson(spec.toJson());
    EXPECT_EQ(again.name, spec.name);
    EXPECT_EQ(again.pattern, spec.pattern);
}

TEST(MetricSpec, RejectsBadSpecs)
{
    EXPECT_THROW(MetricSpec::fromJson(json::parse(R"({})")),
                 std::invalid_argument);
    EXPECT_THROW(MetricSpec::fromJson(json::parse(
                     R"({"name": "x", "pattern": "(unclosed"})")),
                 std::invalid_argument);
    EXPECT_THROW(MetricSpec::fromJson(json::parse(
                     R"({"name": "x", "source": "martian"})")),
                 std::invalid_argument);
}

TEST(MetricSpecs, ArrayParsing)
{
    auto specs = metricSpecsFromJson(json::parse(
        R"x([{"name": "execution_time"},
            {"name": "lat", "pattern": "lat=([0-9.]+)"}])x"));
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[1].name, "lat");
    EXPECT_THROW(metricSpecsFromJson(json::parse("{}")),
                 std::invalid_argument);
}

} // anonymous namespace
