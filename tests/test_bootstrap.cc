/**
 * @file
 * Tests for bootstrap resampling.
 */

#include <gtest/gtest.h>

#include "rng/sampler.hh"
#include "stats/bootstrap.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace sharp::stats;
using sharp::rng::NormalSampler;
using sharp::rng::Xoshiro256;

TEST(BootstrapCi, BracketsTheStatistic)
{
    Xoshiro256 data_gen(1);
    NormalSampler sampler(10.0, 2.0);
    auto xs = sampler.sampleMany(data_gen, 100);

    Xoshiro256 boot_gen(2);
    auto mean_stat = [](const std::vector<double> &v) { return mean(v); };
    ConfidenceInterval ci = bootstrapCi(xs, mean_stat, 0.95, 800,
                                        boot_gen);
    double m = mean(xs);
    EXPECT_LT(ci.lower, m);
    EXPECT_GT(ci.upper, m);
}

TEST(BootstrapCi, AgreesWithTIntervalForMeans)
{
    Xoshiro256 data_gen(3);
    NormalSampler sampler(5.0, 1.0);
    auto xs = sampler.sampleMany(data_gen, 200);

    Xoshiro256 boot_gen(4);
    auto mean_stat = [](const std::vector<double> &v) { return mean(v); };
    ConfidenceInterval boot = bootstrapCi(xs, mean_stat, 0.95, 2000,
                                          boot_gen);
    ConfidenceInterval t = meanCi(xs, 0.95);
    EXPECT_NEAR(boot.lower, t.lower, 0.05);
    EXPECT_NEAR(boot.upper, t.upper, 0.05);
}

TEST(BootstrapCi, DeterministicGivenGeneratorState)
{
    std::vector<double> xs = {1.0, 3.0, 2.0, 5.0, 4.0, 6.0};
    auto med = [](const std::vector<double> &v) {
        return median(std::vector<double>(v));
    };
    Xoshiro256 g1(42), g2(42);
    ConfidenceInterval a = bootstrapCi(xs, med, 0.9, 500, g1);
    ConfidenceInterval b = bootstrapCi(xs, med, 0.9, 500, g2);
    EXPECT_DOUBLE_EQ(a.lower, b.lower);
    EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapCi, WorksForNonSmoothStatistics)
{
    // Median of a skewed sample — no closed-form CI needed.
    Xoshiro256 data_gen(5);
    sharp::rng::LogNormalSampler sampler(1.0, 0.8);
    auto xs = sampler.sampleMany(data_gen, 150);
    Xoshiro256 boot_gen(6);
    auto med = [](const std::vector<double> &v) {
        return median(std::vector<double>(v));
    };
    ConfidenceInterval ci = bootstrapCi(xs, med, 0.95, 1000, boot_gen);
    EXPECT_LT(ci.lower, ci.upper);
    EXPECT_GT(ci.lower, 0.0);
}

TEST(BootstrapStandardError, MatchesAnalyticForMean)
{
    Xoshiro256 data_gen(7);
    NormalSampler sampler(0.0, 1.0);
    auto xs = sampler.sampleMany(data_gen, 400);
    Xoshiro256 boot_gen(8);
    auto mean_stat = [](const std::vector<double> &v) { return mean(v); };
    double boot_se =
        bootstrapStandardError(xs, mean_stat, 1500, boot_gen);
    EXPECT_NEAR(boot_se, standardError(xs), 0.01);
}

TEST(Bootstrap, RejectsBadArguments)
{
    auto mean_stat = [](const std::vector<double> &v) { return mean(v); };
    Xoshiro256 gen(9);
    EXPECT_THROW(bootstrapCi({}, mean_stat, 0.95, 100, gen),
                 std::invalid_argument);
    EXPECT_THROW(bootstrapCi({1.0}, mean_stat, 0.95, 0, gen),
                 std::invalid_argument);
    EXPECT_THROW(bootstrapCi({1.0}, mean_stat, 1.5, 100, gen),
                 std::invalid_argument);
}

} // anonymous namespace
