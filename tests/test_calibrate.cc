/**
 * @file
 * Tests for the stopping-rule calibration harness (§IV-c) and its
 * baseline regression gate: jobs-independent determinism, cell
 * invariants, and the tolerance semantics of the comparator.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "calibrate/baseline.hh"
#include "calibrate/calibration.hh"
#include "json/parser.hh"
#include "json/writer.hh"

namespace
{

using namespace sharp;
using namespace sharp::calibrate;

/** Small sweep that exercises fixed, generic, and meta rules. */
CalibrationConfig
smallConfig(size_t jobs)
{
    CalibrationConfig config;
    config.rules = {"fixed", "ks", "meta"};
    config.distributions = {"normal", "bimodal", "constant"};
    config.seedsPerCell = 2;
    config.maxSamples = 300;
    config.truthSamples = 2048;
    config.jobs = jobs;
    return config;
}

TEST(Calibration, ArtifactsAreByteIdenticalAcrossJobCounts)
{
    // The whole point of per-cell seed derivation: the emitted CSV and
    // JSON must not depend on the thread count that produced them.
    CalibrationResult serial = runCalibration(smallConfig(1));
    std::string csv = serial.toCsv().toCsv();
    std::string summary = json::writePretty(serial.summaryJson());
    for (size_t jobs : {2u, 4u, 7u}) {
        CalibrationResult parallel = runCalibration(smallConfig(jobs));
        EXPECT_EQ(parallel.toCsv().toCsv(), csv) << "jobs=" << jobs;
        EXPECT_EQ(json::writePretty(parallel.summaryJson()), summary)
            << "jobs=" << jobs;
    }
}

TEST(Calibration, CellSeedIsPureAndCollisionFreeOnSmallGrids)
{
    EXPECT_EQ(cellSeed(1, "ks", "normal", 4),
              cellSeed(1, "ks", "normal", 4));
    std::vector<uint64_t> seeds;
    for (const char *rule : {"fixed", "ks", "meta", "ci", "modality"})
        for (const char *dist : {"normal", "bimodal", "constant"})
            for (size_t k = 0; k < 8; ++k)
                seeds.push_back(cellSeed(1, rule, dist, k));
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()),
              seeds.end());
    EXPECT_NE(cellSeed(1, "ks", "normal", 0),
              cellSeed(2, "ks", "normal", 0));
    // Name-keyed: the stream a cell draws does not depend on which
    // other rules or distributions are in the sweep.
    EXPECT_NE(cellSeed(1, "ks", "normal", 0),
              cellSeed(1, "meta", "normal", 0));
}

TEST(Calibration, CellInvariantsHold)
{
    CalibrationResult result = runCalibration(smallConfig(2));
    ASSERT_EQ(result.cells.size(), 3u * 3u * 2u);
    for (const auto &cell : result.cells) {
        EXPECT_GT(cell.samplesToStop, 0u) << cell.rule;
        EXPECT_LE(cell.samplesToStop, 300u) << cell.rule;
        EXPECT_GE(cell.postStopKs, 0.0);
        EXPECT_LE(cell.postStopKs, 1.0);
        if (cell.rule == "fixed") {
            EXPECT_TRUE(cell.ruleFired);
            EXPECT_EQ(cell.samplesToStop, 100u);
        }
        if (cell.distribution == "constant") {
            EXPECT_DOUBLE_EQ(cell.postStopKs, 0.0);
            EXPECT_FALSE(cell.ciApplicable);
        }
        if (cell.distribution == "normal") {
            EXPECT_TRUE(cell.ciApplicable);
        }
    }
}

TEST(Calibration, RejectsUnknownNames)
{
    CalibrationConfig config = smallConfig(1);
    config.rules = {"no-such-rule"};
    EXPECT_THROW(runCalibration(config), std::out_of_range);
    config = smallConfig(1);
    config.distributions = {"no-such-distribution"};
    EXPECT_THROW(runCalibration(config), std::out_of_range);
}

TEST(Calibration, SummaryCarriesGateSections)
{
    CalibrationConfig config = smallConfig(1);
    config.rules = {"fixed", "meta"};
    json::Value summary = runCalibration(config).summaryJson();
    EXPECT_EQ(summary.getString("schema", ""),
              "sharp-calibration-summary-v1");
    EXPECT_TRUE(summary.contains("rules"));
    EXPECT_TRUE(summary.contains("classifier"));
    // meta_vs_fixed appears exactly when both participants ran.
    EXPECT_TRUE(summary.contains("meta_vs_fixed"));
    config.rules = {"fixed"};
    EXPECT_FALSE(
        runCalibration(config).summaryJson().contains("meta_vs_fixed"));
}

// ---------------------------------------------------------------
// Gate comparator semantics on hand-built summaries.
// ---------------------------------------------------------------

json::Value
summaryDoc(double samples, double ks, double accuracy)
{
    return json::parse(
        "{\"schema\": \"sharp-calibration-summary-v1\","
        " \"rules\": {\"meta\": {\"normal\": "
        "{\"median_samples\": " + std::to_string(samples) +
        ", \"median_ks\": " + std::to_string(ks) +
        ", \"fired_fraction\": 1}}},"
        " \"classifier\": {\"accuracy\": " + std::to_string(accuracy) +
        ", \"cells\": 10}}");
}

TEST(CalibrationGate, PassesOnIdenticalAndImprovedResults)
{
    json::Value base = summaryDoc(100, 0.08, 0.9);
    GateReport same = compareToBaseline(base, base);
    EXPECT_TRUE(same.pass);
    EXPECT_EQ(same.comparisons, 1u);
    // Improvements (fewer samples, smaller KS, better accuracy) are
    // never violations, no matter how large.
    GateReport better =
        compareToBaseline(base, summaryDoc(30, 0.01, 1.0));
    EXPECT_TRUE(better.pass) << better.render();
}

TEST(CalibrationGate, FlagsDegradationsBeyondTolerance)
{
    json::Value base = summaryDoc(100, 0.08, 0.9);
    // 100 * 1.25 + 10 = 135 is the samples limit; 140 must fail.
    GateReport slow = compareToBaseline(base, summaryDoc(140, 0.08, 0.9));
    ASSERT_FALSE(slow.pass);
    ASSERT_EQ(slow.violations.size(), 1u);
    EXPECT_EQ(slow.violations[0].where, "meta/normal");
    EXPECT_EQ(slow.violations[0].what, "median_samples");
    EXPECT_DOUBLE_EQ(slow.violations[0].limit, 135.0);
    EXPECT_NE(slow.violations[0].render().find("meta/normal"),
              std::string::npos);

    // Within tolerance on every axis: passes.
    EXPECT_TRUE(
        compareToBaseline(base, summaryDoc(130, 0.10, 0.87)).pass);

    GateReport drifted =
        compareToBaseline(base, summaryDoc(100, 0.12, 0.9));
    ASSERT_FALSE(drifted.pass);
    EXPECT_EQ(drifted.violations[0].what, "median_ks");

    GateReport confused =
        compareToBaseline(base, summaryDoc(100, 0.08, 0.8));
    ASSERT_FALSE(confused.pass);
    EXPECT_EQ(confused.violations[0].where, "classifier");
}

TEST(CalibrationGate, MissingEntriesAndBadDocumentsAreErrors)
{
    json::Value base = summaryDoc(100, 0.08, 0.9);
    json::Value current = json::parse(
        "{\"schema\": \"sharp-calibration-summary-v1\","
        " \"rules\": {\"meta\": {}},"
        " \"classifier\": {\"accuracy\": 0.9, \"cells\": 10}}");
    GateReport vanished = compareToBaseline(base, current);
    ASSERT_FALSE(vanished.pass);
    EXPECT_EQ(vanished.violations[0].where, "meta/normal");

    EXPECT_THROW(
        compareToBaseline(json::parse("{\"a\": 1}"), base),
        std::runtime_error);
    EXPECT_THROW(
        compareToBaseline(base, json::parse("{\"a\": 1}")),
        std::runtime_error);
}

TEST(CalibrationGate, EnforcesMetaWinFloorWhenBaselineHasIt)
{
    json::Value base = summaryDoc(100, 0.08, 0.9);
    base.set("meta_vs_fixed", json::parse("{\"wins\": 8}"));
    json::Value current = summaryDoc(100, 0.08, 0.9);
    current.set("meta_vs_fixed", json::parse("{\"wins\": 5}"));
    GateReport report = compareToBaseline(base, current);
    ASSERT_FALSE(report.pass);
    EXPECT_EQ(report.violations[0].where, "meta_vs_fixed");

    current.set("meta_vs_fixed", json::parse("{\"wins\": 7}"));
    EXPECT_TRUE(compareToBaseline(base, current).pass);
}

} // anonymous namespace
