/**
 * @file
 * The statistical regression gate: re-runs the calibration sweep that
 * produced tests/baselines/calibration.json and fails if any stopping
 * rule's sample economy or post-stop fidelity degraded beyond the
 * comparator's tolerances. Regenerate the baseline (after an
 * *intentional* behavior change) with
 *
 *   sharp calibrate --write-baseline tests/baselines/calibration.json
 *
 * Carries the `calibration` CTest label so sanitizer presets can skip
 * it: the medians it pins are properties of the exact sampling code
 * path, not of thread-safety.
 */

#include <gtest/gtest.h>

#include "calibrate/baseline.hh"
#include "calibrate/calibration.hh"
#include "json/parser.hh"
#include "rng/nonstationary.hh"
#include "rng/synthetic.hh"

namespace
{

using namespace sharp;
using namespace sharp::calibrate;

const char *baselinePath =
    SHARP_SOURCE_DIR "/tests/baselines/calibration.json";

TEST(CalibrationGate, CurrentSweepStaysWithinBaselineTolerances)
{
    json::Value baseline = json::parseFile(baselinePath);

    // Reproduce the baseline's own sweep configuration so medians are
    // compared like for like.
    CalibrationConfig config;
    const json::Value *base_config = baseline.find("config");
    ASSERT_NE(base_config, nullptr) << "baseline has no config echo";
    config.baseSeed = base_config->getUint64("base_seed", 1);
    config.seedsPerCell = static_cast<size_t>(
        base_config->getNumber("seeds_per_cell", 5));
    config.maxSamples = static_cast<size_t>(
        base_config->getNumber("max_samples", 800));
    config.truthSamples = static_cast<size_t>(
        base_config->getNumber("truth_samples", 8192));
    config.jobs = 4; // artifacts are jobs-independent

    CalibrationResult result = runCalibration(config);
    GateReport report =
        compareToBaseline(baseline, result.summaryJson());
    EXPECT_TRUE(report.pass) << report.render();
    EXPECT_GT(report.comparisons, 0u);
}

TEST(CalibrationGate, MetaRuleBeatsFixedOnMostDistributions)
{
    // The acceptance criterion the harness was introduced with: the
    // meta-rule stops with no more samples than fixed-100 at
    // equal-or-better post-stop KS on >= 7 of the 10 synthetics. The
    // sweep is pinned to the paper's stationary set explicitly: the
    // default now also covers the nonstationary scenario families,
    // where "match fixed-100" is the wrong yardstick (keeping sampling
    // through a regime switch is the desired behavior, not a loss).
    CalibrationConfig config;
    config.rules = {"fixed", "meta"};
    for (const auto &spec : rng::syntheticRegistry())
        config.distributions.push_back(spec.name);
    config.jobs = 4;
    json::Value summary = runCalibration(config).summaryJson();
    const json::Value *versus = summary.find("meta_vs_fixed");
    ASSERT_NE(versus, nullptr);
    EXPECT_GE(versus->getNumber("wins", 0), 7.0)
        << "meta-vs-fixed regressed; per-distribution detail:\n";
}

TEST(CalibrationGate, BaselinePinsTheMetaDelegationPerFamily)
{
    // Every nonstationary scenario family must have a calibration row,
    // and the meta rule's tuned delegation for it must be pinned in
    // the baseline — compareToBaseline() then fails the gate on any
    // delegation drift, making a delegate change an explicit, reviewed
    // baseline update.
    json::Value baseline = json::parseFile(baselinePath);
    const json::Value *rules = baseline.find("rules");
    ASSERT_NE(rules, nullptr);
    const json::Value *meta = rules->find("meta");
    ASSERT_NE(meta, nullptr) << "baseline has no meta-rule rows";
    for (const auto &family : rng::familyNames()) {
        const json::Value *cell = meta->find(family);
        ASSERT_NE(cell, nullptr)
            << "no baseline cell for family '" << family << "'";
        EXPECT_FALSE(cell->getString("delegate", "").empty())
            << "family '" << family
            << "' has no pinned meta delegation";
    }
}

} // anonymous namespace
