/**
 * @file
 * Tests for the static analyzer: the Diagnostic/CheckResult API, the
 * per-artifact checkers, artifact sniffing, the seeded defect
 * fixtures (one per defect class, pinned down to severity, source
 * location, and exit code), and the `sharp check` CLI command.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "check/analyzer.hh"
#include "check/campaign.hh"
#include "check/diagnostic.hh"
#include "cli/cli.hh"
#include "core/config.hh"
#include "json/parser.hh"
#include "launcher/reproduce.hh"
#include "record/journal.hh"
#include "workflow/workflow_parser.hh"

namespace
{

using namespace sharp;
using check::ArtifactKind;
using check::CheckResult;
using check::Severity;

std::string
fixture(const std::string &name)
{
    return std::string(SHARP_SOURCE_DIR) + "/tests/fixtures/check/" +
           name;
}

std::string
example(const std::string &name)
{
    return std::string(SHARP_SOURCE_DIR) + "/examples/" + name;
}

/** First diagnostic carrying @p rule; nullptr when absent. */
const check::Diagnostic *
findRule(const CheckResult &result, const std::string &rule)
{
    for (const auto &diagnostic : result.diagnostics()) {
        if (diagnostic.rule == rule)
            return &diagnostic;
    }
    return nullptr;
}

TEST(Diagnostic, RenderIncludesLocationSeverityRuleAndHint)
{
    check::Diagnostic diagnostic;
    diagnostic.severity = Severity::Warning;
    diagnostic.artifact = "spec.json";
    diagnostic.line = 3;
    diagnostic.column = 7;
    diagnostic.rule = "unknown-field";
    diagnostic.message = "unknown field 'slowfactor'";
    diagnostic.hint = "did you mean 'slow_factor'?";
    EXPECT_EQ(diagnostic.render(),
              "spec.json:3:7: warning: unknown field 'slowfactor' "
              "[unknown-field] (hint: did you mean 'slow_factor'?)");
}

TEST(Diagnostic, RenderOmitsUnknownLocation)
{
    check::Diagnostic diagnostic;
    diagnostic.artifact = "j.jsonl";
    diagnostic.rule = "missing-spec";
    diagnostic.message = "no spec line";
    EXPECT_EQ(diagnostic.render(),
              "j.jsonl: error: no spec line [missing-spec]");
}

TEST(CheckResult, ExitCodeContract)
{
    CheckResult clean;
    EXPECT_EQ(clean.exitCode(), 0);
    EXPECT_TRUE(clean.clean());

    CheckResult warned;
    warned.warning(std::string("w"), "just a warning");
    EXPECT_EQ(warned.exitCode(), 1);
    EXPECT_TRUE(warned.ok());
    EXPECT_FALSE(warned.clean());

    CheckResult failed;
    failed.warning(std::string("w"), "warning");
    failed.error(std::string("e"), "error");
    EXPECT_EQ(failed.exitCode(), 2);
    EXPECT_FALSE(failed.ok());
    EXPECT_EQ(failed.errorCount(), 1u);
    EXPECT_EQ(failed.warningCount(), 1u);
}

TEST(CheckResult, ArtifactPathIsStampedOntoDiagnostics)
{
    CheckResult result;
    result.setArtifact("a.json");
    result.error(std::string("r"), "m");
    EXPECT_EQ(result.diagnostics()[0].artifact, "a.json");
}

TEST(CheckResult, ValueOverloadsCarryParsedLocations)
{
    auto doc = json::parse("{\n  \"crash\": 2.0\n}");
    CheckResult result;
    launcher::checkFaultSpec(doc, result);
    const check::Diagnostic *range = findRule(result, "out-of-range");
    ASSERT_NE(range, nullptr);
    EXPECT_EQ(range->line, 2u);
    EXPECT_GT(range->column, 1u);
}

TEST(SuggestName, SuggestsCloseNamesOnly)
{
    EXPECT_EQ(check::suggestName("hotspit", {"hotspot", "bfs"}),
              "did you mean 'hotspot'?");
    EXPECT_EQ(check::suggestName("zzz", {"hotspot", "bfs"}), "");
}

TEST(CheckFailure, LoadersThrowWithFullDiagnostics)
{
    auto doc = json::parse(
        R"({"backend": "sim", "experiment": {"rule": "kss"},
            "max_failures": -1})");
    try {
        launcher::ReproSpec::fromJson(doc);
        FAIL() << "expected CheckFailure";
    } catch (const check::CheckFailure &failure) {
        EXPECT_GE(failure.result().errorCount(), 2u);
        EXPECT_NE(findRule(failure.result(), "unknown-rule"), nullptr);
    }
}

TEST(CheckFailure, IsAnInvalidArgument)
{
    auto doc = json::parse(R"({"rule": 7})");
    EXPECT_THROW(core::ExperimentConfig::fromJson(doc),
                 std::invalid_argument);
}

TEST(CheckRunSpec, RegistryLintsAreCheckOnly)
{
    // Unknown backend kinds must still round-trip through the loader
    // (reproduce rejects them later, at backend construction) but the
    // analyzer flags them immediately.
    auto doc = json::parse(R"({"backend": "quantum"})");
    EXPECT_NO_THROW(launcher::ReproSpec::fromJson(doc));
    CheckResult result;
    launcher::checkRunSpec(doc, result);
    EXPECT_NE(findRule(result, "unknown-backend"), nullptr);
}

TEST(CheckRunSpec, FlagsFaultMetricTheBackendNeverEmits)
{
    auto doc = json::parse(
        R"({"backend": "sim", "workload": "hotspot",
            "fault": {"slow": 0.5, "slow_factor": 2.0,
                      "slow_metric": "response_time"}})");
    CheckResult result;
    launcher::checkRunSpec(doc, result);
    const check::Diagnostic *dangling =
        findRule(result, "dangling-metric");
    ASSERT_NE(dangling, nullptr);
    EXPECT_EQ(dangling->severity, Severity::Warning);
}

TEST(CheckWorkflow, ReportsEveryProblemInOnePass)
{
    auto doc = json::parse(R"({
        "functions": [{"name": "f", "operation": "true"},
                      {"name": "unused", "operation": "true"}],
        "states": [
          {"name": "a", "type": "operation",
           "actions": [{"functionRef": "g"}],
           "transition": "ghost"}
        ]})");
    CheckResult result;
    workflow::checkWorkflow(doc, result);
    EXPECT_NE(findRule(result, "dangling-function"), nullptr);
    EXPECT_NE(findRule(result, "dangling-transition"), nullptr);
    EXPECT_NE(findRule(result, "unused-function"), nullptr);
}

TEST(CheckWorkflow, ReportsCyclesWithTheFullPath)
{
    auto doc = json::parse(R"({
        "functions": [{"name": "f", "operation": "true"}],
        "states": [
          {"name": "a", "type": "operation",
           "actions": [{"functionRef": "f"}], "transition": "b"},
          {"name": "b", "type": "operation",
           "actions": [{"functionRef": "f"}], "transition": "a"}
        ]})");
    CheckResult result;
    workflow::checkWorkflow(doc, result);
    const check::Diagnostic *cycle = findRule(result, "workflow-cycle");
    ASSERT_NE(cycle, nullptr);
    EXPECT_NE(cycle->message.find("a.0.f -> b.0.f -> a.0.f"),
              std::string::npos);
}

TEST(CheckJournal, FlagsRoundsThatDisagreeWithTheSpec)
{
    std::string text =
        R"({"type":"spec","spec":{"backend":"sim","workload":"bfs"}})"
        "\n"
        R"({"type":"round","run":0,"records":[{"workload":"nw",)"
        R"("failure":"none"}]})"
        "\n";
    CheckResult result;
    record::checkJournalText(text, result);
    const check::Diagnostic *mismatch =
        findRule(result, "journal-spec-mismatch");
    ASSERT_NE(mismatch, nullptr);
    EXPECT_EQ(mismatch->severity, Severity::Error);
    EXPECT_EQ(mismatch->line, 2u);
}

TEST(CheckJournal, FlagsRoundAfterDoneAndOverrun)
{
    std::string text =
        R"({"type":"spec","spec":{"backend":"sim","workload":"bfs",)"
        R"("experiment":{"max":1}}})"
        "\n"
        R"({"type":"round","run":0,"records":[]})"
        "\n"
        R"({"type":"done"})"
        "\n"
        R"({"type":"round","run":1,"records":[]})"
        "\n";
    CheckResult result;
    record::checkJournalText(text, result);
    const check::Diagnostic *order = findRule(result, "journal-order");
    ASSERT_NE(order, nullptr);
    EXPECT_EQ(order->severity, Severity::Error);
    EXPECT_EQ(order->line, 4u);
    EXPECT_NE(findRule(result, "journal-overrun"), nullptr);
}

TEST(SniffArtifact, ClassifiesByExtensionAndContent)
{
    auto run_spec = json::parse(R"({"backend": "sim"})");
    EXPECT_EQ(check::sniffArtifact("x.json", "", &run_spec),
              ArtifactKind::RunSpec);
    auto fault = json::parse(R"({"crash": 0.1})");
    EXPECT_EQ(check::sniffArtifact("x.json", "", &fault),
              ArtifactKind::FaultSpec);
    auto wf = json::parse(R"({"states": []})");
    EXPECT_EQ(check::sniffArtifact("x.json", "", &wf),
              ArtifactKind::Workflow);
    EXPECT_EQ(check::sniffArtifact("x.jsonl", "", nullptr),
              ArtifactKind::Journal);
    EXPECT_EQ(check::sniffArtifact("x.md", "", nullptr),
              ArtifactKind::Metadata);
    auto mystery = json::parse(R"({"who": "knows"})");
    EXPECT_EQ(check::sniffArtifact("x.json", "", &mystery),
              ArtifactKind::Unknown);
}

TEST(SniffArtifact, SchemaTagValueTellsBundlesAndReportsApart)
{
    auto bundle =
        json::parse(R"({"schema": "sharp-baseline-bundle-v1"})");
    EXPECT_EQ(check::sniffArtifact("x.json", "", &bundle),
              ArtifactKind::BaselineBundle);
    auto report =
        json::parse(R"({"schema": "sharp-compare-report-v1"})");
    EXPECT_EQ(check::sniffArtifact("x.json", "", &report),
              ArtifactKind::CompareReport);
    // An unknown schema tag falls back to the calibration baseline,
    // whose checker names the expected tag in its diagnostic.
    auto unknown = json::parse(R"({"schema": "who-knows-v9"})");
    EXPECT_EQ(check::sniffArtifact("x.json", "", &unknown),
              ArtifactKind::Baseline);

    EXPECT_STREQ(check::artifactKindName(ArtifactKind::BaselineBundle),
                 "baseline bundle");
    EXPECT_STREQ(check::artifactKindName(ArtifactKind::CompareReport),
                 "compare report");
}

// ---- Seeded defect fixtures: one per defect class. Each pin covers
// ---- the rule, the severity, the source location, and the exit code.

TEST(Fixtures, MalformedJsonIsALocatedSyntaxError)
{
    CheckResult result;
    check::checkArtifactFile(fixture("malformed.json"), result);
    EXPECT_EQ(result.exitCode(), 2);
    const check::Diagnostic *syntax = findRule(result, "json-syntax");
    ASSERT_NE(syntax, nullptr);
    EXPECT_EQ(syntax->severity, Severity::Error);
    EXPECT_EQ(syntax->line, 4u);
    EXPECT_EQ(syntax->column, 1u);
}

TEST(Fixtures, UnknownFieldIsAWarningWithAHint)
{
    CheckResult result;
    ArtifactKind kind =
        check::checkArtifactFile(fixture("unknown_field.json"), result);
    EXPECT_EQ(kind, ArtifactKind::FaultSpec);
    EXPECT_EQ(result.exitCode(), 1);
    const check::Diagnostic *unknown =
        findRule(result, "unknown-field");
    ASSERT_NE(unknown, nullptr);
    EXPECT_EQ(unknown->severity, Severity::Warning);
    EXPECT_EQ(unknown->line, 4u);
    EXPECT_EQ(unknown->hint, "did you mean 'slow_factor'?");
}

TEST(Fixtures, ScenarioParamTypoIsAWarningWithAFamilyAwareHint)
{
    CheckResult result;
    ArtifactKind kind =
        check::checkArtifactFile(fixture("scenario_typo.json"), result);
    EXPECT_EQ(kind, ArtifactKind::Scenario);
    EXPECT_EQ(result.exitCode(), 1);
    const check::Diagnostic *unknown =
        findRule(result, "unknown-field");
    ASSERT_NE(unknown, nullptr);
    EXPECT_EQ(unknown->severity, Severity::Warning);
    EXPECT_EQ(unknown->line, 8u);
    EXPECT_EQ(unknown->column, 14u);
    EXPECT_EQ(unknown->hint, "did you mean 'period'?");
}

TEST(Fixtures, DanglingWorkloadIsALocatedError)
{
    CheckResult result;
    ArtifactKind kind = check::checkArtifactFile(
        fixture("dangling_workload.json"), result);
    EXPECT_EQ(kind, ArtifactKind::RunSpec);
    EXPECT_EQ(result.exitCode(), 2);
    const check::Diagnostic *dangling =
        findRule(result, "dangling-workload");
    ASSERT_NE(dangling, nullptr);
    EXPECT_EQ(dangling->severity, Severity::Error);
    EXPECT_EQ(dangling->line, 3u);
    EXPECT_EQ(dangling->hint, "did you mean 'hotspot'?");
}

TEST(Fixtures, TruncatedJournalIsAWarningOnTheTornLine)
{
    CheckResult result;
    ArtifactKind kind =
        check::checkArtifactFile(fixture("truncated.jsonl"), result);
    EXPECT_EQ(kind, ArtifactKind::Journal);
    EXPECT_EQ(result.exitCode(), 1);
    const check::Diagnostic *torn =
        findRule(result, "truncated-journal");
    ASSERT_NE(torn, nullptr);
    EXPECT_EQ(torn->severity, Severity::Warning);
    EXPECT_EQ(torn->line, 4u);
}

TEST(Fixtures, StaleBaselineCellWarnsAndMissingCellErrors)
{
    CheckResult result;
    ArtifactKind kind = check::checkArtifactFile(
        fixture("stale_baseline.json"), result);
    EXPECT_EQ(kind, ArtifactKind::Baseline);
    EXPECT_EQ(result.exitCode(), 2);
    const check::Diagnostic *stale =
        findRule(result, "stale-baseline-cell");
    ASSERT_NE(stale, nullptr);
    EXPECT_EQ(stale->severity, Severity::Warning);
    const check::Diagnostic *missing =
        findRule(result, "missing-baseline-cell");
    ASSERT_NE(missing, nullptr);
    EXPECT_EQ(missing->severity, Severity::Error);
    EXPECT_NE(missing->message.find("ks/lognormal"),
              std::string::npos);
}

TEST(CheckMetadata, WarnsWhenCachedRuleRanWithEngineDisabled)
{
    // Metadata recording a KS run with the statistics engine disabled:
    // the reproduction is still bit-exact, but pays the batch-recompute
    // cost on every evaluation — worth a warning, located at the
    // repro_stats_cache entry.
    launcher::ReproSpec spec;
    spec.backendKind = "sim";
    spec.workload = "hotspot";
    spec.machines = {"machine1"};
    spec.experiment.ruleName = "ks";
    spec.statsCache = false;
    record::RunLog log("hotspot");
    launcher::annotate(log, spec);
    std::string text = log.toMetadata().render();

    CheckResult result;
    check::checkArtifactText("run.md", text, ArtifactKind::Unknown,
                             result);
    const check::Diagnostic *slow =
        findRule(result, "disabled-stats-cache");
    ASSERT_NE(slow, nullptr);
    EXPECT_EQ(slow->severity, Severity::Warning);
    EXPECT_NE(slow->message.find("'ks'"), std::string::npos);
    EXPECT_GT(slow->line, 0u);
    EXPECT_NE(slow->hint.find("SHARP_STATS_CACHE"), std::string::npos);
    // The embedded run spec carries "stats_cache": false; the field
    // whitelist must know it, or every off-cache artifact gets a bogus
    // typo warning on top of the intended one.
    EXPECT_EQ(findRule(result, "unknown-field"), nullptr);
}

TEST(CheckMetadata, NoWarningForRulesWithoutACachedFastPath)
{
    // The fixed-count rule never consults the engine, so a disabled
    // cache changes nothing; the lint must stay quiet.
    launcher::ReproSpec spec;
    spec.backendKind = "sim";
    spec.workload = "hotspot";
    spec.machines = {"machine1"};
    spec.experiment.ruleName = "fixed";
    spec.statsCache = false;
    record::RunLog log("hotspot");
    launcher::annotate(log, spec);

    CheckResult off_result;
    check::checkArtifactText("run.md", log.toMetadata().render(),
                             ArtifactKind::Unknown, off_result);
    EXPECT_EQ(findRule(off_result, "disabled-stats-cache"), nullptr);

    // Engine enabled (the default): quiet for every rule.
    launcher::ReproSpec cached = spec;
    cached.experiment.ruleName = "ks";
    cached.statsCache = true;
    record::RunLog cached_log("hotspot");
    launcher::annotate(cached_log, cached);
    CheckResult on_result;
    check::checkArtifactText("run.md", cached_log.toMetadata().render(),
                             ArtifactKind::Unknown, on_result);
    EXPECT_EQ(findRule(on_result, "disabled-stats-cache"), nullptr);
}

TEST(CheckMetadata, FlagsUnknownSimdBackendWithSuggestion)
{
    launcher::ReproSpec spec;
    spec.backendKind = "sim";
    spec.workload = "hotspot";
    spec.machines = {"machine1"};
    spec.experiment.ruleName = "ks";
    record::RunLog log("hotspot");
    launcher::annotate(log, spec);
    record::MetadataDocument doc = log.toMetadata();

    // Whatever the dispatch layer recorded is a known name: quiet.
    CheckResult clean;
    check::checkArtifactText("run.md", doc.render(),
                             ArtifactKind::Unknown, clean);
    EXPECT_EQ(findRule(clean, "unknown-simd-backend"), nullptr);

    // An edited or foreign-build name is an error, with a did-you-mean
    // hint when it is one typo away from a real backend.
    doc.set("Configuration", "repro_simd_backend", "avx512f");
    CheckResult result;
    check::checkArtifactText("run.md", doc.render(),
                             ArtifactKind::Unknown, result);
    const check::Diagnostic *bad =
        findRule(result, "unknown-simd-backend");
    ASSERT_NE(bad, nullptr);
    EXPECT_EQ(bad->severity, Severity::Error);
    EXPECT_NE(bad->message.find("'avx512f'"), std::string::npos);
    EXPECT_NE(bad->hint.find("did you mean 'avx512'?"),
              std::string::npos);
    EXPECT_GT(bad->line, 0u);
}

// ---- The CLI command.

struct CliResult
{
    int status;
    std::string out;
    std::string err;
};

CliResult
runCheck(const std::vector<std::string> &argv)
{
    std::ostringstream out, err;
    int status = cli::runCli(argv, out, err);
    return {status, out.str(), err.str()};
}

TEST(CliCheck, CleanExamplesExitZero)
{
    auto result = runCheck({"check", example("run_spec.json"),
                            example("fault_spec.json"),
                            example("workflow.json")});
    EXPECT_EQ(result.status, 0) << result.out;
    EXPECT_NE(result.out.find("run spec: ok"), std::string::npos);
    EXPECT_NE(result.out.find("0 errors, 0 warnings"),
              std::string::npos);
}

TEST(CliCheck, DefectiveFixtureExitsTwoWithLocatedDiagnostic)
{
    auto result =
        runCheck({"check", fixture("dangling_workload.json")});
    EXPECT_EQ(result.status, 2);
    EXPECT_NE(result.out.find("dangling_workload.json:3:"),
              std::string::npos);
    EXPECT_NE(result.out.find("did you mean 'hotspot'?"),
              std::string::npos);
}

TEST(CliCheck, WarningOnlyFixtureExitsOne)
{
    auto result = runCheck({"check", fixture("unknown_field.json")});
    EXPECT_EQ(result.status, 1);
}

TEST(CliCheck, JsonFormatIsMachineReadable)
{
    auto result = runCheck({"check", fixture("unknown_field.json"),
                            "--format", "json"});
    EXPECT_EQ(result.status, 1);
    auto doc = json::parse(result.out);
    EXPECT_EQ(doc.getLong("errors", -1), 0);
    EXPECT_EQ(doc.getLong("warnings", -1), 1);
    EXPECT_EQ(doc.getLong("artifacts", -1), 1);
    const json::Value *diagnostics = doc.find("diagnostics");
    ASSERT_NE(diagnostics, nullptr);
    ASSERT_EQ(diagnostics->size(), 1u);
    EXPECT_EQ(diagnostics->asArray()[0].getString("rule", ""),
              "unknown-field");
    EXPECT_EQ(diagnostics->asArray()[0].getLong("line", 0), 4);
}

TEST(CliCheck, MalformedBaselineBundleExitsTwoWithBothDefects)
{
    auto result = runCheck({"check", fixture("bad_bundle.json")});
    EXPECT_EQ(result.status, 2) << result.out;
    EXPECT_NE(result.out.find("unsorted-samples"), std::string::npos);
    EXPECT_NE(result.out.find("inconsistent-count"),
              std::string::npos);
}

TEST(CliCheck, CompareReportArtifactIsRecognized)
{
    auto result = runCheck(
        {"check", std::string(SHARP_SOURCE_DIR) +
                      "/tests/fixtures/compare/golden_report.json"});
    EXPECT_EQ(result.status, 0) << result.out;
    EXPECT_NE(result.out.find("compare report: ok"),
              std::string::npos);
}

TEST(CliCheck, MissingFileIsAnIoError)
{
    auto result = runCheck({"check", "/no/such/file.json"});
    EXPECT_EQ(result.status, 2);
    EXPECT_NE(result.out.find("io-error"), std::string::npos);
}

TEST(CliCheck, RequiresAPath)
{
    auto result = runCheck({"check"});
    EXPECT_EQ(result.status, 2);
}

TEST(CliCheck, RejectsUnknownFormat)
{
    auto result = runCheck(
        {"check", example("run_spec.json"), "--format", "yaml"});
    EXPECT_EQ(result.status, 2);
}

// ---- `sharp serve` artifacts: the campaign queue journal and the
// ---- daemon state file get the same fixture treatment as the rest.

TEST(Fixtures, QueueUnknownEventIsLocatedWithADidYouMeanHint)
{
    CheckResult result;
    ArtifactKind kind = check::checkArtifactFile(
        fixture("queue_unknown_event.jsonl"), result);
    EXPECT_EQ(kind, ArtifactKind::QueueJournal);
    EXPECT_EQ(result.exitCode(), 2);

    const check::Diagnostic *unknown =
        findRule(result, "unknown-event");
    ASSERT_NE(unknown, nullptr);
    EXPECT_EQ(unknown->severity, Severity::Error);
    EXPECT_EQ(unknown->line, 3u);
    EXPECT_EQ(unknown->column, 1u);
    EXPECT_EQ(unknown->hint, "did you mean 'done'?");

    // Line 6 cancels a campaign that line 5 already completed.
    const check::Diagnostic *order = findRule(result, "queue-order");
    ASSERT_NE(order, nullptr);
    EXPECT_EQ(order->severity, Severity::Error);
    EXPECT_EQ(order->line, 6u);
    EXPECT_NE(order->message.find("after its terminal"),
              std::string::npos);
}

TEST(Fixtures, TornQueueTailIsAWarningWithARepairHint)
{
    CheckResult result;
    ArtifactKind kind =
        check::checkArtifactFile(fixture("queue_torn.jsonl"), result);
    EXPECT_EQ(kind, ArtifactKind::QueueJournal);
    EXPECT_EQ(result.exitCode(), 1);
    const check::Diagnostic *torn =
        findRule(result, "truncated-queue");
    ASSERT_NE(torn, nullptr);
    EXPECT_EQ(torn->severity, Severity::Warning);
    EXPECT_EQ(torn->line, 4u);
    EXPECT_NE(torn->hint.find("restart `sharp serve`"),
              std::string::npos);
}

TEST(Fixtures, DaemonStateTypoIsAWarningWithAHint)
{
    CheckResult result;
    ArtifactKind kind = check::checkArtifactFile(
        fixture("daemon_state_typo.json"), result);
    EXPECT_EQ(kind, ArtifactKind::DaemonState);
    EXPECT_EQ(result.exitCode(), 1);
    const check::Diagnostic *unknown =
        findRule(result, "unknown-field");
    ASSERT_NE(unknown, nullptr);
    EXPECT_EQ(unknown->severity, Severity::Warning);
    EXPECT_EQ(unknown->line, 6u);
    EXPECT_EQ(unknown->hint,
              "did you mean 'round_deadline_seconds'?");
}

TEST(CliCheck, QueueFixturesGoThroughTheCliToo)
{
    auto clean = runCheck({"check", fixture("queue_clean.jsonl")});
    EXPECT_EQ(clean.status, 0) << clean.out;
    EXPECT_NE(clean.out.find("queue journal: ok"),
              std::string::npos);

    auto unknown = runCheck(
        {"check", fixture("queue_unknown_event.jsonl")});
    EXPECT_EQ(unknown.status, 2);
    EXPECT_NE(unknown.out.find("unknown-event"), std::string::npos);

    auto state = runCheck({"check", fixture("daemon_state_typo.json")});
    EXPECT_EQ(state.status, 1);
    EXPECT_NE(state.out.find("unknown-field"), std::string::npos);
}

// ---- Did-you-mean cutoff.

TEST(SuggestName, DistanceTwoIsTheCutoff)
{
    const std::vector<std::string> known = {"warmup"};
    // distance 1 and 2 suggest; distance 3 stays silent.
    EXPECT_EQ(check::suggestName("warmups", known),
              "did you mean 'warmup'?");
    EXPECT_EQ(check::suggestName("warm", known),
              "did you mean 'warmup'?");
    EXPECT_EQ(check::suggestName("war", known), "");
}

TEST(SuggestName, PicksTheClosestCandidate)
{
    EXPECT_EQ(check::suggestName("roundz",
                                 {"rounds", "bounds", "round_max"}),
              "did you mean 'rounds'?");
    EXPECT_EQ(check::suggestName("", {"a"}),
              "did you mean 'a'?");
    EXPECT_EQ(check::suggestName("x", {}), "");
}

// ---- JSON locations on awkward inputs.

TEST(JsonLocation, CrlfLineEndingsKeepColumnsHonest)
{
    // \r\n ends the line; the value on line 2 starts at column 8.
    json::Value doc = json::parse("{\r\n  \"a\": true\r\n}\r\n");
    const json::Value *a = doc.find("a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->location().line, 2u);
    EXPECT_EQ(a->location().column, 8u);
}

TEST(JsonLocation, UnterminatedFinalLineErrorIsLocated)
{
    // The file ends mid-string with no trailing newline.
    try {
        json::parse("{\n  \"key\": \"never closed");
        FAIL() << "expected ParseError";
    } catch (const json::ParseError &error) {
        EXPECT_EQ(error.line, 2u);
        EXPECT_GE(error.column, 10u);
    }
}

TEST(JsonLocation, CrlfParseErrorPointsAtTheRightColumn)
{
    try {
        json::parse("{\r\n  \"a\": !\r\n}");
        FAIL() << "expected ParseError";
    } catch (const json::ParseError &error) {
        EXPECT_EQ(error.line, 2u);
        EXPECT_EQ(error.column, 8u);
    }
}

// ---- Campaign-level audit (sharp check --campaign).

std::string
campaign(const std::string &name)
{
    return std::string(SHARP_SOURCE_DIR) +
           "/tests/fixtures/campaign/" + name;
}

check::CheckResult
auditCampaign(const std::string &name)
{
    check::CheckResult result;
    check::checkCampaignDir(campaign(name), result);
    return result;
}

TEST(CheckCampaign, CleanEndToEndStateDirExitsZero)
{
    check::CheckResult result = auditCampaign("clean");
    EXPECT_EQ(result.errorCount(), 0u) << result.renderText();
    EXPECT_EQ(result.warningCount(), 0u) << result.renderText();
    EXPECT_EQ(result.exitCode(), 0);
}

TEST(CheckCampaign, MissingResultIsAnError)
{
    check::CheckResult result = auditCampaign("missing_result");
    const check::Diagnostic *finding =
        findRule(result, "campaign-missing-result");
    ASSERT_NE(finding, nullptr) << result.renderText();
    EXPECT_EQ(finding->severity, check::Severity::Error);
    EXPECT_EQ(result.exitCode(), 2);
}

TEST(CheckCampaign, JournalWithoutDoneMarkerDiverges)
{
    check::CheckResult result = auditCampaign("journal_divergence");
    const check::Diagnostic *finding =
        findRule(result, "campaign-journal-divergence");
    ASSERT_NE(finding, nullptr) << result.renderText();
    EXPECT_EQ(finding->severity, check::Severity::Error);
    EXPECT_EQ(result.exitCode(), 2);
}

TEST(CheckCampaign, FailoverCountBeyondDaemonCapIsFlagged)
{
    check::CheckResult result = auditCampaign("failover_overrun");
    const check::Diagnostic *finding =
        findRule(result, "campaign-failover-overrun");
    ASSERT_NE(finding, nullptr) << result.renderText();
    EXPECT_EQ(finding->severity, check::Severity::Error);
    EXPECT_EQ(result.exitCode(), 2);
}

TEST(CheckCampaign, QueueSpecDisagreeingWithJournalIsFlagged)
{
    check::CheckResult result = auditCampaign("spec_mismatch");
    const check::Diagnostic *finding =
        findRule(result, "campaign-spec-mismatch");
    ASSERT_NE(finding, nullptr) << result.renderText();
    EXPECT_EQ(finding->severity, check::Severity::Error);
    EXPECT_NE(finding->message.find("seed"), std::string::npos);
    EXPECT_EQ(result.exitCode(), 2);
}

TEST(CheckCampaign, ReportMetadataDisagreeingWithSpecIsFlagged)
{
    check::CheckResult result = auditCampaign("metadata_mismatch");
    const check::Diagnostic *finding =
        findRule(result, "campaign-metadata-mismatch");
    ASSERT_NE(finding, nullptr) << result.renderText();
    EXPECT_EQ(finding->severity, check::Severity::Error);
    EXPECT_EQ(result.exitCode(), 2);
}

TEST(CheckCampaign, OrphanCampaignDirWarnsAndNotesSkippedFiles)
{
    check::CheckResult result = auditCampaign("orphan_dir");
    const check::Diagnostic *orphan =
        findRule(result, "campaign-orphan-dir");
    ASSERT_NE(orphan, nullptr) << result.renderText();
    EXPECT_EQ(orphan->severity, check::Severity::Warning);
    const check::Diagnostic *skipped =
        findRule(result, "skipped-files");
    ASSERT_NE(skipped, nullptr) << result.renderText();
    EXPECT_EQ(skipped->severity, check::Severity::Note);
    EXPECT_EQ(result.exitCode(), 1);
}

TEST(CheckCampaign, MissingQueueJournalIsFatal)
{
    check::CheckResult result;
    check::checkCampaignDir("/no/such/state/dir", result);
    EXPECT_NE(findRule(result, "campaign-missing-queue"), nullptr);
    EXPECT_EQ(result.exitCode(), 2);
}

TEST(CliCheck, CampaignFlagRunsTheAudit)
{
    auto clean = runCheck({"check", "--campaign", campaign("clean")});
    EXPECT_EQ(clean.status, 0) << clean.out;
    EXPECT_NE(clean.out.find("campaign audit"), std::string::npos);

    auto broken =
        runCheck({"check", "--campaign", campaign("spec_mismatch")});
    EXPECT_EQ(broken.status, 2);
    EXPECT_NE(broken.out.find("campaign-spec-mismatch"),
              std::string::npos);

    auto missing = runCheck({"check", "--campaign"});
    EXPECT_EQ(missing.status, 2);
}

TEST(CliCheck, DirectoryExpansionNotesSkippedFiles)
{
    // The orphan fixture's ghost dir holds a .txt; `check DIR` must
    // fold it into one informational note, not an error.
    auto result = runCheck(
        {"check", campaign("orphan_dir") + "/campaigns/ghost"});
    EXPECT_EQ(result.status, 0) << result.out;
    EXPECT_NE(result.out.find("skipped 1 non-artifact file"),
              std::string::npos);
}

} // anonymous namespace
