/**
 * @file
 * Tests for confidence intervals, including the right-tailed mean CI
 * the paper's CI stopping rule thresholds (§V-C, Table IV).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "rng/sampler.hh"
#include "stats/ci.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace sharp::stats;
using namespace sharp::rng;

TEST(MeanCi, ContainsSampleMean)
{
    std::vector<double> xs = {9.5, 10.2, 10.1, 9.8, 10.4, 9.9};
    ConfidenceInterval ci = meanCi(xs, 0.95);
    double m = mean(xs);
    EXPECT_LT(ci.lower, m);
    EXPECT_GT(ci.upper, m);
    EXPECT_DOUBLE_EQ(ci.level, 0.95);
}

TEST(MeanCi, MatchesTFormula)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
    ConfidenceInterval ci = meanCi(xs, 0.95);
    // t_{0.975,4} = 2.776, se = sd/sqrt(5) = sqrt(2.5)/sqrt(5).
    double se = std::sqrt(2.5 / 5.0);
    EXPECT_NEAR(ci.upper - ci.lower, 2.0 * 2.776 * se, 5e-3);
}

TEST(MeanCi, CoverageNearNominal)
{
    Xoshiro256 gen(1);
    NormalSampler sampler(10.0, 2.0);
    int covered = 0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
        auto xs = sampler.sampleMany(gen, 20);
        ConfidenceInterval ci = meanCi(xs, 0.95);
        covered += ci.lower <= 10.0 && 10.0 <= ci.upper;
    }
    EXPECT_NEAR(static_cast<double>(covered) / trials, 0.95, 0.04);
}

TEST(MeanCi, WidthShrinksAsSqrtN)
{
    Xoshiro256 gen(2);
    NormalSampler sampler(0.0, 1.0);
    auto small = sampler.sampleMany(gen, 50);
    auto large = sampler.sampleMany(gen, 5000);
    EXPECT_GT(meanCi(small, 0.95).width(),
              3.0 * meanCi(large, 0.95).width());
}

TEST(MeanCiRightTailed, LowerBoundIsMean)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    ConfidenceInterval ci = meanCiRightTailed(xs, 0.95);
    EXPECT_DOUBLE_EQ(ci.lower, mean(xs));
    EXPECT_GT(ci.upper, ci.lower);
    // One-sided width < two-sided half... specifically uses t_{0.95}.
    ConfidenceInterval two = meanCi(xs, 0.95);
    EXPECT_LT(ci.width(), two.width());
}

TEST(RelativeWidth, NormalizesByCenter)
{
    ConfidenceInterval ci{9.0, 11.0, 0.95};
    EXPECT_DOUBLE_EQ(ci.relativeWidth(10.0), 0.2);
    EXPECT_DOUBLE_EQ(ci.relativeWidth(0.0), 0.0);
}

TEST(MedianCi, BracketsTheMedian)
{
    Xoshiro256 gen(3);
    LogNormalSampler sampler(2.0, 0.6);
    auto xs = sampler.sampleMany(gen, 200);
    ConfidenceInterval ci = medianCi(xs, 0.95);
    double med = median(xs);
    EXPECT_LE(ci.lower, med);
    EXPECT_GE(ci.upper, med);
}

TEST(MedianCi, CoverageNearNominal)
{
    Xoshiro256 gen(4);
    // True median of LogNormal(1, 0.5) is e.
    LogNormalSampler sampler(1.0, 0.5);
    int covered = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
        auto xs = sampler.sampleMany(gen, 60);
        ConfidenceInterval ci = medianCi(xs, 0.95);
        covered += ci.lower <= M_E && M_E <= ci.upper;
    }
    // Order-statistic interval is conservative: coverage >= nominal.
    EXPECT_GE(static_cast<double>(covered) / trials, 0.92);
}

TEST(MedianCi, TinySampleFallsBackToRange)
{
    std::vector<double> xs = {2.0, 1.0, 3.0};
    ConfidenceInterval ci = medianCi(xs, 0.95);
    EXPECT_DOUBLE_EQ(ci.lower, 1.0);
    EXPECT_DOUBLE_EQ(ci.upper, 3.0);
    // The (min, max) pair of n=3 only covers the median with
    // probability 1 - 2^(1-3) = 0.75; the interval must report that
    // actual coverage, not the requested 0.95.
    EXPECT_DOUBLE_EQ(ci.level, 0.75);
}

TEST(MedianCi, TinySampleCoverageGrowsWithN)
{
    EXPECT_DOUBLE_EQ(medianCi({1.0, 2.0}, 0.95).level, 0.5);
    EXPECT_DOUBLE_EQ(medianCi({1.0, 2.0, 3.0, 4.0}, 0.95).level, 0.875);
    EXPECT_DOUBLE_EQ(medianCi({1.0, 2.0, 3.0, 4.0, 5.0}, 0.95).level,
                     0.9375);
    // From n = 6 on the order-statistic search applies and the label
    // is the requested level again.
    EXPECT_DOUBLE_EQ(
        medianCi({1.0, 2.0, 3.0, 4.0, 5.0, 6.0}, 0.95).level, 0.95);
}

TEST(GeometricMeanCi, BackTransformsLogInterval)
{
    Xoshiro256 gen(5);
    LogNormalSampler sampler(2.0, 0.5);
    auto xs = sampler.sampleMany(gen, 500);
    ConfidenceInterval ci = geometricMeanCi(xs, 0.95);
    double gm = geometricMean(xs);
    EXPECT_LT(ci.lower, gm);
    EXPECT_GT(ci.upper, gm);
    // The true geometric mean is e^2.
    EXPECT_LT(ci.lower, std::exp(2.0) * 1.1);
    EXPECT_GT(ci.upper, std::exp(2.0) * 0.9);
}

TEST(GeometricMeanCi, RejectsNonPositive)
{
    EXPECT_THROW(geometricMeanCi({1.0, -1.0, 2.0}, 0.95),
                 std::invalid_argument);
}

TEST(QuantileCi, BracketsTheQuantile)
{
    Xoshiro256 gen(6);
    NormalSampler sampler(0.0, 1.0);
    auto xs = sampler.sampleMany(gen, 500);
    ConfidenceInterval ci = quantileCi(xs, 0.95, 0.95);
    double q = quantile(xs, 0.95);
    EXPECT_LE(ci.lower, q + 1e-12);
    EXPECT_GE(ci.upper, q - 1e-12);
    // The interval is in the right tail region.
    EXPECT_GT(ci.lower, quantile(xs, 0.80));
}

TEST(QuantileCi, NarrowsWithSampleSize)
{
    Xoshiro256 gen(7);
    NormalSampler sampler(0.0, 1.0);
    auto small = sampler.sampleMany(gen, 100);
    auto large = sampler.sampleMany(gen, 10000);
    EXPECT_GT(quantileCi(small, 0.9, 0.95).width(),
              quantileCi(large, 0.9, 0.95).width());
}

TEST(CiValidation, RejectsBadLevels)
{
    std::vector<double> xs = {1.0, 2.0, 3.0};
    EXPECT_THROW(meanCi(xs, 0.0), std::invalid_argument);
    EXPECT_THROW(meanCi(xs, 1.0), std::invalid_argument);
    EXPECT_THROW(meanCi({1.0}, 0.95), std::invalid_argument);
    EXPECT_THROW(quantileCi(xs, 0.0, 0.95), std::invalid_argument);
}

TEST(SortedOverloads, AgreeWithUnsortedBitForBit)
{
    Xoshiro256 gen(23);
    LogNormalSampler sampler(0.5, 0.8);
    for (size_t n : {1u, 2u, 6u, 47u, 300u}) {
        auto xs = sampler.sampleMany(gen, n);
        auto sorted = xs;
        std::sort(sorted.begin(), sorted.end());
        auto plain = medianCi(xs, 0.95);
        auto fast = medianCiSorted(sorted, 0.95);
        EXPECT_EQ(fast.lower, plain.lower) << "n=" << n;
        EXPECT_EQ(fast.upper, plain.upper) << "n=" << n;
        if (n >= 2) {
            auto qplain = quantileCi(xs, 0.9, 0.95);
            auto qfast = quantileCiSorted(sorted, 0.9, 0.95);
            EXPECT_EQ(qfast.lower, qplain.lower) << "n=" << n;
            EXPECT_EQ(qfast.upper, qplain.upper) << "n=" << n;
        }
    }
}

} // anonymous namespace
