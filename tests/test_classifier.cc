/**
 * @file
 * Tests for the online distribution classifier, scored against the ten
 * synthetic tuning distributions of §IV-c — the same procedure the
 * paper used to tune its meta-heuristic ("we use large sample sizes
 * (1000 samples)").
 */

#include <gtest/gtest.h>

#include <map>

#include "core/classifier.hh"
#include "rng/synthetic.hh"
#include "rng/xoshiro.hh"

namespace
{

using namespace sharp::core;
using sharp::rng::SyntheticClass;
using sharp::rng::syntheticByName;
using sharp::rng::syntheticRegistry;
using sharp::rng::Xoshiro256;

/** Expected classifier output per synthetic ground-truth class. */
DistributionClass
expectedClass(SyntheticClass truth)
{
    switch (truth) {
      case SyntheticClass::Normal: return DistributionClass::Normal;
      case SyntheticClass::LogNormal: return DistributionClass::LogNormal;
      case SyntheticClass::Uniform: return DistributionClass::Uniform;
      case SyntheticClass::LogUniform:
        return DistributionClass::LogUniform;
      case SyntheticClass::Logistic: return DistributionClass::Logistic;
      case SyntheticClass::Bimodal: return DistributionClass::Bimodal;
      case SyntheticClass::Multimodal:
        return DistributionClass::Multimodal;
      case SyntheticClass::Autocorrelated:
        return DistributionClass::Autocorrelated;
      case SyntheticClass::HeavyTail:
        return DistributionClass::HeavyTail;
      case SyntheticClass::Constant: return DistributionClass::Constant;
    }
    return DistributionClass::Unknown;
}

std::vector<double>
drawSynthetic(const std::string &name, size_t n, uint64_t seed)
{
    Xoshiro256 gen(seed);
    return syntheticByName(name).make()->sampleMany(gen, n);
}

TEST(Classifier, TooFewSamplesIsUnknown)
{
    auto xs = drawSynthetic("normal", 10, 1);
    Classification c = classifyDistribution(xs);
    EXPECT_EQ(c.cls, DistributionClass::Unknown);
    EXPECT_NE(c.rationale.find("insufficient"), std::string::npos);
}

TEST(Classifier, ConstantDetectedImmediately)
{
    std::vector<double> xs(40, 10.0);
    EXPECT_EQ(classifyDistribution(xs).cls, DistributionClass::Constant);
}

TEST(Classifier, NearConstantWithTinyJitterIsNotConstant)
{
    std::vector<double> xs(40, 10.0);
    xs[5] = 10.5;
    EXPECT_NE(classifyDistribution(xs).cls, DistributionClass::Constant);
}

TEST(Classifier, StructuralClassesAt1000Samples)
{
    // The structurally distinctive classes must be identified on every
    // tested seed at the paper's tuning size of 1000 samples.
    const std::vector<std::string> names = {"constant", "sinusoidal",
                                            "bimodal", "multimodal",
                                            "cauchy"};
    for (const auto &name : names) {
        const auto &spec = syntheticByName(name);
        for (uint64_t seed = 1; seed <= 5; ++seed) {
            auto xs = drawSynthetic(name, 1000, seed);
            Classification c = classifyDistribution(xs);
            DistributionClass want = expectedClass(spec.truth);
            EXPECT_EQ(c.cls, want)
                << name << " seed " << seed << " -> "
                << distributionClassName(c.cls) << " (" << c.rationale
                << ")";
        }
    }
}

TEST(Classifier, ParametricFamiliesAt1000Samples)
{
    // The parametric stage works by minimum-KS fit; demand >= 4/5
    // seeds correct per family (logistic-vs-normal is genuinely close).
    const std::vector<std::string> names = {"normal", "lognormal",
                                            "uniform", "loguniform",
                                            "logistic"};
    for (const auto &name : names) {
        const auto &spec = syntheticByName(name);
        int correct = 0;
        for (uint64_t seed = 1; seed <= 5; ++seed) {
            auto xs = drawSynthetic(name, 1000, seed);
            Classification c = classifyDistribution(xs);
            correct += c.cls == expectedClass(spec.truth);
        }
        EXPECT_GE(correct, 4) << name;
    }
}

TEST(Classifier, OverallAccuracyAcrossRegistry)
{
    int correct = 0, total = 0;
    for (const auto &spec : syntheticRegistry()) {
        for (uint64_t seed = 10; seed < 20; ++seed) {
            auto xs = drawSynthetic(spec.name, 1000, seed);
            Classification c = classifyDistribution(xs);
            correct += c.cls == expectedClass(spec.truth);
            ++total;
        }
    }
    // 100 classifications; demand >= 85% accuracy overall.
    EXPECT_GE(correct * 100 / total, 85)
        << correct << "/" << total << " correct";
}

TEST(Classifier, ConfusionMatrixAtCalibrationBudget)
{
    // n=300 is the post-stop budget the calibration harness operates
    // around; the confusion matrix shows *which* families blur (the
    // known hard pairs are logistic/normal and uniform/bimodal).
    std::map<std::string, std::map<std::string, int>> confusion;
    int correct = 0, total = 0;
    for (const auto &spec : syntheticRegistry()) {
        const char *want = sharp::rng::syntheticClassName(spec.truth);
        for (uint64_t seed = 10; seed < 20; ++seed) {
            auto xs = drawSynthetic(spec.name, 300, seed);
            Classification c = classifyDistribution(xs);
            const char *got = distributionClassName(c.cls);
            ++confusion[want][got];
            correct += std::string(got) == want;
            ++total;
        }
    }
    double accuracy = static_cast<double>(correct) / total;
    if (accuracy < 0.75) {
        std::string table;
        for (const auto &row : confusion) {
            table += row.first + ":";
            for (const auto &entry : row.second)
                table += " " + entry.first + "=" +
                         std::to_string(entry.second);
            table += "\n";
        }
        FAIL() << "accuracy " << correct << "/" << total
               << " below 75% floor; confusion matrix:\n"
               << table;
    }
}

TEST(Classifier, ModeCountReportedForMultimodal)
{
    auto xs = drawSynthetic("multimodal", 2000, 3);
    Classification c = classifyDistribution(xs);
    EXPECT_EQ(c.cls, DistributionClass::Multimodal);
    EXPECT_GE(c.modes, 3u);
}

TEST(Classifier, AutocorrelationEvidenceRecorded)
{
    auto xs = drawSynthetic("sinusoidal", 500, 4);
    Classification c = classifyDistribution(xs);
    EXPECT_EQ(c.cls, DistributionClass::Autocorrelated);
    EXPECT_GT(c.lag1, 0.5);
}

TEST(Classifier, HeavyTailScreenBeatsModality)
{
    // Cauchy data must be flagged heavy-tailed, not multimodal, even
    // though its KDE can show spurious bumps from extreme outliers.
    for (uint64_t seed = 30; seed < 35; ++seed) {
        auto xs = drawSynthetic("cauchy", 1000, seed);
        Classification c = classifyDistribution(xs);
        EXPECT_EQ(c.cls, DistributionClass::HeavyTail) << seed;
    }
}

TEST(Classifier, RationaleIsAlwaysPopulated)
{
    for (const auto &spec : syntheticRegistry()) {
        auto xs = drawSynthetic(spec.name, 300, 7);
        Classification c = classifyDistribution(xs);
        EXPECT_FALSE(c.rationale.empty()) << spec.name;
    }
}

TEST(Classifier, ClassNamesAreStable)
{
    EXPECT_STREQ(distributionClassName(DistributionClass::LogNormal),
                 "lognormal");
    EXPECT_STREQ(distributionClassName(DistributionClass::HeavyTail),
                 "heavytail");
    EXPECT_STREQ(distributionClassName(DistributionClass::Unknown),
                 "unknown");
}

} // anonymous namespace
