/**
 * @file
 * Tests for the `sharp` CLI: argument parsing and every command,
 * driven through string streams and temp files.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/cli.hh"
#include "launcher/reproduce.hh"
#include "record/metadata.hh"
#include "simd/dispatch.hh"

namespace
{

using namespace sharp::cli;
namespace fs = std::filesystem;

/** Run the CLI and capture output/status. */
struct CliResult
{
    int status;
    std::string out;
    std::string err;
};

CliResult
run(const std::vector<std::string> &argv)
{
    std::ostringstream out, err;
    int status = runCli(argv, out, err);
    return {status, out.str(), err.str()};
}

TEST(ParseArgs, CommandPositionalsAndFlags)
{
    ParsedArgs args = parseArgs({"compare", "a.csv", "b.csv",
                                 "--metric", "execution_time",
                                 "--html", "out.html"});
    EXPECT_EQ(args.command, "compare");
    ASSERT_EQ(args.positional.size(), 2u);
    EXPECT_EQ(args.positional[1], "b.csv");
    EXPECT_EQ(args.get("metric"), "execution_time");
    EXPECT_EQ(args.get("missing", "dflt"), "dflt");
}

TEST(ParseArgs, BareFlagsHaveEmptyValues)
{
    ParsedArgs args = parseArgs({"workflow", "spec.json", "--execute"});
    EXPECT_TRUE(args.has("execute"));
    EXPECT_EQ(args.get("execute"), "");
    EXPECT_FALSE(args.has("makefile"));
}

TEST(ParseArgs, FlagFollowedByFlagTakesNoValue)
{
    ParsedArgs args = parseArgs({"run", "--execute", "--max", "10"});
    EXPECT_TRUE(args.has("execute"));
    EXPECT_EQ(args.get("max"), "10");
}

TEST(ParseArgs, RejectsEmptyFlagName)
{
    EXPECT_THROW(parseArgs({"run", "--"}), std::invalid_argument);
}

TEST(Cli, HelpAndUnknownCommand)
{
    CliResult help = run({"help"});
    EXPECT_EQ(help.status, 0);
    EXPECT_NE(help.out.find("usage: sharp"), std::string::npos);

    CliResult unknown = run({"frobnicate"});
    EXPECT_EQ(unknown.status, 2);
    EXPECT_NE(unknown.err.find("unknown command"), std::string::npos);

    CliResult empty = run({});
    EXPECT_EQ(empty.status, 2);
}

TEST(Cli, ListShowsRegistries)
{
    CliResult result = run({"list"});
    EXPECT_EQ(result.status, 0);
    EXPECT_NE(result.out.find("hotspot"), std::string::npos);
    EXPECT_NE(result.out.find("machine3"), std::string::npos);
    EXPECT_NE(result.out.find("ks"), std::string::npos);
    EXPECT_NE(result.out.find("meta"), std::string::npos);
}

TEST(Cli, RunRequiresWorkload)
{
    CliResult result = run({"run"});
    EXPECT_EQ(result.status, 2);
    EXPECT_NE(result.err.find("--workload"), std::string::npos);
}

TEST(Cli, RunProducesReportAndArtifacts)
{
    fs::path base = fs::temp_directory_path() / "sharp_cli_run";
    fs::path html = fs::temp_directory_path() / "sharp_cli_run.html";
    CliResult result =
        run({"run", "--workload", "bfs", "--machine", "machine1",
             "--rule", "ks", "--threshold", "0.1", "--max", "500",
             "--seed", "9", "--out", base.string(), "--html",
             html.string()});
    EXPECT_EQ(result.status, 0) << result.err;
    EXPECT_NE(result.out.find("collected"), std::string::npos);
    EXPECT_NE(result.out.find("Distribution report"),
              std::string::npos);
    EXPECT_TRUE(fs::exists(base.string() + ".csv"));
    EXPECT_TRUE(fs::exists(base.string() + ".md"));
    EXPECT_TRUE(fs::exists(html));

    // --- The saved metadata feeds `sharp reproduce`. ---
    CliResult repro = run({"reproduce", base.string() + ".md"});
    EXPECT_EQ(repro.status, 0) << repro.err;
    EXPECT_NE(repro.out.find("reproduced"), std::string::npos);

    // --- The saved CSV feeds `sharp report` and `sharp compare`. ---
    CliResult report = run({"report", base.string() + ".csv"});
    EXPECT_EQ(report.status, 0) << report.err;
    EXPECT_NE(report.out.find("Distribution report"),
              std::string::npos);

    CliResult compare = run({"compare", base.string() + ".csv",
                             base.string() + ".csv"});
    EXPECT_EQ(compare.status, 0) << compare.err;
    EXPECT_NE(compare.out.find("NAMD"), std::string::npos);
    // Self-comparison: speedup 1x.
    EXPECT_NE(compare.out.find("1x"), std::string::npos);

    fs::remove(base.string() + ".csv");
    fs::remove(base.string() + ".md");
    fs::remove(html);
}

TEST(Cli, ReproduceWarnsOnSimdBackendMismatch)
{
    // Results are bit-identical across backends by contract, so a
    // replay on different silicon succeeds — but the CLI flags that
    // timings were measured under a different kernel set.
    sharp::launcher::ReproSpec spec;
    spec.backendKind = "sim";
    spec.workload = "hotspot";
    spec.machines = {"machine1"};
    spec.experiment.ruleName = "fixed";
    spec.experiment.ruleParams = {{"count", 20}};
    spec.experiment.options.maxSamples = 200;
    sharp::record::RunLog log("hotspot");
    sharp::launcher::annotate(log, spec);
    sharp::record::MetadataDocument doc = log.toMetadata();

    fs::path path =
        fs::temp_directory_path() / "sharp_cli_simd_meta.md";
    doc.save(path.string());
    CliResult same = run({"reproduce", path.string()});
    EXPECT_EQ(same.status, 0) << same.err;
    EXPECT_EQ(same.err.find("SIMD backend"), std::string::npos);

    // Rewrite the provenance as if captured on another backend.
    std::string active(sharp::simd::activeBackendName());
    std::string other = active == "scalar" ? "avx2" : "scalar";
    doc.set("Configuration", "repro_simd_backend", other);
    doc.save(path.string());
    CliResult warned = run({"reproduce", path.string()});
    EXPECT_EQ(warned.status, 0) << warned.err;
    EXPECT_NE(warned.err.find("SIMD backend '" + other + "'"),
              std::string::npos);
    EXPECT_NE(warned.err.find(active), std::string::npos);
    fs::remove(path);
}

TEST(Cli, RunRejectsBadNumbers)
{
    CliResult result = run({"run", "--workload", "bfs", "--threshold",
                            "abc"});
    EXPECT_EQ(result.status, 2);
    EXPECT_NE(result.err.find("must be a number"), std::string::npos);
}

TEST(Cli, RunRejectsUnknownWorkload)
{
    CliResult result = run({"run", "--workload", "linpack"});
    EXPECT_EQ(result.status, 1);
    EXPECT_NE(result.err.find("error:"), std::string::npos);
}

TEST(Cli, RunRejectsBadRetryFlags)
{
    CliResult result = run({"run", "--workload", "bfs", "--retries",
                            "many"});
    EXPECT_EQ(result.status, 2);
    EXPECT_NE(result.err.find("--retries"), std::string::npos);

    CliResult negative = run({"run", "--workload", "bfs",
                              "--retry-backoff", "-1"});
    EXPECT_EQ(negative.status, 2);

    CliResult rate = run({"run", "--workload", "bfs",
                          "--max-failure-rate", "1.5"});
    EXPECT_EQ(rate.status, 2);
}

// Satellite regression: the failure-policy abort is a distinct exit
// code (3) so scripts can tell "the campaign was hopeless" apart from
// generic errors (1) and usage mistakes (2).
TEST(Cli, FailurePolicyAbortExitsWithCode3)
{
    fs::path fault_file =
        fs::temp_directory_path() / "sharp_cli_fault.json";
    {
        std::ofstream spec(fault_file);
        spec << R"({"crash": 1.0, "seed": 7})";
    }
    CliResult result =
        run({"run", "--workload", "bfs", "--fault",
             fault_file.string(), "--max-failures", "2", "--max",
             "50"});
    EXPECT_EQ(result.status, 3);
    EXPECT_NE(result.err.find("failure policy"), std::string::npos);
    EXPECT_NE(result.err.find("signal-crash"), std::string::npos);
    fs::remove(fault_file);
}

TEST(Cli, RetriedFaultyRunStillSucceeds)
{
    fs::path fault_file =
        fs::temp_directory_path() / "sharp_cli_flaky.json";
    {
        std::ofstream spec(fault_file);
        spec << R"({"flaky_exit": 0.3, "seed": 11})";
    }
    CliResult result =
        run({"run", "--workload", "bfs", "--fault",
             fault_file.string(), "--retries", "3", "--max-failures",
             "100", "--rule", "fixed", "--count", "30"});
    EXPECT_EQ(result.status, 0) << result.err;
    EXPECT_NE(result.out.find("collected 30 samples"),
              std::string::npos);
    fs::remove(fault_file);
}

TEST(Cli, ResumeRejectsMissingJournal)
{
    CliResult result = run({"run", "--resume", "/no/such/journal"});
    EXPECT_EQ(result.status, 1);
    EXPECT_NE(result.err.find("error:"), std::string::npos);
}

TEST(Cli, ResumeOfCompletedJournalIsANoOp)
{
    fs::path dir = fs::temp_directory_path() / "sharp_cli_resume_done";
    fs::remove_all(dir);
    fs::create_directories(dir);
    fs::path journal = dir / "journal.jsonl";
    fs::path out = dir / "result";

    CliResult first =
        run({"run", "--workload", "bfs", "--rule", "fixed", "--count",
             "10", "--journal", journal.string(), "--out",
             out.string()});
    ASSERT_EQ(first.status, 0) << first.err;

    CliResult again = run({"run", "--resume", dir.string()});
    EXPECT_EQ(again.status, 0) << again.err;
    EXPECT_NE(again.out.find("already completed"), std::string::npos);
    fs::remove_all(dir);
}

TEST(Cli, ReportRejectsMissingFile)
{
    CliResult result = run({"report", "/no/such/file.csv"});
    EXPECT_EQ(result.status, 1);
    CliResult noargs = run({"report"});
    EXPECT_EQ(noargs.status, 2);
}

TEST(Cli, WorkflowTranslatesAndExecutes)
{
    fs::path spec = fs::temp_directory_path() / "sharp_cli_wf.json";
    {
        std::ofstream out(spec);
        out << R"({
            "id": "cliwf",
            "functions": [{"name": "f", "operation": "true"}],
            "states": [{"name": "s", "type": "operation",
                        "actions": [{"functionRef": "f"}]}]
        })";
    }
    fs::path makefile = fs::temp_directory_path() / "sharp_cli_wf.mk";

    CliResult translate = run({"workflow", spec.string(), "--makefile",
                               makefile.string()});
    EXPECT_EQ(translate.status, 0) << translate.err;
    EXPECT_TRUE(fs::exists(makefile));

    CliResult execute =
        run({"workflow", spec.string(), "--execute"});
    EXPECT_EQ(execute.status, 0) << execute.err;
    EXPECT_NE(execute.out.find("succeeded"), std::string::npos);

    fs::remove(spec);
    fs::remove(makefile);
}

TEST(Cli, GateEndToEnd)
{
    // Record a baseline and a regressed candidate, then gate them.
    fs::path base = fs::temp_directory_path() / "sharp_cli_gate_base";
    fs::path cand = fs::temp_directory_path() / "sharp_cli_gate_cand";
    ASSERT_EQ(run({"run", "--workload", "lud", "--rule", "fixed",
                   "--count", "80", "--seed", "1", "--out",
                   base.string()})
                  .status,
              0);
    // The "candidate": the same workload on a slower environment —
    // machine2's lower cpuSpeedFactor regresses every run ~2%... use
    // a different machine for a visible change.
    ASSERT_EQ(run({"run", "--workload", "lud", "--machine", "machine2",
                   "--rule", "fixed", "--count", "80", "--seed", "2",
                   "--out", cand.string()})
                  .status,
              0);

    // Self-gate passes.
    CliResult self = run({"gate", base.string() + ".csv",
                          base.string() + ".csv"});
    EXPECT_EQ(self.status, 0) << self.err;
    EXPECT_NE(self.out.find("PASS"), std::string::npos);

    // machine2 is ~2% slower than machine1; with a 1% tolerance the
    // gate must fail.
    CliResult fail = run({"gate", base.string() + ".csv",
                          cand.string() + ".csv", "--slowdown",
                          "0.01"});
    EXPECT_EQ(fail.status, 1) << fail.out;
    EXPECT_NE(fail.out.find("FAIL"), std::string::npos);

    for (const auto &path : {base, cand}) {
        fs::remove(path.string() + ".csv");
        fs::remove(path.string() + ".md");
    }
}

TEST(Cli, SuiteRunsTheRegistry)
{
    CliResult result = run({"suite", "--machine", "machine2", "--max",
                            "300", "--seed", "4"});
    EXPECT_EQ(result.status, 0) << result.err;
    // machine2 runs the 11 CPU benchmarks.
    EXPECT_NE(result.out.find("hotspot"), std::string::npos);
    EXPECT_EQ(result.out.find("bfs-CUDA"), std::string::npos);
    EXPECT_NE(result.out.find("total runs:"), std::string::npos);
    EXPECT_NE(result.out.find("% saved vs fixed-300"),
              std::string::npos);
}

TEST(Cli, SuiteJobsOutputIsIdenticalToSerial)
{
    std::vector<std::string> base = {"suite", "--machine", "machine2",
                                     "--max", "300", "--seed", "4"};
    CliResult serial = run(base);
    std::vector<std::string> parallel_args = base;
    parallel_args.push_back("--jobs");
    parallel_args.push_back("4");
    CliResult parallel = run(parallel_args);
    EXPECT_EQ(parallel.status, 0) << parallel.err;
    // The rendered table (order, values, totals) must not depend on
    // the worker count.
    EXPECT_EQ(parallel.out, serial.out);
}

TEST(Cli, JobsFlagRejectsBadValues)
{
    CliResult result = run({"suite", "--jobs", "0"});
    EXPECT_EQ(result.status, 2);
    EXPECT_NE(result.err.find("--jobs"), std::string::npos);
    CliResult word = run(
        {"run", "--workload", "bfs", "--jobs", "many"});
    EXPECT_EQ(word.status, 2);
}

TEST(Cli, RunFromJsonConfig)
{
    fs::path config = fs::temp_directory_path() / "sharp_cli_cfg.json";
    {
        std::ofstream out(config);
        out << R"({
            "backend": "sim", "workload": "kmeans",
            "machines": ["machine3"], "seed": 5,
            "experiment": {"rule": "fixed",
                           "params": {"count": 40}, "max": 100}
        })";
    }
    CliResult result = run({"run", "--config", config.string()});
    EXPECT_EQ(result.status, 0) << result.err;
    EXPECT_NE(result.out.find("collected 40 samples"),
              std::string::npos);
    EXPECT_NE(result.out.find("kmeans"), std::string::npos);
    fs::remove(config);
}

TEST(Cli, BaselineCompareExitContract)
{
    // End to end through the real CLI: capture a baseline from a sim
    // campaign, self-compare (0), compare a perturbed candidate (1),
    // compare against a malformed bundle (2).
    fs::path dir = fs::temp_directory_path() / "sharp_cli_compare";
    fs::remove_all(dir);
    fs::create_directories(dir);
    auto path = [&dir](const std::string &name) {
        return (dir / name).string();
    };

    CliResult campaign = run({"run", "--workload", "bfs", "--rule",
                              "fixed", "--count", "30", "--seed", "7",
                              "--out", path("runs")});
    ASSERT_EQ(campaign.status, 0) << campaign.err;

    CliResult capture = run({"baseline", "capture", path("runs.csv"),
                             "--out", path("base.json")});
    ASSERT_EQ(capture.status, 0) << capture.err;
    EXPECT_NE(capture.out.find("captured 1 scenario"),
              std::string::npos);

    CliResult self = run({"compare", path("runs.csv"), "--against",
                          path("base.json")});
    EXPECT_EQ(self.status, 0) << self.out << self.err;
    EXPECT_NE(self.out.find("PASS"), std::string::npos);

    // Perturb: scale the execution_time column (last field) by 1.5.
    {
        std::ifstream in(path("runs.csv"));
        std::ofstream out(path("slow.csv"));
        std::string line;
        std::getline(in, line);
        out << line << "\n";
        while (std::getline(in, line)) {
            size_t comma = line.rfind(',');
            double value = std::stod(line.substr(comma + 1));
            out << line.substr(0, comma + 1) << value * 1.5 << "\n";
        }
    }
    CliResult slow = run({"compare", path("slow.csv"), "--against",
                          path("base.json"), "--format", "json",
                          "--out", path("report.json")});
    EXPECT_EQ(slow.status, 1) << slow.out << slow.err;
    EXPECT_NE(slow.out.find("\"pass\": false"), std::string::npos);
    EXPECT_NE(slow.out.find("\"exit_code\": 1"), std::string::npos);
    EXPECT_TRUE(fs::exists(path("report.json")));

    // Malformed bundle (unsorted samples, bad count) → artifact error.
    CliResult bad =
        run({"compare", path("runs.csv"), "--against",
             std::string(SHARP_SOURCE_DIR) +
                 "/tests/fixtures/check/bad_bundle.json"});
    EXPECT_EQ(bad.status, 2) << bad.out;
    EXPECT_NE(bad.err.find("compare:"), std::string::npos);

    fs::remove_all(dir);
}

TEST(Cli, BaselineCompareUsageErrors)
{
    CliResult no_out = run({"baseline", "capture", "whatever.csv"});
    EXPECT_EQ(no_out.status, 2);
    EXPECT_NE(no_out.err.find("--out"), std::string::npos);

    CliResult no_inputs = run({"baseline", "capture", "--out", "b"});
    EXPECT_EQ(no_inputs.status, 2);

    CliResult no_subcommand = run({"baseline"});
    EXPECT_EQ(no_subcommand.status, 2);

    CliResult no_candidate = run({"compare", "--against", "b.json"});
    EXPECT_EQ(no_candidate.status, 2);

    CliResult bad_format =
        run({"compare", "a.csv", "--against", "b.json", "--format",
             "yaml"});
    EXPECT_EQ(bad_format.status, 2);
    EXPECT_NE(bad_format.err.find("format"), std::string::npos);
}

TEST(Cli, UsagePinsRegressionGatingContract)
{
    CliResult help = run({"help"});
    EXPECT_NE(help.out.find("baseline capture"), std::string::npos);
    EXPECT_NE(help.out.find("--against"), std::string::npos);
    EXPECT_NE(help.out.find("exit codes: 0 ok, 1 error (compare "
                            "--against: regression to"),
              std::string::npos);
    EXPECT_NE(help.out.find("2 usage or malformed"),
              std::string::npos);
    EXPECT_NE(help.out.find("0 no regression, 1 investigate"),
              std::string::npos);
}

TEST(Cli, WorkflowReportsBadSpec)
{
    fs::path spec = fs::temp_directory_path() / "sharp_cli_bad.json";
    {
        std::ofstream out(spec);
        out << "{not json";
    }
    CliResult result = run({"workflow", spec.string()});
    EXPECT_EQ(result.status, 1);
    EXPECT_NE(result.err.find("error:"), std::string::npos);
    fs::remove(spec);
}

} // anonymous namespace
