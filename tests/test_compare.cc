/**
 * @file
 * Tests for the regression-gating layer (src/compare): baseline-bundle
 * capture (grouping, exclusion, determinism across jobs and
 * recaptures), the distribution comparator (self-compare, confirmed
 * regressions, improvements, additive slack, missing/unbaselined
 * scenarios), the bundle/report static checkers, the shared tolerance
 * currency in the calibration gate, and a byte-stable golden JSON
 * report.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "calibrate/baseline.hh"
#include "check/diagnostic.hh"
#include "compare/bundle.hh"
#include "compare/compare.hh"
#include "json/parser.hh"
#include "json/writer.hh"
#include "record/journal.hh"

namespace
{

using namespace sharp;
namespace fs = std::filesystem;

/** Fresh scratch directory for one test. */
fs::path
scratchDir(const std::string &name)
{
    fs::path dir = fs::temp_directory_path() / ("sharp_compare_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
fixture(const std::string &name)
{
    return std::string(SHARP_SOURCE_DIR) + "/tests/fixtures/compare/" +
           name;
}

/** One tidy-CSV row per value; warmup/failed rows on request. */
std::string
writeRunsCsv(const fs::path &path, const std::string &workload,
             const std::vector<double> &values, size_t warmupRows = 0,
             size_t failedRows = 0)
{
    std::ofstream out(path);
    out << "run,instance,attempt,workload,backend,machine,day,warmup,"
           "failure,execution_time\n";
    size_t run = 0;
    for (size_t i = 0; i < warmupRows; ++i) {
        out << run++ << ",0,0," << workload
            << ",sim,machine1,0,true,none,99.9\n";
    }
    for (size_t i = 0; i < failedRows; ++i) {
        out << run++ << ",0,0," << workload
            << ",sim,machine1,0,false,crash,77.7\n";
    }
    for (double v : values) {
        out << run++ << ",0,0," << workload
            << ",sim,machine1,0,false,none," << v << "\n";
    }
    return path.string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

const check::Diagnostic *
findRule(const check::CheckResult &result, const std::string &rule)
{
    for (const auto &diagnostic : result.diagnostics()) {
        if (diagnostic.rule == rule)
            return &diagnostic;
    }
    return nullptr;
}

TEST(BaselineCapture, GroupsSortsAndExcludes)
{
    auto dir = scratchDir("capture");
    // Two workloads in one file, deliberately unsorted values, plus
    // warmup and failed rows that must never reach the bundle.
    std::ofstream csv(dir / "runs.csv");
    csv << "run,instance,attempt,workload,backend,machine,day,warmup,"
           "failure,execution_time\n"
        << "0,0,0,zeta,sim,machine1,0,true,none,50.0\n"
        << "1,0,0,zeta,sim,machine1,0,false,none,3.0\n"
        << "2,0,0,alpha,sim,machine1,0,false,none,2.0\n"
        << "3,0,0,zeta,sim,machine1,0,false,crash,9.0\n"
        << "4,0,0,zeta,sim,machine1,0,false,none,1.0\n"
        << "5,0,0,alpha,sim,machine1,0,false,none,4.0\n";
    csv.close();

    auto bundle = compare::captureBaseline({(dir / "runs.csv").string()});
    EXPECT_EQ(bundle.metric, "execution_time");
    EXPECT_EQ(bundle.excludedWarmup, 1u);
    EXPECT_EQ(bundle.excludedFailures, 1u);
    ASSERT_EQ(bundle.scenarios.size(), 2u);
    // Scenarios sorted by name, samples sorted ascending.
    EXPECT_EQ(bundle.scenarios[0].name, "alpha");
    EXPECT_EQ(bundle.scenarios[0].sorted, (std::vector<double>{2.0, 4.0}));
    EXPECT_EQ(bundle.scenarios[1].name, "zeta");
    EXPECT_EQ(bundle.scenarios[1].sorted, (std::vector<double>{1.0, 3.0}));
    EXPECT_EQ(bundle.scenarios[1].summary.n, 2u);

    const compare::ScenarioSamples *found = bundle.find("zeta");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name, "zeta");
    EXPECT_EQ(bundle.find("nope"), nullptr);
}

TEST(BaselineCapture, MissingMetricColumnAndEmptyInputsThrow)
{
    auto dir = scratchDir("capture_errors");
    std::ofstream csv(dir / "no_metric.csv");
    csv << "run,workload\n0,bfs\n";
    csv.close();
    EXPECT_THROW(
        compare::captureBaseline({(dir / "no_metric.csv").string()}),
        std::runtime_error);
    EXPECT_THROW(compare::captureBaseline({}), std::invalid_argument);

    // All rows excluded: nothing usable.
    auto all_warmup =
        writeRunsCsv(dir / "warmup.csv", "bfs", {}, /*warmupRows=*/3);
    EXPECT_THROW(compare::captureBaseline({all_warmup}),
                 std::invalid_argument);
}

TEST(BaselineCapture, ReadsJournalInputs)
{
    auto dir = scratchDir("capture_journal");
    std::string path = (dir / "campaign.jsonl").string();
    {
        record::RunJournal journal(path);
        json::Value spec = json::Value::makeObject();
        spec.set("workload", "bfs");
        journal.writeSpec(spec);
        for (size_t round = 0; round < 4; ++round) {
            record::RunRecord rec;
            rec.run = round;
            rec.workload = "bfs";
            rec.warmup = round == 0;
            rec.metrics["execution_time"] = 5.0 + round;
            journal.appendRound({rec});
        }
        journal.markDone();
    }
    auto bundle = compare::captureBaseline({path});
    EXPECT_EQ(bundle.excludedWarmup, 1u);
    ASSERT_EQ(bundle.scenarios.size(), 1u);
    EXPECT_EQ(bundle.scenarios[0].name, "bfs");
    EXPECT_EQ(bundle.scenarios[0].sorted,
              (std::vector<double>{6.0, 7.0, 8.0}));
}

TEST(BaselineCapture, BundleIsByteIdenticalForAnyJobsAndAcrossRecapture)
{
    auto dir = scratchDir("capture_determinism");
    std::vector<std::string> inputs;
    for (int f = 0; f < 4; ++f) {
        std::vector<double> values;
        for (int i = 0; i < 25; ++i)
            values.push_back(10.0 + f + i * 0.013);
        inputs.push_back(writeRunsCsv(dir / ("f" + std::to_string(f) +
                                             ".csv"),
                                      f % 2 ? "lud" : "bfs", values));
    }

    compare::CaptureOptions serial;
    serial.jobs = 1;
    compare::CaptureOptions wide;
    wide.jobs = 8;
    auto a = compare::saveBundle(compare::captureBaseline(inputs, serial),
                                 (dir / "a.json").string());
    auto b = compare::saveBundle(compare::captureBaseline(inputs, wide),
                                 (dir / "b.json").string());
    EXPECT_EQ(slurp(a), slurp(b));

    // Recapture (the kill-then-recapture scenario: nothing carried
    // over from the first run) must reproduce the same bytes, and a
    // load-save round trip must too — nothing time- or host-dependent
    // may leak into the bundle.
    auto c = compare::saveBundle(compare::captureBaseline(inputs, wide),
                                 (dir / "c.json").string());
    EXPECT_EQ(slurp(a), slurp(c));
    auto loaded = compare::loadBundle(a);
    auto d = compare::saveBundle(loaded, (dir / "d.json").string());
    EXPECT_EQ(slurp(a), slurp(d));

    // Directory form resolves to <dir>/baseline.json.
    auto e = compare::saveBundle(loaded, (dir / "bundle_dir").string());
    EXPECT_EQ(e, (dir / "bundle_dir" / "baseline.json").string());
    EXPECT_EQ(slurp(a), slurp(e));
}

/** Capture one scenario's worth of values as a bundle. */
compare::BaselineBundle
bundleOf(const fs::path &dir, const std::string &tag,
         const std::vector<double> &values,
         const std::string &workload = "bfs")
{
    auto path = writeRunsCsv(dir / (tag + ".csv"), workload, values);
    return compare::captureBaseline({path});
}

std::vector<double>
jittered(double center, double spread, size_t n)
{
    std::vector<double> values;
    for (size_t i = 0; i < n; ++i) {
        double phase = static_cast<double>(i % 7) / 7.0 - 0.5;
        values.push_back(center + spread * phase);
    }
    return values;
}

TEST(Compare, SelfCompareAlwaysPasses)
{
    auto dir = scratchDir("self");
    auto base = bundleOf(dir, "base", jittered(10.0, 1.4, 30));
    auto report = compare::compareBundles(base, base);
    EXPECT_TRUE(report.pass());
    EXPECT_EQ(report.exitCode(), 0);
    ASSERT_EQ(report.scenarios.size(), 1u);
    EXPECT_EQ(report.scenarios[0].ksDistance, 0.0);
    EXPECT_EQ(report.scenarios[0].speedup.speedup, 1.0);
    EXPECT_TRUE(report.missing.empty());
    EXPECT_TRUE(report.unbaselined.empty());
}

TEST(Compare, ConfirmedRegressionFailsAndImprovementPasses)
{
    auto dir = scratchDir("directions");
    auto values = jittered(10.0, 0.8, 40);
    auto base = bundleOf(dir, "base", values);

    std::vector<double> slower, faster;
    for (double v : values) {
        slower.push_back(v * 1.10);
        faster.push_back(v * 0.60);
    }
    auto regressed =
        compare::compareBundles(base, bundleOf(dir, "slow", slower));
    EXPECT_FALSE(regressed.pass());
    EXPECT_EQ(regressed.exitCode(), 1);
    ASSERT_FALSE(regressed.scenarios[0].violations.empty());
    EXPECT_EQ(regressed.scenarios[0].violations[0].what, "median");
    // Confirmed means the whole bootstrap interval lies below 1.
    EXPECT_LT(regressed.scenarios[0].speedup.ci.upper, 1.0);

    // A large improvement shifts the distribution massively (KS near
    // 1) yet must pass: improvements are never violations.
    auto improved =
        compare::compareBundles(base, bundleOf(dir, "fast", faster));
    EXPECT_TRUE(improved.pass()) << improved.renderText();
    EXPECT_GT(improved.scenarios[0].ksDistance, 0.9);
}

TEST(Compare, UnconfirmedMedianShiftDoesNotFail)
{
    // Median nudged past the ratio tolerance, but with so much overlap
    // (wide spread, small n) that the bootstrap CI straddles 1: the
    // Speedup-Test discipline reports it without failing the gate.
    auto dir = scratchDir("unconfirmed");
    auto base = bundleOf(dir, "base", jittered(10.0, 8.0, 8));
    std::vector<double> nudged;
    for (double v : jittered(10.0, 8.0, 8))
        nudged.push_back(v * 1.08);
    auto report =
        compare::compareBundles(base, bundleOf(dir, "nudged", nudged));
    for (const auto &violation : report.scenarios[0].violations)
        EXPECT_NE(violation.what, "median") << violation.render();
}

TEST(Compare, TinyBaselineAdditiveSlack)
{
    // base 5x10.0 vs cand 5x11.0: constant samples make the bootstrap
    // CI degenerate at 10/11, so the +10% shift is always confirmed —
    // unless the additive slack absorbs it.
    auto dir = scratchDir("slack");
    auto base = bundleOf(dir, "base", {10.0, 10.0, 10.0, 10.0, 10.0});
    auto cand = bundleOf(dir, "cand", {11.0, 11.0, 11.0, 11.0, 11.0});

    compare::CompareTolerances strict;
    strict.medianSlack = 0.0;
    auto confirmed = compare::compareBundles(base, cand, strict);
    EXPECT_FALSE(confirmed.pass());
    ASSERT_FALSE(confirmed.scenarios[0].violations.empty());
    EXPECT_EQ(confirmed.scenarios[0].violations[0].what, "median");
    // limit = 10 * 1.05 + 0 = 10.5, breached by 11.
    EXPECT_EQ(confirmed.scenarios[0].violations[0].limit, 10.5);

    compare::CompareTolerances slack = strict;
    slack.medianSlack = 1.0;
    EXPECT_TRUE(compare::compareBundles(base, cand, slack).pass());
}

TEST(Compare, MissingScenarioFailsUnbaselinedDoesNot)
{
    auto dir = scratchDir("coverage");
    auto both = compare::captureBaseline(
        {writeRunsCsv(dir / "bfs.csv", "bfs", jittered(5.0, 0.4, 12)),
         writeRunsCsv(dir / "lud.csv", "lud", jittered(9.0, 0.4, 12))});
    auto lud_only = compare::captureBaseline(
        {writeRunsCsv(dir / "lud2.csv", "lud", jittered(9.0, 0.4, 12)),
         writeRunsCsv(dir / "nw.csv", "nw", jittered(2.0, 0.2, 12))});

    auto report = compare::compareBundles(both, lud_only);
    EXPECT_FALSE(report.pass());
    EXPECT_EQ(report.exitCode(), 1);
    ASSERT_EQ(report.missing.size(), 1u);
    EXPECT_EQ(report.missing[0], "bfs");
    ASSERT_EQ(report.unbaselined.size(), 1u);
    EXPECT_EQ(report.unbaselined[0], "nw");

    // The reverse direction: only new scenarios, nothing missing.
    auto reverse = compare::compareBundles(lud_only, both);
    ASSERT_EQ(reverse.missing.size(), 1u);
    EXPECT_EQ(reverse.missing[0], "nw");
    ASSERT_EQ(reverse.unbaselined.size(), 1u);
    EXPECT_EQ(reverse.unbaselined[0], "bfs");
}

TEST(Compare, MetricMismatchThrows)
{
    auto dir = scratchDir("metric");
    auto base = bundleOf(dir, "base", {1.0, 2.0, 3.0});
    auto cand = base;
    cand.metric = "throughput";
    EXPECT_THROW(compare::compareBundles(base, cand),
                 std::invalid_argument);
}

TEST(Compare, GoldenJsonReportIsByteStable)
{
    // The checked-in golden was produced by `sharp baseline capture` +
    // `sharp compare --format json` on the fixture CSVs. Reproducing
    // it byte for byte pins capture, comparison (incl. the seeded
    // bootstrap), and JSON rendering all at once.
    auto baseline =
        compare::captureBaseline({fixture("baseline_runs.csv")});
    auto candidate =
        compare::captureBaseline({fixture("candidate_runs.csv")});
    // Provenance records input paths as given; the golden was captured
    // from inside the fixture directory, so align before comparing.
    baseline.inputs = {"baseline_runs.csv"};
    auto report = compare::compareBundles(baseline, candidate);
    EXPECT_FALSE(report.pass());
    EXPECT_EQ(json::writePretty(report.toJson()),
              slurp(fixture("golden_report.json")));

    // The bundle itself is pinned the same way.
    EXPECT_EQ(json::writePretty(baseline.toJson()),
              slurp(fixture("golden_bundle.json")));
}

TEST(BundleCheck, CatchesStructuralDefects)
{
    auto check_text = [](const std::string &text) {
        check::CheckResult result;
        compare::checkBaselineBundle(json::parse(text), result);
        return result;
    };

    auto unsorted = check_text(
        R"({"schema": "sharp-baseline-bundle-v1", "metric": "m",
            "scenarios": {"s": {"n": 2, "samples": [2.0, 1.0]}}})");
    EXPECT_NE(findRule(unsorted, "unsorted-samples"), nullptr);

    auto bad_count = check_text(
        R"({"schema": "sharp-baseline-bundle-v1", "metric": "m",
            "scenarios": {"s": {"n": 5, "samples": [1.0, 2.0]}}})");
    EXPECT_NE(findRule(bad_count, "inconsistent-count"), nullptr);

    auto empty = check_text(
        R"({"schema": "sharp-baseline-bundle-v1", "metric": "m",
            "scenarios": {}})");
    EXPECT_NE(findRule(empty, "empty-scenarios"), nullptr);

    auto wrong_schema = check_text(R"({"schema": "not-a-bundle"})");
    EXPECT_NE(findRule(wrong_schema, "schema"), nullptr);

    // fromJson is the strict loader built on the checker.
    EXPECT_THROW(compare::BaselineBundle::fromJson(
                     json::parse(R"({"schema": "nope"})")),
                 check::CheckFailure);
}

TEST(ReportCheck, CatchesContractViolations)
{
    auto check_text = [](const std::string &text) {
        check::CheckResult result;
        compare::checkCompareReport(json::parse(text), result);
        return result;
    };

    auto inconsistent = check_text(
        R"({"schema": "sharp-compare-report-v1", "metric": "m",
            "pass": true, "exit_code": 1, "scenarios": {}})");
    EXPECT_NE(findRule(inconsistent, "exit-code"), nullptr);

    auto bad_ks = check_text(
        R"({"schema": "sharp-compare-report-v1", "metric": "m",
            "pass": true, "exit_code": 0,
            "scenarios": {"s": {"ks_distance": 1.5}}})");
    EXPECT_NE(findRule(bad_ks, "ks-range"), nullptr);

    auto bad_ci = check_text(
        R"({"schema": "sharp-compare-report-v1", "metric": "m",
            "pass": true, "exit_code": 0,
            "scenarios": {"s": {"speedup":
                {"speedup": 1.0, "ci_lower": 1.2, "ci_upper": 0.9}}}})");
    EXPECT_NE(findRule(bad_ci, "ci-order"), nullptr);
}

TEST(CalibrationGate, CurrentOnlyCellsAreReportedNotGated)
{
    // The symmetric-cell fix: entries only the current summary has
    // must surface in the report without failing the gate (new rules
    // or distributions cannot break an old baseline), while a vanished
    // entry still fails.
    auto baseline = json::parse(
        R"({"rules": {"ks": {"lognormal":
            {"median_samples": 100, "median_ks": 0.05}}}})");
    auto current = json::parse(
        R"({"rules": {"ks": {"lognormal":
                {"median_samples": 100, "median_ks": 0.05}},
            "shiny-new": {"lognormal":
                {"median_samples": 40, "median_ks": 0.02}}}})");

    auto report = calibrate::compareToBaseline(baseline, current);
    EXPECT_TRUE(report.pass);
    ASSERT_EQ(report.unbaselined.size(), 1u);
    EXPECT_EQ(report.unbaselined[0], "shiny-new/lognormal");
    EXPECT_NE(report.render().find("shiny-new/lognormal"),
              std::string::npos);

    // The asymmetric direction is unchanged: a baseline cell missing
    // from current is a violation.
    auto shrunk = calibrate::compareToBaseline(current, baseline);
    EXPECT_FALSE(shrunk.pass);
    ASSERT_EQ(shrunk.violations.size(), 1u);
    EXPECT_EQ(shrunk.violations[0].what, "missing entry");
    EXPECT_TRUE(shrunk.unbaselined.empty());
}

} // anonymous namespace
