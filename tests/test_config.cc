/**
 * @file
 * Tests for the JSON experiment configuration and its round trip —
 * the property that lets SHARP recreate a previous experiment from
 * its recorded metadata.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/stopping/ks_rule.hh"
#include "json/parser.hh"
#include "json/writer.hh"

namespace
{

using namespace sharp::core;
namespace json = sharp::json;

TEST(ExperimentConfig, ParsesFullDocument)
{
    auto doc = json::parse(R"({
        "rule": "ks",
        "params": {"threshold": 0.1, "min": 20},
        "warmup": 3,
        "min": 20,
        "max": 1000,
        "checkInterval": 2,
        "seed": 42
    })");
    ExperimentConfig config = ExperimentConfig::fromJson(doc);
    EXPECT_EQ(config.ruleName, "ks");
    EXPECT_DOUBLE_EQ(config.ruleParams.at("threshold"), 0.1);
    EXPECT_EQ(config.options.warmupRuns, 3u);
    EXPECT_EQ(config.options.minSamples, 20u);
    EXPECT_EQ(config.options.maxSamples, 1000u);
    EXPECT_EQ(config.options.checkInterval, 2u);
    EXPECT_EQ(config.seed, 42u);
}

TEST(ExperimentConfig, DefaultsApply)
{
    ExperimentConfig config =
        ExperimentConfig::fromJson(json::parse("{}"));
    EXPECT_EQ(config.ruleName, "ks");
    EXPECT_EQ(config.options.warmupRuns, 0u);
    EXPECT_EQ(config.seed, 1u);
}

TEST(ExperimentConfig, MakeRuleHonorsParams)
{
    auto doc = json::parse(
        R"({"rule": "ks", "params": {"threshold": 0.3}})");
    ExperimentConfig config = ExperimentConfig::fromJson(doc);
    auto rule = config.makeRule();
    auto *ks = dynamic_cast<KsHalvesRule *>(rule.get());
    ASSERT_NE(ks, nullptr);
    EXPECT_DOUBLE_EQ(ks->ksThreshold(), 0.3);
}

TEST(ExperimentConfig, JsonRoundTrip)
{
    auto doc = json::parse(R"({
        "rule": "ci",
        "params": {"threshold": 0.05},
        "warmup": 2, "min": 10, "max": 500, "checkInterval": 1,
        "seed": 7
    })");
    ExperimentConfig original = ExperimentConfig::fromJson(doc);
    ExperimentConfig reparsed =
        ExperimentConfig::fromJson(original.toJson());
    EXPECT_EQ(reparsed.ruleName, original.ruleName);
    EXPECT_EQ(reparsed.ruleParams, original.ruleParams);
    EXPECT_EQ(reparsed.options.warmupRuns, original.options.warmupRuns);
    EXPECT_EQ(reparsed.options.maxSamples, original.options.maxSamples);
    EXPECT_EQ(reparsed.seed, original.seed);
}

TEST(ExperimentConfig, RejectsUnknownRule)
{
    auto doc = json::parse(R"({"rule": "definitely-not-a-rule"})");
    EXPECT_THROW(ExperimentConfig::fromJson(doc), std::invalid_argument);
}

TEST(ExperimentConfig, RejectsBadBounds)
{
    EXPECT_THROW(ExperimentConfig::fromJson(
                     json::parse(R"({"min": 100, "max": 10})")),
                 std::invalid_argument);
    EXPECT_THROW(ExperimentConfig::fromJson(
                     json::parse(R"({"warmup": -1})")),
                 std::invalid_argument);
    EXPECT_THROW(ExperimentConfig::fromJson(
                     json::parse(R"({"checkInterval": 0})")),
                 std::invalid_argument);
}

TEST(ExperimentConfig, RejectsNonNumericParams)
{
    auto doc =
        json::parse(R"({"rule": "ks", "params": {"threshold": "x"}})");
    EXPECT_THROW(ExperimentConfig::fromJson(doc), std::invalid_argument);
}

TEST(ExperimentConfig, RejectsNonObjectDocument)
{
    EXPECT_THROW(ExperimentConfig::fromJson(json::parse("[1,2]")),
                 std::invalid_argument);
}

TEST(ExperimentConfig, BadRuleParamsSurfaceAtParseTime)
{
    auto doc = json::parse(
        R"({"rule": "ks", "params": {"threshold": -0.5}})");
    EXPECT_THROW(ExperimentConfig::fromJson(doc), std::invalid_argument);
}

} // anonymous namespace
