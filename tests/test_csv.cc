/**
 * @file
 * Tests for the tidy CSV reader/writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "record/csv.hh"

namespace
{

using namespace sharp::record;

TEST(CsvQuote, OnlyWhenNeeded)
{
    EXPECT_EQ(csvQuote("plain"), "plain");
    EXPECT_EQ(csvQuote("with,comma"), "\"with,comma\"");
    EXPECT_EQ(csvQuote("with\"quote"), "\"with\"\"quote\"");
    EXPECT_EQ(csvQuote("line\nbreak"), "\"line\nbreak\"");
    EXPECT_EQ(csvQuote(""), "");
}

TEST(CsvTable, BuildAndAccess)
{
    CsvTable table({"run", "time"});
    table.addRow({"0", "1.5"});
    table.addRow({"1", "2.5"});
    EXPECT_EQ(table.numRows(), 2u);
    EXPECT_EQ(table.cell(1, 1), "2.5");
    EXPECT_EQ(table.columnIndex("time").value(), 1u);
    EXPECT_FALSE(table.columnIndex("nope").has_value());
}

TEST(CsvTable, RejectsRaggedRows)
{
    CsvTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), std::invalid_argument);
}

TEST(CsvTable, NumericColumnSkipsNonNumbers)
{
    CsvTable table({"v"});
    table.addRow({"1.5"});
    table.addRow({"oops"});
    table.addRow({"2.5"});
    table.addRow({""});
    auto values = table.numericColumn("v");
    ASSERT_EQ(values.size(), 2u);
    EXPECT_DOUBLE_EQ(values[0], 1.5);
    EXPECT_DOUBLE_EQ(values[1], 2.5);
    EXPECT_THROW(table.numericColumn("w"), std::out_of_range);
}

TEST(CsvTable, FilteredNumericColumn)
{
    CsvTable table({"bench", "time"});
    table.addRow({"bfs", "1.0"});
    table.addRow({"lud", "9.0"});
    table.addRow({"bfs", "2.0"});
    auto bfs = table.numericColumnWhere("time", "bench", "bfs");
    ASSERT_EQ(bfs.size(), 2u);
    EXPECT_DOUBLE_EQ(bfs[1], 2.0);
}

TEST(CsvTable, DistinctPreservesFirstAppearance)
{
    CsvTable table({"m"});
    table.addRow({"machine3"});
    table.addRow({"machine1"});
    table.addRow({"machine3"});
    auto distinct = table.distinct("m");
    ASSERT_EQ(distinct.size(), 2u);
    EXPECT_EQ(distinct[0], "machine3");
    EXPECT_EQ(distinct[1], "machine1");
}

TEST(CsvParse, SimpleDocument)
{
    CsvTable table = CsvTable::parse("a,b\n1,2\n3,4\n");
    EXPECT_EQ(table.columns().size(), 2u);
    EXPECT_EQ(table.numRows(), 2u);
    EXPECT_EQ(table.cell(0, 0), "1");
    EXPECT_EQ(table.cell(1, 1), "4");
}

TEST(CsvParse, QuotedFieldsWithSeparatorsAndQuotes)
{
    CsvTable table = CsvTable::parse(
        "name,note\n\"bfs, cuda\",\"said \"\"fast\"\"\"\n");
    EXPECT_EQ(table.cell(0, 0), "bfs, cuda");
    EXPECT_EQ(table.cell(0, 1), "said \"fast\"");
}

TEST(CsvParse, EmbeddedNewlinesInQuotes)
{
    CsvTable table = CsvTable::parse("a,b\n\"line1\nline2\",x\n");
    EXPECT_EQ(table.cell(0, 0), "line1\nline2");
}

TEST(CsvParse, CrLfLineEndings)
{
    CsvTable table = CsvTable::parse("a,b\r\n1,2\r\n");
    EXPECT_EQ(table.numRows(), 1u);
    EXPECT_EQ(table.cell(0, 1), "2");
}

TEST(CsvParse, MissingTrailingNewline)
{
    CsvTable table = CsvTable::parse("a\n1");
    EXPECT_EQ(table.numRows(), 1u);
}

TEST(CsvParse, EmptyFieldsPreserved)
{
    CsvTable table = CsvTable::parse("a,b,c\n,,\n");
    EXPECT_EQ(table.numRows(), 1u);
    EXPECT_EQ(table.cell(0, 0), "");
    EXPECT_EQ(table.cell(0, 2), "");
}

TEST(CsvParse, RejectsMalformedInput)
{
    EXPECT_THROW(CsvTable::parse(""), std::runtime_error);
    EXPECT_THROW(CsvTable::parse("a,b\n\"open\n"), std::runtime_error);
    EXPECT_THROW(CsvTable::parse("a,b\n1\n"), std::runtime_error);
}

TEST(CsvRoundTrip, ComplexContentSurvives)
{
    CsvTable table({"k", "v"});
    table.addRow({"comma", "a,b"});
    table.addRow({"quote", "say \"hi\""});
    table.addRow({"newline", "x\ny"});
    table.addRow({"plain", "simple"});
    CsvTable again = CsvTable::parse(table.toCsv());
    ASSERT_EQ(again.numRows(), table.numRows());
    for (size_t r = 0; r < table.numRows(); ++r) {
        for (size_t c = 0; c < 2; ++c)
            EXPECT_EQ(again.cell(r, c), table.cell(r, c));
    }
}

TEST(CsvFiles, SaveAndLoad)
{
    namespace fs = std::filesystem;
    fs::path path = fs::temp_directory_path() / "sharp_test_csv.csv";
    CsvTable table({"x"});
    table.addRow({"1"});
    table.save(path.string());
    CsvTable loaded = CsvTable::load(path.string());
    EXPECT_EQ(loaded.cell(0, 0), "1");
    fs::remove(path);
    EXPECT_THROW(CsvTable::load("/no/such/dir/file.csv"),
                 std::runtime_error);
}

} // anonymous namespace
