/**
 * @file
 * Tests for descriptive statistics against hand-computed and
 * R-verified values.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hh"

namespace
{

using namespace sharp::stats;

const std::vector<double> simple = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                    9.0};

TEST(Mean, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(mean(simple), 5.0);
    EXPECT_DOUBLE_EQ(mean({3.0}), 3.0);
}

TEST(Mean, ThrowsOnEmpty)
{
    EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Variance, SampleDenominator)
{
    // Population variance of `simple` is 4; sample variance 32/7.
    EXPECT_NEAR(variance(simple), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(variance({5.0}), 0.0);
    EXPECT_NEAR(stddev(simple), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(GeometricMean, KnownValue)
{
    EXPECT_NEAR(geometricMean({1.0, 4.0, 16.0}), 4.0, 1e-12);
    EXPECT_THROW(geometricMean({1.0, -2.0}), std::invalid_argument);
}

TEST(HarmonicMean, KnownValue)
{
    EXPECT_NEAR(harmonicMean({1.0, 2.0, 4.0}), 3.0 / 1.75, 1e-12);
    EXPECT_THROW(harmonicMean({1.0, 0.0}), std::invalid_argument);
}

TEST(Quantile, Type7Interpolation)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    // R: quantile(1:4, .25, type=7) = 1.75
    EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
}

TEST(Quantile, UnsortedInputHandled)
{
    EXPECT_DOUBLE_EQ(quantile({9.0, 1.0, 5.0}, 0.5), 5.0);
}

TEST(Quantile, RejectsBadP)
{
    EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
    EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(Quantile, MonotoneInP)
{
    std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
    double prev = quantile(xs, 0.0);
    for (double p = 0.05; p <= 1.0; p += 0.05) {
        double q = quantile(xs, p);
        EXPECT_GE(q, prev);
        prev = q;
    }
}

TEST(Median, EvenAndOdd)
{
    EXPECT_DOUBLE_EQ(median({1.0, 3.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 10.0}), 2.5);
}

TEST(Iqr, KnownValue)
{
    EXPECT_DOUBLE_EQ(iqr({1.0, 2.0, 3.0, 4.0}), 1.5);
}

TEST(MedianAbsoluteDeviation, RobustToOutlier)
{
    EXPECT_DOUBLE_EQ(medianAbsoluteDeviation({1.0, 2.0, 3.0}), 1.0);
    // A wild outlier barely moves the MAD.
    EXPECT_DOUBLE_EQ(
        medianAbsoluteDeviation({1.0, 2.0, 3.0, 4.0, 1000.0}), 1.0);
}

TEST(TrimmedMean, DiscardsTails)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 100.0};
    EXPECT_DOUBLE_EQ(trimmedMean(xs, 0.2), 3.0);
    EXPECT_DOUBLE_EQ(trimmedMean(xs, 0.0), 22.0);
    EXPECT_THROW(trimmedMean(xs, 0.5), std::invalid_argument);
}

TEST(Skewness, SignMatchesShape)
{
    // Right-skewed sample.
    EXPECT_GT(skewness({1.0, 1.0, 1.0, 2.0, 10.0}), 0.5);
    // Symmetric sample.
    EXPECT_NEAR(skewness({1.0, 2.0, 3.0, 4.0, 5.0}), 0.0, 1e-12);
    // Fewer than 3 points: defined as 0.
    EXPECT_DOUBLE_EQ(skewness({1.0, 2.0}), 0.0);
}

TEST(ExcessKurtosis, FlatVsPeaked)
{
    // Uniform-ish grid has negative excess kurtosis.
    std::vector<double> flat;
    for (int i = 0; i < 100; ++i)
        flat.push_back(static_cast<double>(i));
    EXPECT_LT(excessKurtosis(flat), -1.0);
    // Heavy concentration + outliers yields positive excess kurtosis.
    std::vector<double> peaked(100, 0.0);
    peaked[0] = 30.0;
    peaked[99] = -30.0;
    EXPECT_GT(excessKurtosis(peaked), 10.0);
}

TEST(CoefficientOfVariation, ScaleFree)
{
    std::vector<double> xs = {9.0, 10.0, 11.0};
    std::vector<double> ys = {90.0, 100.0, 110.0};
    EXPECT_NEAR(coefficientOfVariation(xs), coefficientOfVariation(ys),
                1e-12);
    EXPECT_DOUBLE_EQ(coefficientOfVariation({0.0, 0.0}), 0.0);
}

TEST(StandardError, ShrinksWithN)
{
    std::vector<double> small = {1.0, 2.0, 3.0, 4.0};
    std::vector<double> large;
    for (int rep = 0; rep < 25; ++rep)
        for (double v : small)
            large.push_back(v);
    EXPECT_GT(standardError(small), standardError(large));
}

TEST(SummaryCompute, AllFieldsConsistent)
{
    Summary s = Summary::compute(simple);
    EXPECT_EQ(s.n, simple.size());
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
    EXPECT_DOUBLE_EQ(s.median, 4.5);
    EXPECT_LE(s.q1, s.median);
    EXPECT_LE(s.median, s.q3);
    EXPECT_LE(s.p95, s.p99);
    EXPECT_LE(s.p99, s.max);
    EXPECT_GT(s.stddev, 0.0);
}

TEST(SummaryCompute, ToStringMentionsKeyNumbers)
{
    Summary s = Summary::compute(simple);
    std::string text = s.toString();
    EXPECT_NE(text.find("n=8"), std::string::npos);
    EXPECT_NE(text.find("mean=5"), std::string::npos);
}

TEST(SummaryCompute, ThrowsOnEmpty)
{
    EXPECT_THROW(Summary::compute({}), std::invalid_argument);
}

TEST(SortedOverloads, AgreeWithUnsortedBitForBit)
{
    // The Sorted variants exist so callers holding a maintained sorted
    // view (the incremental statistics engine) can skip the copy+sort;
    // they must produce the exact same bits as the by-value forms.
    std::vector<double> xs = {7.25, -1.5, 3.0, 3.0, 9.75, 0.125,
                              3.0,  -1.5, 6.5, 2.0, 11.0, 4.5};
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());

    for (double p : {0.0, 0.1, 0.25, 0.5, 0.9, 1.0})
        EXPECT_EQ(quantileSorted(sorted, p), quantile(xs, p)) << p;
    EXPECT_EQ(iqrSorted(sorted), iqr(xs));
    EXPECT_EQ(medianAbsoluteDeviationSorted(sorted),
              medianAbsoluteDeviation(xs));

    Summary plain = Summary::compute(xs);
    Summary presorted = Summary::compute(xs, sorted);
    EXPECT_EQ(presorted.median, plain.median);
    EXPECT_EQ(presorted.q1, plain.q1);
    EXPECT_EQ(presorted.q3, plain.q3);
    EXPECT_EQ(presorted.p95, plain.p95);
    EXPECT_EQ(presorted.p99, plain.p99);
    EXPECT_EQ(presorted.min, plain.min);
    EXPECT_EQ(presorted.max, plain.max);
    EXPECT_EQ(presorted.mean, plain.mean);
    EXPECT_EQ(presorted.stddev, plain.stddev);
}

} // anonymous namespace
