/**
 * @file
 * Tests for the drift report — the library form of the Fig. 5 study.
 */

#include <gtest/gtest.h>

#include "report/drift.hh"
#include "rng/sampler.hh"
#include "sim/machine.hh"
#include "sim/rodinia.hh"
#include "sim/workload.hh"

namespace
{

using namespace sharp;
using report::DriftReport;

std::vector<std::vector<double>>
hotspotDays(int days, size_t runs = 800)
{
    std::vector<std::vector<double>> out;
    for (int day = 0; day < days; ++day) {
        sim::SimulatedWorkload w(sim::rodiniaByName("hotspot"),
                                 sim::machineById("machine2"), day, 8);
        out.push_back(w.sampleMany(runs));
    }
    return out;
}

std::vector<std::string>
dayLabels(int days)
{
    std::vector<std::string> labels;
    for (int d = 1; d <= days; ++d)
        labels.push_back("day" + std::to_string(d));
    return labels;
}

TEST(DriftReport, MatricesAreSymmetricWithZeroDiagonal)
{
    auto report = DriftReport::analyze(dayLabels(4), hotspotDays(4));
    const auto &ks = report.ksMatrix();
    const auto &namd = report.namdMatrix();
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(ks[i][i], 0.0);
        EXPECT_DOUBLE_EQ(namd[i][i], 0.0);
        for (size_t j = 0; j < 4; ++j) {
            EXPECT_DOUBLE_EQ(ks[i][j], ks[j][i]);
            EXPECT_DOUBLE_EQ(namd[i][j], namd[j][i]);
        }
    }
}

TEST(DriftReport, PairCountsAreConsistent)
{
    auto report = DriftReport::analyze(dayLabels(5), hotspotDays(5));
    EXPECT_EQ(report.totalPairs(), 10u);
    EXPECT_LE(report.dissimilarPairs(), report.totalPairs());
    EXPECT_LE(report.blindPairs(), report.dissimilarPairs());
    // A permissive threshold marks everything dissimilar; a 1.0
    // threshold nothing.
    EXPECT_EQ(report.dissimilarPairs(0.0), report.totalPairs());
    EXPECT_EQ(report.dissimilarPairs(1.0), 0u);
}

TEST(DriftReport, HotspotDaysShowTheFig5Effect)
{
    auto report = DriftReport::analyze(dayLabels(5), hotspotDays(5));
    // Day drift makes many pairs dissimilar by shape while means stay
    // comparable: blind pairs exist.
    EXPECT_GE(report.dissimilarPairs(), report.totalPairs() / 2);
    EXPECT_GE(report.blindPairs(), 1u);

    auto [i, j] = report.mostShapeDivergentPair();
    EXPECT_LT(i, j);
    EXPECT_GT(report.ksMatrix()[i][j], report.namdMatrix()[i][j]);
}

TEST(DriftReport, IdenticalSessionsReadSimilar)
{
    rng::Xoshiro256 gen(1);
    rng::NormalSampler sampler(10.0, 0.5);
    std::vector<std::vector<double>> sessions;
    for (int s = 0; s < 3; ++s)
        sessions.push_back(sampler.sampleMany(gen, 600));
    auto report =
        DriftReport::analyze({"a", "b", "c"}, sessions);
    EXPECT_EQ(report.dissimilarPairs(), 0u);
    EXPECT_EQ(report.blindPairs(), 0u);
}

TEST(DriftReport, PreferesDifferingModeCountsForHighlight)
{
    rng::Xoshiro256 gen(2);
    rng::NormalSampler unimodal(10.0, 0.3);
    std::vector<rng::MixtureSampler::Component> comps;
    comps.push_back({0.5, std::make_shared<rng::NormalSampler>(9.0,
                                                               0.3)});
    comps.push_back({0.5, std::make_shared<rng::NormalSampler>(11.0,
                                                               0.3)});
    rng::MixtureSampler bimodal(std::move(comps));

    std::vector<std::vector<double>> sessions = {
        unimodal.sampleMany(gen, 800),  // 1 mode
        unimodal.sampleMany(gen, 800),  // 1 mode
        bimodal.sampleMany(gen, 800),   // 2 modes
    };
    auto report = DriftReport::analyze({"s1", "s2", "s3"}, sessions);
    auto [i, j] = report.mostShapeDivergentPair();
    // The highlighted pair must involve the bimodal session.
    EXPECT_EQ(j, 2u);
    EXPECT_NE(report.modeCounts()[i], report.modeCounts()[j]);
}

TEST(DriftReport, RenderMentionsKeyFindings)
{
    auto report = DriftReport::analyze(dayLabels(3), hotspotDays(3));
    std::string md = report.renderMarkdown();
    EXPECT_NE(md.find("Drift analysis"), std::string::npos);
    EXPECT_NE(md.find("dissimilar pairs"), std::string::npos);
    EXPECT_NE(md.find("most shape-divergent pair"), std::string::npos);
    EXPECT_NE(md.find("day1"), std::string::npos);
}

TEST(DriftReport, RejectsBadInput)
{
    EXPECT_THROW(DriftReport::analyze({"a"}, {{1.0, 2.0}}),
                 std::invalid_argument);
    EXPECT_THROW(DriftReport::analyze({"a", "b"}, {{1.0, 2.0}}),
                 std::invalid_argument);
    EXPECT_THROW(
        DriftReport::analyze({"a", "b"}, {{1.0, 2.0}, {1.0}}),
        std::invalid_argument);
}

} // anonymous namespace
