/**
 * @file
 * Tests for the duet benchmarking harness: shared interference must
 * cancel in paired ratios, giving duet a decisive variance advantage
 * over sequential measurement under co-tenant noise.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/duet.hh"
#include "sim/machine.hh"
#include "sim/rodinia.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace sharp;
using sim::DuetHarness;
using sim::DuetPair;

DuetHarness
makeHarness(double sigma, uint64_t seed = 1)
{
    DuetHarness::NoiseModel noise;
    noise.sigma = sigma;
    return DuetHarness(sim::rodiniaByName("backprop"),
                       sim::rodiniaByName("kmeans"),
                       sim::machineById("machine1"), seed, noise);
}

std::vector<DuetPair>
collect(DuetHarness &harness, size_t n, bool duet)
{
    std::vector<DuetPair> pairs;
    pairs.reserve(n);
    for (size_t i = 0; i < n; ++i)
        pairs.push_back(duet ? harness.samplePair()
                             : harness.sampleSequential());
    return pairs;
}

TEST(Duet, SharedInterferenceAppliesToBothSides)
{
    auto harness = makeHarness(0.5);
    // With heavy interference, both sides of a pair move together:
    // the ratio varies far less than the raw times.
    auto pairs = collect(harness, 500, true);
    std::vector<double> raw_a, ratios;
    for (const auto &pair : pairs) {
        raw_a.push_back(pair.timeA);
        ratios.push_back(pair.timeA / pair.timeB);
        EXPECT_GT(pair.interference, 0.0);
    }
    EXPECT_GT(stats::coefficientOfVariation(raw_a),
              2.0 * stats::coefficientOfVariation(ratios));
}

TEST(Duet, PairedRatiosBeatSequentialUnderInterference)
{
    // The Duet claim: at matched budgets, paired log-ratios have much
    // lower variance than sequential ones when interference is shared.
    auto duet_harness = makeHarness(0.4, 2);
    auto seq_harness = makeHarness(0.4, 3);
    auto duet_ratios = DuetHarness::pairedLogRatios(
        collect(duet_harness, 800, true));
    auto seq_ratios = DuetHarness::pairedLogRatios(
        collect(seq_harness, 800, false));
    EXPECT_LT(stats::variance(duet_ratios),
              stats::variance(seq_ratios) / 4.0);
}

TEST(Duet, NoAdvantageOnAQuietNode)
{
    // With sigma = 0 the two modes are statistically equivalent.
    auto duet_harness = makeHarness(0.0, 4);
    auto seq_harness = makeHarness(0.0, 5);
    auto duet_ratios = DuetHarness::pairedLogRatios(
        collect(duet_harness, 800, true));
    auto seq_ratios = DuetHarness::pairedLogRatios(
        collect(seq_harness, 800, false));
    double ratio = stats::variance(duet_ratios) /
                   stats::variance(seq_ratios);
    EXPECT_GT(ratio, 0.6);
    EXPECT_LT(ratio, 1.6);
}

TEST(Duet, SpeedupEstimateMatchesTrueRatio)
{
    // backprop (2.6 s) vs kmeans (8.9 s): geometric-mean ratio tracks
    // the model means' ratio even under interference.
    auto harness = makeHarness(0.3, 6);
    double speedup =
        DuetHarness::speedupEstimate(collect(harness, 2000, true));
    double expected = 2.6 / 8.9;
    EXPECT_NEAR(speedup, expected, expected * 0.15);
}

TEST(Duet, SequentialSpeedupIsUnbiasedJustNoisier)
{
    auto harness = makeHarness(0.3, 7);
    double speedup = DuetHarness::speedupEstimate(
        collect(harness, 4000, false));
    double expected = 2.6 / 8.9;
    EXPECT_NEAR(speedup, expected, expected * 0.2);
}

TEST(Duet, DeterministicGivenSeed)
{
    auto h1 = makeHarness(0.2, 8);
    auto h2 = makeHarness(0.2, 8);
    for (int i = 0; i < 50; ++i) {
        DuetPair p1 = h1.samplePair();
        DuetPair p2 = h2.samplePair();
        EXPECT_DOUBLE_EQ(p1.timeA, p2.timeA);
        EXPECT_DOUBLE_EQ(p1.timeB, p2.timeB);
    }
}

TEST(Duet, RejectsBadConfiguration)
{
    DuetHarness::NoiseModel bad_sigma;
    bad_sigma.sigma = -1.0;
    EXPECT_THROW(DuetHarness(sim::rodiniaByName("backprop"),
                             sim::rodiniaByName("kmeans"),
                             sim::machineById("machine1"), 1,
                             bad_sigma),
                 std::invalid_argument);
    DuetHarness::NoiseModel bad_phi;
    bad_phi.phi = 1.0;
    EXPECT_THROW(DuetHarness(sim::rodiniaByName("backprop"),
                             sim::rodiniaByName("kmeans"),
                             sim::machineById("machine1"), 1, bad_phi),
                 std::invalid_argument);
    EXPECT_THROW(DuetHarness::speedupEstimate({}),
                 std::invalid_argument);
}

} // anonymous namespace
