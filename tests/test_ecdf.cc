/**
 * @file
 * Tests for the ECDF and the Kolmogorov–Smirnov statistics — the
 * backbone of SHARP's distribution comparisons and its headline
 * stopping rule.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "rng/sampler.hh"
#include "stats/ecdf.hh"
#include "stats/special.hh"

namespace
{

using namespace sharp::stats;
using sharp::rng::NormalSampler;
using sharp::rng::UniformSampler;
using sharp::rng::Xoshiro256;

TEST(Ecdf, StepFunctionValues)
{
    Ecdf f({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(f(0.5), 0.0);
    EXPECT_DOUBLE_EQ(f(1.0), 0.25);
    EXPECT_DOUBLE_EQ(f(2.5), 0.5);
    EXPECT_DOUBLE_EQ(f(4.0), 1.0);
    EXPECT_DOUBLE_EQ(f(99.0), 1.0);
}

TEST(Ecdf, HandlesTies)
{
    Ecdf f({1.0, 1.0, 1.0, 2.0});
    EXPECT_DOUBLE_EQ(f(1.0), 0.75);
}

TEST(Ecdf, InverseReturnsOrderStatistics)
{
    Ecdf f({10.0, 20.0, 30.0, 40.0});
    EXPECT_DOUBLE_EQ(f.inverse(0.0), 10.0);
    EXPECT_DOUBLE_EQ(f.inverse(0.25), 10.0);
    EXPECT_DOUBLE_EQ(f.inverse(0.26), 20.0);
    EXPECT_DOUBLE_EQ(f.inverse(1.0), 40.0);
}

TEST(Ecdf, RejectsEmptySample)
{
    EXPECT_THROW(Ecdf({}), std::invalid_argument);
}

TEST(KsStatistic, IdenticalSamplesGiveZero)
{
    std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0};
    EXPECT_DOUBLE_EQ(ksStatistic(xs, xs), 0.0);
}

TEST(KsStatistic, DisjointSamplesGiveOne)
{
    EXPECT_DOUBLE_EQ(ksStatistic({1.0, 2.0, 3.0}, {10.0, 11.0}), 1.0);
}

TEST(KsStatistic, KnownSmallSampleValue)
{
    // F1 jumps at {1,2}, F2 jumps at {1.5, 2.5}: max gap is 0.5 at 1
    // and again at 2 — hand-checkable.
    EXPECT_DOUBLE_EQ(ksStatistic({1.0, 2.0}, {1.5, 2.5}), 0.5);
}

TEST(KsStatistic, SymmetricInArguments)
{
    std::vector<double> a = {1.0, 3.0, 5.0, 7.0};
    std::vector<double> b = {2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(ksStatistic(a, b), ksStatistic(b, a));
}

TEST(KsStatistic, BoundedInUnitInterval)
{
    Xoshiro256 gen(1);
    NormalSampler n1(0.0, 1.0), n2(0.5, 2.0);
    for (int trial = 0; trial < 20; ++trial) {
        auto a = n1.sampleMany(gen, 50);
        auto b = n2.sampleMany(gen, 70);
        double d = ksStatistic(a, b);
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 1.0);
    }
}

TEST(KsStatistic, TiesAcrossSamplesExact)
{
    // All mass at the same point: distributions identical.
    EXPECT_DOUBLE_EQ(ksStatistic({5.0, 5.0}, {5.0, 5.0, 5.0}), 0.0);
    // Two-thirds vs one-half below the tie point.
    EXPECT_NEAR(ksStatistic({1.0, 1.0, 2.0}, {1.0, 2.0}),
                2.0 / 3.0 - 0.5, 1e-12);
}

TEST(KsStatistic, ConsistentForSameDistribution)
{
    // For same-distribution samples, D -> 0 as n grows.
    Xoshiro256 gen(2);
    NormalSampler sampler(10.0, 1.0);
    auto a = sampler.sampleMany(gen, 4000);
    auto b = sampler.sampleMany(gen, 4000);
    EXPECT_LT(ksStatistic(a, b), 0.05);
}

TEST(KsStatistic, DetectsLocationShift)
{
    Xoshiro256 gen(3);
    NormalSampler s1(10.0, 1.0), s2(11.0, 1.0);
    auto a = s1.sampleMany(gen, 2000);
    auto b = s2.sampleMany(gen, 2000);
    // Theoretical D for unit-sd normals 1 sd apart is 2*Phi(0.5)-1 ~ .383
    EXPECT_NEAR(ksStatistic(a, b), 0.383, 0.05);
}

TEST(KsStatistic, MatchesBruteForceEvaluation)
{
    Xoshiro256 gen(4);
    UniformSampler sampler(0.0, 1.0);
    auto a = sampler.sampleMany(gen, 37);
    auto b = sampler.sampleMany(gen, 53);

    Ecdf fa(a), fb(b);
    double brute = 0.0;
    for (double x : a)
        brute = std::max(brute, std::fabs(fa(x) - fb(x)));
    for (double x : b)
        brute = std::max(brute, std::fabs(fa(x) - fb(x)));
    EXPECT_NEAR(ksStatistic(a, b), brute, 1e-12);
}

TEST(KsStatistic, EcdfOverloadAgrees)
{
    std::vector<double> a = {1.0, 2.0, 2.0, 3.0};
    std::vector<double> b = {1.5, 2.5};
    EXPECT_DOUBLE_EQ(ksStatistic(Ecdf(a), Ecdf(b)), ksStatistic(a, b));
}

TEST(KsStatistic, RejectsEmpty)
{
    EXPECT_THROW(ksStatistic({}, {1.0}), std::invalid_argument);
    EXPECT_THROW(ksStatistic({1.0}, {}), std::invalid_argument);
}

TEST(OneSampleKs, PerfectFitIsSmall)
{
    // ECDF of uniform data against the true uniform CDF: D ~ 1/sqrt(n).
    Xoshiro256 gen(5);
    UniformSampler sampler(0.0, 1.0);
    auto xs = sampler.sampleMany(gen, 1000);
    double d = ksStatisticAgainst(xs, [](double x) {
        if (x <= 0.0)
            return 0.0;
        if (x >= 1.0)
            return 1.0;
        return x;
    });
    EXPECT_LT(d, 0.06);
}

TEST(OneSampleKs, WrongModelIsLarge)
{
    Xoshiro256 gen(6);
    NormalSampler sampler(0.5, 0.1);
    auto xs = sampler.sampleMany(gen, 1000);
    // Theoretical sup gap between N(0.5, 0.1) and U(0, 1) is ~0.286.
    double d = ksStatisticAgainst(xs, [](double x) {
        return x <= 0.0 ? 0.0 : (x >= 1.0 ? 1.0 : x);
    });
    EXPECT_GT(d, 0.25);
}

TEST(OneSampleKs, DegenerateAgainstStep)
{
    // All data at 0.5 against the uniform CDF: sup gap is 0.5.
    std::vector<double> xs(10, 0.5);
    double d = ksStatisticAgainst(xs, [](double x) {
        return x <= 0.0 ? 0.0 : (x >= 1.0 ? 1.0 : x);
    });
    EXPECT_DOUBLE_EQ(d, 0.5);
}

TEST(SortedKs, SortedOverloadAndReferenceAgreeWithBatch)
{
    Xoshiro256 gen(29);
    NormalSampler s1(0.0, 1.0), s2(0.3, 1.2);
    auto a = s1.sampleMany(gen, 211);
    auto b = s2.sampleMany(gen, 97);
    double batch = ksStatistic(a, b);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(ksStatisticSorted(a, b), batch);
    EXPECT_EQ(ksStatisticSortedReference(a, b), batch);
    EXPECT_THROW(ksStatisticSorted({}, a), std::invalid_argument);
    EXPECT_THROW(ksStatisticSortedReference(a, {}),
                 std::invalid_argument);
}

} // anonymous namespace
