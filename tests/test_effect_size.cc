/**
 * @file
 * Tests for effect sizes: Cohen's d / Hedges' g, Cliff's delta, and
 * the common-language effect size.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rng/sampler.hh"
#include "stats/effect_size.hh"

namespace
{

using namespace sharp::stats;
using namespace sharp::rng;

TEST(CohensD, ZeroForIdenticalSamples)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(cohensD(xs, xs), 0.0);
}

TEST(CohensD, KnownHandComputedValue)
{
    // x = {1,2,3}, y = {3,4,5}: means 2 and 4, pooled sd = 1 -> d = -2.
    EXPECT_NEAR(cohensD({1.0, 2.0, 3.0}, {3.0, 4.0, 5.0}), -2.0, 1e-12);
}

TEST(CohensD, RecoversTrueStandardizedShift)
{
    Xoshiro256 gen(1);
    NormalSampler s1(10.0, 2.0), s2(11.0, 2.0); // true d = -0.5
    auto a = s1.sampleMany(gen, 3000);
    auto b = s2.sampleMany(gen, 3000);
    EXPECT_NEAR(cohensD(a, b), -0.5, 0.06);
}

TEST(CohensD, SignConvention)
{
    EXPECT_GT(cohensD({5.0, 6.0, 7.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(CohensD, InfiniteForZeroVarianceDifferentMeans)
{
    double d = cohensD({2.0, 2.0, 2.0}, {3.0, 3.0});
    EXPECT_TRUE(std::isinf(d));
    EXPECT_LT(d, 0.0);
    EXPECT_DOUBLE_EQ(cohensD({2.0, 2.0}, {2.0, 2.0}), 0.0);
}

TEST(HedgesG, ShrinksTowardZeroVsCohensD)
{
    std::vector<double> a = {1.0, 2.0, 3.0};
    std::vector<double> b = {2.5, 3.5, 4.5};
    double d = cohensD(a, b);
    double g = hedgesG(a, b);
    EXPECT_LT(std::fabs(g), std::fabs(d));
    EXPECT_GT(std::fabs(g), 0.7 * std::fabs(d)); // mild correction
    EXPECT_EQ(std::signbit(g), std::signbit(d));
}

TEST(CliffsDelta, ExtremesAndZero)
{
    // Complete separation.
    EXPECT_DOUBLE_EQ(cliffsDelta({4.0, 5.0}, {1.0, 2.0}), 1.0);
    EXPECT_DOUBLE_EQ(cliffsDelta({1.0, 2.0}, {4.0, 5.0}), -1.0);
    // Identical samples.
    std::vector<double> xs = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(cliffsDelta(xs, xs), 0.0);
}

TEST(CliffsDelta, HandComputedWithTies)
{
    // x = {1, 2}, y = {2, 3}: pairs (1,2)<, (1,3)<, (2,2)=, (2,3)<
    // -> (0 - 3)/4 = -0.75.
    EXPECT_DOUBLE_EQ(cliffsDelta({1.0, 2.0}, {2.0, 3.0}), -0.75);
}

TEST(CliffsDelta, MatchesBruteForceOnRandomData)
{
    Xoshiro256 gen(2);
    LogNormalSampler s1(1.0, 0.5), s2(1.2, 0.4);
    auto a = s1.sampleMany(gen, 80);
    auto b = s2.sampleMany(gen, 70);

    double brute = 0.0;
    for (double va : a) {
        for (double vb : b) {
            if (va > vb)
                brute += 1.0;
            else if (va < vb)
                brute -= 1.0;
        }
    }
    brute /= static_cast<double>(a.size() * b.size());
    EXPECT_NEAR(cliffsDelta(a, b), brute, 1e-12);
}

TEST(CliffsDelta, AgreesWithCommonLanguage)
{
    Xoshiro256 gen(3);
    NormalSampler s1(10.0, 1.0), s2(10.5, 1.0);
    auto a = s1.sampleMany(gen, 500);
    auto b = s2.sampleMany(gen, 500);
    // delta = 2*CL - 1 when there are no ties.
    EXPECT_NEAR(cliffsDelta(a, b),
                2.0 * commonLanguageEffect(a, b) - 1.0, 1e-12);
}

TEST(CommonLanguage, HalfForIdenticalDistributions)
{
    Xoshiro256 gen(4);
    NormalSampler sampler(5.0, 1.0);
    auto a = sampler.sampleMany(gen, 2000);
    auto b = sampler.sampleMany(gen, 2000);
    EXPECT_NEAR(commonLanguageEffect(a, b), 0.5, 0.03);
}

TEST(CommonLanguage, TiesCountHalf)
{
    EXPECT_DOUBLE_EQ(commonLanguageEffect({1.0}, {1.0}), 0.5);
}

TEST(CliffsDeltaMagnitude, ConventionalThresholds)
{
    EXPECT_STREQ(cliffsDeltaMagnitude(0.05), "negligible");
    EXPECT_STREQ(cliffsDeltaMagnitude(-0.2), "small");
    EXPECT_STREQ(cliffsDeltaMagnitude(0.4), "medium");
    EXPECT_STREQ(cliffsDeltaMagnitude(-0.9), "large");
}

TEST(EffectSizes, RejectBadInput)
{
    EXPECT_THROW(cohensD({1.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(cliffsDelta({}, {1.0}), std::invalid_argument);
    EXPECT_THROW(commonLanguageEffect({1.0}, {}),
                 std::invalid_argument);
}

} // anonymous namespace
