/**
 * @file
 * Tests for the core Experiment sampling loop.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.hh"
#include "core/stopping/fixed_rule.hh"
#include "core/stopping/ks_rule.hh"
#include "rng/sampler.hh"

namespace
{

using namespace sharp::core;
using namespace sharp::rng;

TEST(Experiment, FixedRuleCollectsExactCount)
{
    int calls = 0;
    Experiment exp([&calls] { return static_cast<double>(++calls); },
                   std::make_unique<FixedCountRule>(25));
    ExperimentResult res = exp.run();
    EXPECT_TRUE(res.ruleFired);
    EXPECT_EQ(res.series.size(), 25u);
    EXPECT_EQ(res.totalRuns, 25u);
}

TEST(Experiment, WarmupRunsAreDiscarded)
{
    int calls = 0;
    ExperimentOptions opts;
    opts.warmupRuns = 5;
    Experiment exp([&calls] { return static_cast<double>(++calls); },
                   std::make_unique<FixedCountRule>(10), opts);
    ExperimentResult res = exp.run();
    EXPECT_EQ(res.warmupSamples.size(), 5u);
    EXPECT_EQ(res.series.size(), 10u);
    EXPECT_EQ(res.totalRuns, 15u);
    // The first retained sample comes after the warmups.
    EXPECT_DOUBLE_EQ(res.series[0], 6.0);
}

TEST(Experiment, MaxSamplesCapStopsRunawayRules)
{
    // A KS rule on a strongly trending stream never fires; the cap must.
    int calls = 0;
    ExperimentOptions opts;
    opts.maxSamples = 100;
    Experiment exp([&calls] { return static_cast<double>(++calls); },
                   std::make_unique<KsHalvesRule>(0.01, 20), opts);
    ExperimentResult res = exp.run();
    EXPECT_FALSE(res.ruleFired);
    EXPECT_EQ(res.series.size(), 100u);
    EXPECT_NE(res.finalDecision.reason.find("maxSamples"),
              std::string::npos);
}

TEST(Experiment, CheckIntervalSkipsEvaluations)
{
    // With interval 10 and a fixed(5) rule, the rule is first consulted
    // at the floor (5 samples) — interval counts from the floor.
    ExperimentOptions opts;
    opts.checkInterval = 10;
    int calls = 0;
    Experiment exp([&calls] { return static_cast<double>(++calls); },
                   std::make_unique<FixedCountRule>(6), opts);
    ExperimentResult res = exp.run();
    EXPECT_TRUE(res.ruleFired);
    // Floor is max(min=2, rule.minSamples=1) = 2; checks at 2, 12 —
    // the rule wants 6, so it fires on the 12-sample check.
    EXPECT_EQ(res.series.size(), 12u);
}

TEST(Experiment, KsRuleStopsOnStationaryStream)
{
    Xoshiro256 gen(1);
    NormalSampler sampler(10.0, 1.0);
    ExperimentOptions opts;
    opts.maxSamples = 5000;
    Experiment exp([&] { return sampler.sample(gen); },
                   std::make_unique<KsHalvesRule>(0.1, 20), opts);
    ExperimentResult res = exp.run();
    EXPECT_TRUE(res.ruleFired);
    EXPECT_LT(res.series.size(), 1000u);
    EXPECT_TRUE(res.finalDecision.stop);
    EXPECT_LT(res.finalDecision.criterion,
              res.finalDecision.threshold);
}

TEST(Experiment, RunIsRepeatable)
{
    // Each run() resets the rule; two runs over fresh deterministic
    // sources behave identically.
    auto make_source = [] {
        auto gen = std::make_shared<Xoshiro256>(7);
        return [gen]() mutable {
            return 10.0 + 0.01 * static_cast<double>(gen->nextDouble());
        };
    };
    Experiment exp1(make_source(), std::make_unique<KsHalvesRule>());
    Experiment exp2(make_source(), std::make_unique<KsHalvesRule>());
    EXPECT_EQ(exp1.run().series.size(), exp2.run().series.size());
}

TEST(Experiment, RejectsInvalidConstruction)
{
    EXPECT_THROW(Experiment(nullptr, std::make_unique<FixedCountRule>()),
                 std::invalid_argument);
    EXPECT_THROW(Experiment([] { return 1.0; }, nullptr),
                 std::invalid_argument);
    ExperimentOptions bad;
    bad.minSamples = 100;
    bad.maxSamples = 10;
    EXPECT_THROW(Experiment([] { return 1.0; },
                            std::make_unique<FixedCountRule>(), bad),
                 std::invalid_argument);
}

} // anonymous namespace
