/**
 * @file
 * Tests for the simulated Knative cluster: dispatch of parallel
 * requests across workers (§V-C), cold starts, and the Table V
 * concurrency scaling shape.
 */

#include <gtest/gtest.h>

#include "sim/faas.hh"
#include "sim/machine.hh"
#include "sim/rodinia.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace sharp::sim;
namespace stats = sharp::stats;

std::vector<MachineSpec>
gpuWorkers()
{
    return {machineById("machine1"), machineById("machine3")};
}

TEST(ConcurrencyModel, DefaultMatchesTable5Shape)
{
    // Table V: avg time 3.46 -> 4.80 -> 6.87 -> 11.90 -> 23.14 s for
    // c = 1, 2, 4, 8, 16; multipliers 1.0, 1.39, 1.99, 3.44, 6.69.
    ConcurrencyModel model;
    EXPECT_NEAR(model.multiplier(1), 1.0, 1e-12);
    EXPECT_NEAR(model.multiplier(2), 1.39, 0.05);
    EXPECT_NEAR(model.multiplier(4), 1.99, 0.15);
    EXPECT_NEAR(model.multiplier(8), 3.44, 0.3);
    EXPECT_NEAR(model.multiplier(16), 6.69, 0.6);
}

TEST(ConcurrencyModel, PerUnitTimeDecreases)
{
    // §I Q3: execution time per concurrency unit falls 30-57%.
    ConcurrencyModel model;
    double per_unit_1 = model.multiplier(1) / 1.0;
    double prev = per_unit_1;
    for (int c : {2, 4, 8, 16}) {
        double per_unit = model.multiplier(c) / static_cast<double>(c);
        EXPECT_LT(per_unit, prev) << c;
        prev = per_unit;
    }
    double drop = 1.0 - prev / per_unit_1;
    EXPECT_GT(drop, 0.5);
    EXPECT_LT(drop, 0.65);
}

TEST(FaasCluster, SplitsParallelRequestsRoundRobin)
{
    FaasCluster cluster(rodiniaByName("bfs-CUDA"), gpuWorkers(), 1);
    auto invocations = cluster.invoke(2);
    ASSERT_EQ(invocations.size(), 2u);
    EXPECT_EQ(invocations[0].workerId, "machine1");
    EXPECT_EQ(invocations[1].workerId, "machine3");
}

TEST(FaasCluster, OddBatchFavorsFirstWorker)
{
    FaasCluster cluster(rodiniaByName("bfs-CUDA"), gpuWorkers(), 1);
    auto invocations = cluster.invoke(5);
    int on_m1 = 0;
    for (const auto &inv : invocations)
        on_m1 += inv.workerId == "machine1";
    EXPECT_EQ(on_m1, 3);
}

TEST(FaasCluster, FirstInvocationIsCold)
{
    FaasCluster cluster(rodiniaByName("bfs-CUDA"), gpuWorkers(), 2);
    auto first = cluster.invoke(2);
    EXPECT_TRUE(first[0].coldStart);
    EXPECT_TRUE(first[1].coldStart);
    // Cold starts add latency to the response but not the execution.
    EXPECT_GT(first[0].responseTime, first[0].executionTime + 0.1);

    auto second = cluster.invoke(2);
    EXPECT_FALSE(second[0].coldStart);
    EXPECT_DOUBLE_EQ(second[0].responseTime, second[0].executionTime);
}

TEST(FaasCluster, IdleWorkerGoesColdAgain)
{
    ColdStartModel cold;
    cold.keepAliveInvocations = 3;
    FaasCluster cluster(rodiniaByName("bfs-CUDA"), gpuWorkers(), 3,
                        ConcurrencyModel(), cold);
    cluster.invoke(2); // warm both
    // Only worker 1 used for a while (single requests go round-robin
    // index 0 only when batch = 1).
    for (int i = 0; i < 4; ++i)
        cluster.invoke(1);
    // machine3 idled past keep-alive: next use is cold again.
    auto batch = cluster.invoke(2);
    EXPECT_FALSE(batch[0].coldStart);
    EXPECT_TRUE(batch[1].coldStart);
}

TEST(FaasCluster, CudaFunctionNeedsGpusEverywhere)
{
    std::vector<MachineSpec> mixed = {machineById("machine1"),
                                      machineById("machine2")};
    EXPECT_THROW(
        FaasCluster(rodiniaByName("bfs-CUDA"), std::move(mixed), 1),
        std::invalid_argument);
}

TEST(FaasCluster, CpuFunctionRunsOnGpulessWorkers)
{
    std::vector<MachineSpec> cpu_workers = {machineById("machine2")};
    EXPECT_NO_THROW(
        FaasCluster(rodiniaByName("sc"), std::move(cpu_workers), 1));
}

TEST(FaasCluster, Table5ConcurrencySweepOnMachine3)
{
    // Use case 3: sc on Machine 3 with rising concurrency. Average
    // execution time grows while per-unit time falls.
    std::vector<MachineSpec> worker = {machineById("machine3")};
    double prev_avg = 0.0;
    double prev_per_unit = 1e9;
    double avg_c1 = 0.0;
    for (int c : {1, 2, 4, 8, 16}) {
        FaasCluster cluster(rodiniaByName("sc"), worker, 9);
        cluster.invoke(c); // discard the cold batch
        auto times = cluster.collectExecutionTimes(60, c);
        double avg = stats::mean(times);
        double per_unit = avg / 1.0; // execution time already reflects
                                     // contention at level c
        EXPECT_GT(avg, prev_avg) << "c=" << c;
        EXPECT_LT(avg / c, prev_per_unit) << "c=" << c;
        prev_avg = avg;
        prev_per_unit = avg / c;
        if (c == 1)
            avg_c1 = avg;
        (void)per_unit;
    }
    // Table V anchor: ~3.46 s at c = 1 on Machine 3.
    EXPECT_NEAR(avg_c1, 3.46, 0.35);
    // c=16 total is ~6.7x the c=1 total.
    EXPECT_NEAR(prev_avg / avg_c1, 6.69, 1.0);
}

TEST(FaasCluster, ExecutionTimesReflectWorkerSpeed)
{
    // On the 2-worker cluster, machine3 (H100) serves bfs-CUDA about
    // twice as fast as machine1 (A100).
    FaasCluster cluster(rodiniaByName("bfs-CUDA"), gpuWorkers(), 5);
    std::vector<double> m1_times, m3_times;
    for (int round = 0; round < 300; ++round) {
        for (const auto &inv : cluster.invoke(2)) {
            if (inv.workerId == "machine1")
                m1_times.push_back(inv.executionTime);
            else
                m3_times.push_back(inv.executionTime);
        }
    }
    double speedup = stats::mean(m1_times) / stats::mean(m3_times);
    EXPECT_NEAR(speedup, 2.0, 0.2);
}

TEST(FaasCluster, RejectsBadInvocations)
{
    FaasCluster cluster(rodiniaByName("sc"),
                        {machineById("machine1")}, 1);
    EXPECT_THROW(cluster.invoke(0), std::invalid_argument);
    EXPECT_THROW(FaasCluster(rodiniaByName("sc"), {}, 1),
                 std::invalid_argument);
}

} // anonymous namespace
