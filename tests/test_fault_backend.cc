/**
 * @file
 * Tests for deterministic fault injection: every FailureKind is
 * produced on a seeded schedule, the schedule is reproducible, and the
 * launcher's retry/abort machinery reacts to injected faults exactly
 * as it would to real ones.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "core/stopping/fixed_rule.hh"
#include "json/parser.hh"
#include "json/writer.hh"
#include "launcher/fault_backend.hh"
#include "launcher/launcher.hh"
#include "launcher/sim_backend.hh"
#include "record/failure.hh"
#include "sim/machine.hh"
#include "sim/rodinia.hh"
#include "util/message.hh"

namespace
{

using namespace sharp::launcher;
using sharp::record::FailureKind;

std::shared_ptr<SimBackend>
bfsBackend(uint64_t seed = 1)
{
    return std::make_shared<SimBackend>(
        sharp::sim::rodiniaByName("bfs"),
        sharp::sim::machineById("machine1"), 0, seed);
}

FaultInjectingBackend
always(double FaultSpec::*field, uint64_t seed = 1)
{
    FaultSpec spec;
    spec.*field = 1.0;
    spec.seed = seed;
    return FaultInjectingBackend(bfsBackend(), spec);
}

TEST(FaultSpec, ValidatesProbabilities)
{
    FaultSpec negative;
    negative.crashProbability = -0.1;
    EXPECT_THROW(negative.validate(), std::invalid_argument);

    FaultSpec oversum;
    oversum.crashProbability = 0.6;
    oversum.flakyExitProbability = 0.6;
    EXPECT_THROW(oversum.validate(), std::invalid_argument);

    FaultSpec bad_factor;
    bad_factor.slowFactor = 0.0;
    EXPECT_THROW(bad_factor.validate(), std::invalid_argument);
}

TEST(FaultSpec, JsonRoundTrip)
{
    FaultSpec spec;
    spec.crashProbability = 0.05;
    spec.hangProbability = 0.02;
    spec.corruptProbability = 0.1;
    spec.flakyExitProbability = 0.1;
    spec.slowProbability = 0.05;
    spec.slowFactor = 4.0;
    spec.seed = 99;

    FaultSpec parsed =
        FaultSpec::fromJson(sharp::json::parse(
            sharp::json::write(spec.toJson())));
    EXPECT_DOUBLE_EQ(parsed.crashProbability, 0.05);
    EXPECT_DOUBLE_EQ(parsed.hangProbability, 0.02);
    EXPECT_DOUBLE_EQ(parsed.corruptProbability, 0.1);
    EXPECT_DOUBLE_EQ(parsed.flakyExitProbability, 0.1);
    EXPECT_DOUBLE_EQ(parsed.slowProbability, 0.05);
    EXPECT_DOUBLE_EQ(parsed.slowFactor, 4.0);
    EXPECT_EQ(parsed.seed, 99u);
}

TEST(FaultSpec, SeedAbove2To53RoundTripsExactly)
{
    // Seeds are serialized as decimal strings: through a JSON number
    // (a double) this seed would round and the resumed/reproduced
    // fault schedule would diverge from the original run's.
    FaultSpec spec;
    spec.seed = (1ULL << 53) + 1;
    FaultSpec parsed = FaultSpec::fromJson(
        sharp::json::parse(sharp::json::write(spec.toJson())));
    EXPECT_EQ(parsed.seed, (1ULL << 53) + 1);

    spec.seed = 0xFFFFFFFFFFFFFFFFULL;
    parsed = FaultSpec::fromJson(
        sharp::json::parse(sharp::json::write(spec.toJson())));
    EXPECT_EQ(parsed.seed, 0xFFFFFFFFFFFFFFFFULL);

    // Documents written before string seeds used numbers; those
    // still parse.
    FaultSpec legacy = FaultSpec::fromJson(
        sharp::json::parse("{\"seed\": 42}"));
    EXPECT_EQ(legacy.seed, 42u);
}

TEST(FaultBackend, RejectsNullInner)
{
    EXPECT_THROW(FaultInjectingBackend(nullptr, FaultSpec()),
                 std::invalid_argument);
}

TEST(FaultBackend, CrashBandYieldsSignalCrash)
{
    auto backend = always(&FaultSpec::crashProbability);
    RunResult res = backend.run();
    EXPECT_FALSE(res.success);
    EXPECT_EQ(res.kind, FailureKind::SignalCrash);
    EXPECT_NE(res.error.find("signal"), std::string::npos);
}

TEST(FaultBackend, SpawnBandYieldsSpawnError)
{
    auto backend = always(&FaultSpec::spawnErrorProbability);
    RunResult res = backend.run();
    EXPECT_EQ(res.kind, FailureKind::SpawnError);
}

TEST(FaultBackend, HangBandYieldsTimeout)
{
    auto backend = always(&FaultSpec::hangProbability);
    RunResult res = backend.run();
    EXPECT_EQ(res.kind, FailureKind::Timeout);
}

TEST(FaultBackend, CorruptBandYieldsUnparsableOutput)
{
    auto backend = always(&FaultSpec::corruptProbability);
    RunResult res = backend.run();
    EXPECT_EQ(res.kind, FailureKind::UnparsableOutput);
    EXPECT_TRUE(res.metrics.empty());
}

TEST(FaultBackend, FlakyBandYieldsNonzeroExit)
{
    auto backend = always(&FaultSpec::flakyExitProbability);
    RunResult res = backend.run();
    EXPECT_EQ(res.kind, FailureKind::NonzeroExit);
    EXPECT_NE(res.error.find("status 1"), std::string::npos);
}

TEST(FaultBackend, SlowBandInflatesMetricButSucceeds)
{
    FaultSpec spec;
    spec.slowProbability = 1.0;
    spec.slowFactor = 10.0;
    FaultInjectingBackend slowed(bfsBackend(7), spec);
    auto clean = bfsBackend(7);

    RunResult fast = clean->run();
    RunResult slow = slowed.run();
    ASSERT_TRUE(slow.success);
    EXPECT_EQ(slow.kind, FailureKind::None);
    EXPECT_DOUBLE_EQ(slow.metric("execution_time"),
                     10.0 * fast.metric("execution_time"));
}

TEST(FaultBackend, PassThroughKeepsInnerResult)
{
    FaultSpec spec; // all probabilities zero
    FaultInjectingBackend wrapped(bfsBackend(3), spec);
    auto clean = bfsBackend(3);
    for (int i = 0; i < 5; ++i) {
        RunResult a = wrapped.run();
        RunResult b = clean->run();
        ASSERT_TRUE(a.success);
        EXPECT_DOUBLE_EQ(a.metric("execution_time"),
                         b.metric("execution_time"));
    }
    EXPECT_EQ(wrapped.name(), "fault+sim");
    EXPECT_TRUE(wrapped.deterministic());
}

TEST(FaultBackend, ScheduleIsDeterministicPerSeed)
{
    FaultSpec spec;
    spec.crashProbability = 0.2;
    spec.hangProbability = 0.2;
    spec.flakyExitProbability = 0.2;
    spec.seed = 42;

    auto kindsOf = [&](uint64_t seed) {
        FaultSpec copy = spec;
        copy.seed = seed;
        FaultInjectingBackend backend(bfsBackend(), copy);
        std::vector<FailureKind> kinds;
        for (int i = 0; i < 200; ++i)
            kinds.push_back(backend.run().kind);
        return kinds;
    };

    auto first = kindsOf(42);
    EXPECT_EQ(first, kindsOf(42));
    EXPECT_NE(first, kindsOf(43));

    // With these band widths, a 200-draw schedule exercises every
    // configured fault at least once.
    std::map<FailureKind, int> seen;
    for (FailureKind kind : first)
        ++seen[kind];
    EXPECT_GT(seen[FailureKind::SignalCrash], 0);
    EXPECT_GT(seen[FailureKind::Timeout], 0);
    EXPECT_GT(seen[FailureKind::NonzeroExit], 0);
    EXPECT_GT(seen[FailureKind::None], 0);
}

TEST(FaultBackend, BatchAdvancesScheduleLikeSequentialRuns)
{
    FaultSpec spec;
    spec.crashProbability = 0.5;
    spec.seed = 5;
    FaultInjectingBackend batched(bfsBackend(), spec);
    FaultInjectingBackend sequential(bfsBackend(), spec);

    auto batch = batched.runBatch(8);
    std::vector<RunResult> loop;
    for (int i = 0; i < 8; ++i)
        loop.push_back(sequential.run());
    ASSERT_EQ(batch.size(), loop.size());
    for (size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(batch[i].kind, loop[i].kind);
    EXPECT_EQ(batched.invocations(), 8u);
}

TEST(FaultBackend, LauncherRetriesInjectedFaults)
{
    std::string captured;
    sharp::util::setMessageCapture(&captured);
    FaultSpec spec;
    spec.flakyExitProbability = 0.3;
    spec.seed = 11;

    LaunchOptions opts;
    opts.maxFailures = 1000;
    opts.retry.maxAttempts = 4;
    Launcher launcher(
        std::make_shared<FaultInjectingBackend>(bfsBackend(), spec),
        std::make_unique<sharp::core::FixedCountRule>(50), opts);
    LaunchReport report = launcher.launch();
    sharp::util::setMessageCapture(nullptr);

    // Flaky exits are transient: with retries the campaign still
    // collects its full series.
    EXPECT_EQ(report.series.size(), 50u);
    EXPECT_GT(report.retries, 0u);
    EXPECT_EQ(report.log.primaryValues().size(), 50u);
}

TEST(FaultBackend, LauncherAbortNamesInjectedKinds)
{
    std::string captured;
    sharp::util::setMessageCapture(&captured);
    FaultSpec spec;
    spec.crashProbability = 1.0;

    LaunchOptions opts;
    opts.maxFailures = 3;
    Launcher launcher(
        std::make_shared<FaultInjectingBackend>(bfsBackend(), spec),
        std::make_unique<sharp::core::FixedCountRule>(50), opts);
    LaunchReport report = launcher.launch();
    sharp::util::setMessageCapture(nullptr);

    EXPECT_TRUE(report.aborted);
    EXPECT_EQ(report.failures, 3u);
    EXPECT_NE(report.finalDecision.reason.find("signal-crash=3"),
              std::string::npos);
}

// ---- The hang-then-recover band: stalls the invocation, then lets
// ---- it succeed untouched. This is what makes watchdog detection
// ---- testable end to end — the run is slow, not wrong.

TEST(FaultBackend, HangRecoverStallsButKeepsMetricsExact)
{
    FaultSpec spec;
    spec.hangRecoverProbability = 1.0;
    spec.hangRecoverSeconds = 0.01;
    FaultInjectingBackend wrapped(bfsBackend(9), spec);
    auto clean = bfsBackend(9);

    RunResult stalled = wrapped.run();
    RunResult reference = clean->run();
    ASSERT_TRUE(stalled.success);
    EXPECT_EQ(stalled.kind, FailureKind::None);
    // The stall is wall-clock only; every metric stays byte-exact,
    // which is what keeps failover resume byte-identical.
    EXPECT_DOUBLE_EQ(stalled.metric("execution_time"),
                     reference.metric("execution_time"));
}

TEST(FaultBackend, HangRecoverStallIsSeededAndBounded)
{
    FaultSpec spec;
    spec.seed = 11;
    spec.hangRecoverSeconds = 2.0;

    for (size_t index = 0; index < 32; ++index) {
        double stall = hangRecoverStallSeconds(spec, index);
        EXPECT_EQ(stall, hangRecoverStallSeconds(spec, index));
        EXPECT_GE(stall, 0.9 * spec.hangRecoverSeconds);
        EXPECT_LE(stall, 1.1 * spec.hangRecoverSeconds);
    }

    // Different seeds and different indices draw different stalls.
    FaultSpec other = spec;
    other.seed = 12;
    EXPECT_NE(hangRecoverStallSeconds(spec, 0),
              hangRecoverStallSeconds(other, 0));
    EXPECT_NE(hangRecoverStallSeconds(spec, 0),
              hangRecoverStallSeconds(spec, 1));
}

TEST(FaultBackend, HangRecoverStallHalvesPerIncarnation)
{
    FaultSpec spec;
    spec.seed = 21;
    spec.hangRecoverSeconds = 1.0;
    double first = hangRecoverStallSeconds(spec, 4);

    // Each failover hands the worker a higher incarnation; the stall
    // halves exactly, so a hung campaign provably makes progress.
    for (uint64_t incarnation = 1; incarnation <= 8; ++incarnation) {
        FaultSpec retry = spec;
        retry.incarnation = incarnation;
        EXPECT_DOUBLE_EQ(hangRecoverStallSeconds(retry, 4),
                         std::ldexp(first, -static_cast<int>(
                                               incarnation)));
    }
}

TEST(FaultSpec, HangRecoverRoundTripsAndValidates)
{
    FaultSpec spec;
    spec.hangRecoverProbability = 0.25;
    spec.hangRecoverSeconds = 0.5;
    spec.incarnation = 3;
    spec.seed = 7;
    spec.validate();

    FaultSpec back = FaultSpec::fromJson(spec.toJson());
    EXPECT_DOUBLE_EQ(back.hangRecoverProbability, 0.25);
    EXPECT_DOUBLE_EQ(back.hangRecoverSeconds, 0.5);
    EXPECT_EQ(back.incarnation, 3u);

    FaultSpec bad = spec;
    bad.hangRecoverSeconds = 0.0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
}

} // anonymous namespace
