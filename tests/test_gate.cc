/**
 * @file
 * Tests for the performance-regression gate.
 */

#include <gtest/gtest.h>

#include "report/gate.hh"
#include "rng/sampler.hh"

namespace
{

using namespace sharp::report;
using namespace sharp::rng;

std::vector<double>
normalRuns(double mean, double sd, size_t n, uint64_t seed)
{
    Xoshiro256 gen(seed);
    NormalSampler sampler(mean, sd);
    return sampler.sampleMany(gen, n);
}

TEST(Gate, PassesIdenticalDistributions)
{
    auto base = normalRuns(10.0, 0.3, 200, 1);
    auto cand = normalRuns(10.0, 0.3, 200, 2);
    GateResult result = evaluateGate(base, cand);
    EXPECT_TRUE(result.pass) << result.verdict;
    EXPECT_NE(result.verdict.find("PASS"), std::string::npos);
    EXPECT_NEAR(result.medianChange, 0.0, 0.02);
}

TEST(Gate, FailsOnMedianRegression)
{
    auto base = normalRuns(10.0, 0.3, 200, 3);
    auto cand = normalRuns(11.5, 0.3, 200, 4); // +15% slower
    GateResult result = evaluateGate(base, cand);
    EXPECT_FALSE(result.pass);
    EXPECT_NE(result.verdict.find("median regressed"),
              std::string::npos);
    EXPECT_GT(result.medianChange, 0.1);
    EXPECT_LT(result.mannWhitneyP, 0.01);
}

TEST(Gate, PassesSmallImprovements)
{
    auto base = normalRuns(10.0, 0.3, 200, 5);
    auto cand = normalRuns(9.0, 0.3, 200, 6); // 10% faster
    GateResult result = evaluateGate(base, cand);
    EXPECT_TRUE(result.pass) << result.verdict;
    EXPECT_LT(result.medianChange, 0.0);
}

TEST(Gate, FailsOnShapeChangeDespiteEqualMedians)
{
    // The SHARP-specific rule: a new bimodal structure with the same
    // median is still a regression (of predictability).
    auto base = normalRuns(10.0, 0.25, 1000, 7);
    Xoshiro256 gen(8);
    std::vector<MixtureSampler::Component> comps;
    comps.push_back({0.5, std::make_shared<NormalSampler>(9.0, 0.25)});
    comps.push_back({0.5, std::make_shared<NormalSampler>(11.0, 0.25)});
    MixtureSampler bimodal(std::move(comps));
    auto cand = bimodal.sampleMany(gen, 1000);

    GateResult result = evaluateGate(base, cand);
    EXPECT_FALSE(result.pass);
    EXPECT_NE(result.verdict.find("shape changed"), std::string::npos);
    // Medians agree within the slowdown tolerance...
    EXPECT_LT(result.medianChange, 0.05);
    // ...but the shape moved a lot.
    EXPECT_GT(result.ksDistance, 0.3);
}

TEST(Gate, TolerancesAreConfigurable)
{
    auto base = normalRuns(10.0, 0.3, 200, 9);
    auto cand = normalRuns(10.4, 0.3, 200, 10); // +4%
    GateConfig strict;
    strict.maxSlowdown = 0.01;
    EXPECT_FALSE(evaluateGate(base, cand, strict).pass);
    GateConfig loose;
    loose.maxSlowdown = 0.10;
    loose.maxKsDistance = 0.8;
    EXPECT_TRUE(evaluateGate(base, cand, loose).pass);
}

TEST(Gate, LargerIsBetterMetricsInvertDirection)
{
    // Throughput: candidate at 11 vs baseline 10 is an improvement.
    auto base = normalRuns(10.0, 0.3, 200, 11);
    auto cand = normalRuns(11.0, 0.3, 200, 12);
    GateConfig config;
    config.largerIsWorse = false;
    config.maxKsDistance = 1.0; // only judge the direction here
    GateResult result = evaluateGate(base, cand, config);
    EXPECT_TRUE(result.pass) << result.verdict;
    EXPECT_LT(result.medianChange, 0.0);

    // And a throughput *drop* fails.
    auto slow = normalRuns(8.5, 0.3, 200, 13);
    EXPECT_FALSE(evaluateGate(base, slow, config).pass);
}

TEST(Gate, NoiseAloneDoesNotFail)
{
    // Repeated gates on same-distribution runs should essentially
    // always pass: evidence + effect are both required.
    int failures = 0;
    for (uint64_t seed = 20; seed < 40; ++seed) {
        auto base = normalRuns(10.0, 0.5, 60, seed);
        auto cand = normalRuns(10.0, 0.5, 60, seed + 100);
        failures += !evaluateGate(base, cand).pass;
    }
    EXPECT_LE(failures, 1);
}

TEST(Gate, RejectsTinySamples)
{
    EXPECT_THROW(evaluateGate({1, 2, 3}, {1, 2, 3, 4, 5}),
                 std::invalid_argument);
}

} // anonymous namespace
