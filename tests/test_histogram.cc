/**
 * @file
 * Tests for histograms and the paper's bin-width rule (min of Sturges
 * and Freedman–Diaconis, §V-A.2).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rng/sampler.hh"
#include "stats/descriptive.hh"
#include "stats/histogram.hh"

namespace
{

using namespace sharp::stats;
using sharp::rng::NormalSampler;
using sharp::rng::Xoshiro256;

std::vector<double>
normalSample(size_t n, uint64_t seed = 1)
{
    Xoshiro256 gen(seed);
    NormalSampler sampler(0.0, 1.0);
    return sampler.sampleMany(gen, n);
}

TEST(BinWidth, SturgesMatchesFormula)
{
    std::vector<double> xs;
    for (int i = 0; i < 100; ++i)
        xs.push_back(static_cast<double>(i)); // range 99, n=100
    double bins = std::ceil(std::log2(100.0)) + 1.0; // 8
    EXPECT_NEAR(binWidth(xs, BinRule::Sturges), 99.0 / bins, 1e-12);
}

TEST(BinWidth, FreedmanDiaconisMatchesFormula)
{
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i)
        xs.push_back(static_cast<double>(i));
    double expected = 2.0 * iqr(xs) / std::cbrt(1000.0);
    EXPECT_NEAR(binWidth(xs, BinRule::FreedmanDiaconis), expected, 1e-9);
}

TEST(BinWidth, PaperRuleIsMinOfBoth)
{
    auto xs = normalSample(500);
    double sturges = binWidth(xs, BinRule::Sturges);
    double fd = binWidth(xs, BinRule::FreedmanDiaconis);
    EXPECT_DOUBLE_EQ(binWidth(xs, BinRule::SturgesFdMin),
                     std::min(sturges, fd));
}

TEST(BinWidth, FdFallsBackWhenIqrZero)
{
    // Heavily tied data with zero IQR must not produce a zero width.
    std::vector<double> xs(50, 5.0);
    xs.push_back(1.0);
    xs.push_back(9.0);
    EXPECT_GT(binWidth(xs, BinRule::FreedmanDiaconis), 0.0);
    EXPECT_GT(binWidth(xs, BinRule::SturgesFdMin), 0.0);
}

TEST(BinWidth, ZeroForConstantData)
{
    std::vector<double> xs(10, 3.0);
    EXPECT_DOUBLE_EQ(binWidth(xs, BinRule::Sturges), 0.0);
}

TEST(Histogram, CountsSumToSampleSize)
{
    auto xs = normalSample(1234);
    Histogram h = Histogram::build(xs, BinRule::SturgesFdMin);
    size_t total = 0;
    for (size_t i = 0; i < h.numBins(); ++i)
        total += h.count(i);
    EXPECT_EQ(total, xs.size());
    EXPECT_EQ(h.totalCount(), xs.size());
}

TEST(Histogram, MaxValueLandsInLastBin)
{
    std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 4.0};
    Histogram h = Histogram::buildWithBins(xs, 4);
    EXPECT_EQ(h.count(3), 2u); // 3.x bin holds 3 and 4
}

TEST(Histogram, DegenerateSampleSingleBin)
{
    std::vector<double> xs(20, 7.0);
    Histogram h = Histogram::build(xs, BinRule::SturgesFdMin);
    ASSERT_EQ(h.numBins(), 1u);
    EXPECT_EQ(h.count(0), 20u);
    EXPECT_DOUBLE_EQ(h.center(0), 7.0);
}

TEST(Histogram, DensityIntegratesToOne)
{
    auto xs = normalSample(5000);
    Histogram h = Histogram::build(xs, BinRule::Scott);
    double integral = 0.0;
    for (size_t i = 0; i < h.numBins(); ++i)
        integral += h.density(i) * h.width();
    EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, ProbabilitiesSumToOne)
{
    auto xs = normalSample(777);
    Histogram h = Histogram::build(xs, BinRule::Sturges);
    double total = 0.0;
    for (double p : h.probabilities())
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, CentersAreWithinRange)
{
    auto xs = normalSample(300);
    Histogram h = Histogram::build(xs, BinRule::SturgesFdMin);
    for (size_t i = 0; i < h.numBins(); ++i) {
        EXPECT_GE(h.center(i), h.lowerBound());
        EXPECT_LE(h.center(i), h.upperBound());
    }
}

TEST(Histogram, RejectsBadInput)
{
    EXPECT_THROW(Histogram::build({}, BinRule::Sturges),
                 std::invalid_argument);
    EXPECT_THROW(Histogram::buildWithBins({1.0}, 0),
                 std::invalid_argument);
}

TEST(Histogram, FdNarrowerThanSturgesOnLongTails)
{
    // With heavy tails, FD (IQR-based) resists the range blowup that
    // stretches Sturges bins — the reason the paper takes the minimum.
    auto xs = normalSample(2000, 9);
    xs.push_back(50.0); // inject an extreme outlier
    double sturges = binWidth(xs, BinRule::Sturges);
    double fd = binWidth(xs, BinRule::FreedmanDiaconis);
    EXPECT_LT(fd, sturges);
}

TEST(BinRuleName, HumanReadable)
{
    EXPECT_STREQ(binRuleName(BinRule::Sturges), "sturges");
    EXPECT_STREQ(binRuleName(BinRule::SturgesFdMin),
                 "min(sturges, freedman-diaconis)");
}

} // anonymous namespace
