/**
 * @file
 * Tests for the HTML/SVG report export.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "report/html.hh"
#include "rng/sampler.hh"

namespace
{

using namespace sharp::report;
using namespace sharp::rng;

std::vector<double>
sample(double mean, double sd, size_t n, uint64_t seed)
{
    Xoshiro256 gen(seed);
    NormalSampler sampler(mean, sd);
    return sampler.sampleMany(gen, n);
}

TEST(HtmlEscape, EscapesSpecials)
{
    EXPECT_EQ(htmlEscape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    EXPECT_EQ(htmlEscape("plain"), "plain");
}

TEST(SvgHistogram, WellFormedWithBars)
{
    auto xs = sample(10.0, 1.0, 500, 1);
    std::string svg = svgHistogram(xs);
    EXPECT_EQ(svg.rfind("<svg", 0), 0u);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    // Several bars plus tooltips with counts.
    EXPECT_GT(std::count(svg.begin(), svg.end(), '\n'), 8);
    EXPECT_NE(svg.find("<rect"), std::string::npos);
    EXPECT_NE(svg.find("<title>"), std::string::npos);
}

TEST(SvgHistogram, ColorAndSizeRespected)
{
    auto xs = sample(0.0, 1.0, 100, 2);
    std::string svg = svgHistogram(xs, 400, 200, "#ff0000");
    EXPECT_NE(svg.find("width=\"400\""), std::string::npos);
    EXPECT_NE(svg.find("#ff0000"), std::string::npos);
}

TEST(SvgHistogram, DegenerateSampleStillRenders)
{
    std::vector<double> xs(20, 5.0);
    std::string svg = svgHistogram(xs);
    EXPECT_NE(svg.find("<rect"), std::string::npos);
}

TEST(SvgHistogram, RejectsBadArguments)
{
    EXPECT_THROW(svgHistogram({}), std::invalid_argument);
    EXPECT_THROW(svgHistogram({1.0}, 10, 10), std::invalid_argument);
}

TEST(SvgEcdfOverlay, TwoCurvesWithLabels)
{
    auto a = sample(10.0, 1.0, 200, 3);
    auto b = sample(11.0, 1.0, 200, 4);
    std::string svg = svgEcdfOverlay(a, "A100", b, "H100");
    EXPECT_EQ(std::count(svg.begin(), svg.end(), '\n') > 5, true);
    // Two polylines, two labels.
    size_t first = svg.find("<polyline");
    ASSERT_NE(first, std::string::npos);
    EXPECT_NE(svg.find("<polyline", first + 1), std::string::npos);
    EXPECT_NE(svg.find("A100"), std::string::npos);
    EXPECT_NE(svg.find("H100"), std::string::npos);
}

TEST(RenderHtml, DistributionReportIsStandalone)
{
    auto xs = sample(10.0, 0.5, 400, 5);
    auto report = DistributionReport::analyze("bfs @ machine1", xs);
    std::string html = renderHtml(report);
    EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
    EXPECT_NE(html.find("</html>"), std::string::npos);
    EXPECT_NE(html.find("bfs @ machine1"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos);
    EXPECT_NE(html.find("Distribution class"), std::string::npos);
    EXPECT_NE(html.find("95% CI"), std::string::npos);
}

TEST(RenderHtml, ComparisonReportHasAllSections)
{
    auto a = sample(10.0, 1.0, 300, 6);
    auto b = sample(5.0, 0.5, 300, 7);
    auto report = ComparisonReport::analyze("A100", a, "H100", b);
    std::string html = renderHtml(report);
    EXPECT_NE(html.find("Speedup"), std::string::npos);
    EXPECT_NE(html.find("NAMD"), std::string::npos);
    EXPECT_NE(html.find("Cliff's delta"), std::string::npos);
    EXPECT_NE(html.find("Empirical CDFs"), std::string::npos);
    // Three figures: ECDF overlay + two histograms.
    size_t count = 0, pos = 0;
    while ((pos = html.find("<svg", pos)) != std::string::npos) {
        ++count;
        pos += 4;
    }
    EXPECT_EQ(count, 3u);
}

TEST(RenderHtml, EscapesReportNames)
{
    auto xs = sample(1.0, 0.1, 100, 8);
    auto report =
        DistributionReport::analyze("<script>alert(1)</script>", xs);
    std::string html = renderHtml(report);
    EXPECT_EQ(html.find("<script>"), std::string::npos);
    EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
}

TEST(SaveHtml, WritesFile)
{
    namespace fs = std::filesystem;
    fs::path path = fs::temp_directory_path() / "sharp_test_report.html";
    saveHtml("<!DOCTYPE html><html></html>", path.string());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    fs::remove(path);
    EXPECT_THROW(saveHtml("x", "/no/such/dir/report.html"),
                 std::runtime_error);
}

} // anonymous namespace
