/**
 * @file
 * Tests for the hypothesis tests and the special functions behind
 * their p-values.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rng/sampler.hh"
#include "stats/ci.hh"
#include "stats/descriptive.hh"
#include "stats/special.hh"
#include "stats/tests.hh"

namespace
{

using namespace sharp::stats;
using namespace sharp::rng;

TEST(Special, NormalCdfKnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.959963985), 0.975, 1e-6);
    EXPECT_NEAR(normalCdf(-1.0), 0.158655, 1e-5);
}

TEST(Special, NormalQuantileInvertsCdf)
{
    for (double p : {0.001, 0.05, 0.25, 0.5, 0.9, 0.999}) {
        EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-9) << p;
    }
    EXPECT_THROW(normalQuantile(0.0), std::invalid_argument);
    EXPECT_THROW(normalQuantile(1.0), std::invalid_argument);
}

TEST(Special, LogGammaMatchesFactorials)
{
    EXPECT_NEAR(logGamma(1.0), 0.0, 1e-12);
    EXPECT_NEAR(logGamma(5.0), std::log(24.0), 1e-10);
    EXPECT_NEAR(logGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(Special, RegularizedGammaBoundaries)
{
    EXPECT_DOUBLE_EQ(regularizedGammaP(2.0, 0.0), 0.0);
    EXPECT_NEAR(regularizedGammaP(1.0, 1.0), 1.0 - std::exp(-1.0),
                1e-10);
    // chi2(2) CDF at 5.991 ~ 0.95.
    EXPECT_NEAR(chiSquareCdf(5.991, 2.0), 0.95, 1e-3);
}

TEST(Special, RegularizedBetaSymmetry)
{
    EXPECT_NEAR(regularizedBeta(0.3, 2.0, 5.0) +
                    regularizedBeta(0.7, 5.0, 2.0),
                1.0, 1e-10);
    EXPECT_DOUBLE_EQ(regularizedBeta(0.0, 1.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(regularizedBeta(1.0, 1.0, 1.0), 1.0);
}

TEST(Special, StudentTKnownQuantiles)
{
    // t_{0.975, 10} = 2.228, t_{0.975, 30} = 2.042 (standard tables).
    EXPECT_NEAR(studentTQuantile(0.975, 10.0), 2.228, 2e-3);
    EXPECT_NEAR(studentTQuantile(0.975, 30.0), 2.042, 2e-3);
    // Large dof converges to the normal quantile.
    EXPECT_NEAR(studentTQuantile(0.975, 1e6), 1.95996, 1e-3);
}

TEST(Special, StudentTCdfSymmetry)
{
    for (double t : {0.5, 1.0, 2.5}) {
        EXPECT_NEAR(studentTCdf(t, 7.0) + studentTCdf(-t, 7.0), 1.0,
                    1e-10);
    }
}

TEST(Special, KolmogorovCdfKnownValues)
{
    // Q(1.36) ~ 0.049 (the classic 5% critical value).
    EXPECT_NEAR(kolmogorovComplementaryCdf(1.36), 0.049, 2e-3);
    EXPECT_DOUBLE_EQ(kolmogorovComplementaryCdf(0.0), 1.0);
    EXPECT_LT(kolmogorovComplementaryCdf(3.0), 1e-6);
}

TEST(KsTest, SameDistributionHighP)
{
    Xoshiro256 gen(1);
    NormalSampler sampler(10.0, 1.0);
    int rejections = 0;
    for (int trial = 0; trial < 40; ++trial) {
        auto a = sampler.sampleMany(gen, 200);
        auto b = sampler.sampleMany(gen, 200);
        rejections += ksTest(a, b).rejectAt(0.05);
    }
    // ~5% false positive rate expected; allow generous slack.
    EXPECT_LE(rejections, 6);
}

TEST(KsTest, DifferentDistributionLowP)
{
    Xoshiro256 gen(2);
    NormalSampler s1(10.0, 1.0), s2(11.0, 1.0);
    auto a = s1.sampleMany(gen, 300);
    auto b = s2.sampleMany(gen, 300);
    TestResult res = ksTest(a, b);
    EXPECT_LT(res.pValue, 1e-6);
    EXPECT_GT(res.statistic, 0.2);
}

TEST(MannWhitney, DetectsLocationShift)
{
    Xoshiro256 gen(3);
    NormalSampler s1(10.0, 1.0), s2(10.8, 1.0);
    auto a = s1.sampleMany(gen, 200);
    auto b = s2.sampleMany(gen, 200);
    EXPECT_LT(mannWhitneyU(a, b).pValue, 0.001);
}

TEST(MannWhitney, NullCalibration)
{
    Xoshiro256 gen(4);
    LogNormalSampler sampler(1.0, 0.6);
    int rejections = 0;
    for (int trial = 0; trial < 40; ++trial) {
        auto a = sampler.sampleMany(gen, 100);
        auto b = sampler.sampleMany(gen, 100);
        rejections += mannWhitneyU(a, b).rejectAt(0.05);
    }
    EXPECT_LE(rejections, 6);
}

TEST(MannWhitney, AllTiedGivesPOne)
{
    std::vector<double> a(10, 5.0), b(12, 5.0);
    EXPECT_DOUBLE_EQ(mannWhitneyU(a, b).pValue, 1.0);
}

TEST(MannWhitney, HandComputedU)
{
    // a = {1, 2}, b = {3, 4}: U_a = 0.
    EXPECT_DOUBLE_EQ(mannWhitneyU({1.0, 2.0}, {3.0, 4.0}).statistic, 0.0);
    // Reversed: U_a = nx*ny = 4.
    EXPECT_DOUBLE_EQ(mannWhitneyU({3.0, 4.0}, {1.0, 2.0}).statistic, 4.0);
}

TEST(WelchT, DetectsMeanDifference)
{
    Xoshiro256 gen(5);
    NormalSampler s1(10.0, 1.0), s2(10.5, 2.0);
    auto a = s1.sampleMany(gen, 300);
    auto b = s2.sampleMany(gen, 300);
    TestResult res = welchTTest(a, b);
    EXPECT_LT(res.pValue, 0.01);
    EXPECT_LT(res.statistic, 0.0); // a's mean is smaller
}

TEST(WelchT, EqualMeansHighP)
{
    Xoshiro256 gen(6);
    NormalSampler s1(10.0, 1.0), s2(10.0, 3.0);
    int rejections = 0;
    for (int trial = 0; trial < 40; ++trial) {
        auto a = s1.sampleMany(gen, 150);
        auto b = s2.sampleMany(gen, 150);
        rejections += welchTTest(a, b).rejectAt(0.05);
    }
    EXPECT_LE(rejections, 6);
}

TEST(JarqueBera, AcceptsNormalRejectsExponential)
{
    Xoshiro256 gen(7);
    NormalSampler normal(0.0, 1.0);
    auto xs = normal.sampleMany(gen, 1000);
    EXPECT_GT(jarqueBera(xs).pValue, 0.01);

    ExponentialSampler expo(1.0);
    auto ys = expo.sampleMany(gen, 1000);
    EXPECT_LT(jarqueBera(ys).pValue, 1e-6);
}

TEST(AndersonDarling, AcceptsNormalRejectsUniform)
{
    Xoshiro256 gen(8);
    NormalSampler normal(5.0, 2.0);
    auto xs = normal.sampleMany(gen, 500);
    EXPECT_GT(andersonDarlingNormal(xs).pValue, 0.01);

    UniformSampler uniform(0.0, 1.0);
    auto ys = uniform.sampleMany(gen, 500);
    EXPECT_LT(andersonDarlingNormal(ys).pValue, 0.001);
}

TEST(AndersonDarling, ConstantSampleIsVacuouslyNormal)
{
    std::vector<double> xs(20, 3.0);
    EXPECT_DOUBLE_EQ(andersonDarlingNormal(xs).pValue, 1.0);
}

TEST(CramerVonMises, SameDistributionCalibratedP)
{
    Xoshiro256 gen(9);
    NormalSampler sampler(10.0, 1.0);
    int rejections = 0;
    for (int trial = 0; trial < 60; ++trial) {
        auto a = sampler.sampleMany(gen, 150);
        auto b = sampler.sampleMany(gen, 150);
        rejections += cramerVonMises(a, b).rejectAt(0.05);
    }
    // ~5% expected; allow generous slack.
    EXPECT_LE(rejections, 8);
}

TEST(CramerVonMises, DetectsShiftAndScale)
{
    Xoshiro256 gen(10);
    NormalSampler s1(10.0, 1.0), s2(10.5, 1.0), s3(10.0, 2.0);
    auto a = s1.sampleMany(gen, 400);
    EXPECT_LT(cramerVonMises(a, s2.sampleMany(gen, 400)).pValue, 1e-4);
    EXPECT_LT(cramerVonMises(a, s3.sampleMany(gen, 400)).pValue, 1e-4);
}

TEST(CramerVonMises, StatisticGrowsWithSeparation)
{
    Xoshiro256 gen(11);
    NormalSampler s1(0.0, 1.0), near_s(0.3, 1.0), far_s(2.0, 1.0);
    auto a = s1.sampleMany(gen, 300);
    double near_t =
        cramerVonMises(a, near_s.sampleMany(gen, 300)).statistic;
    double far_t =
        cramerVonMises(a, far_s.sampleMany(gen, 300)).statistic;
    EXPECT_GT(far_t, near_t);
}

TEST(CramerVonMises, HandlesTies)
{
    std::vector<double> a = {1.0, 1.0, 2.0, 2.0};
    std::vector<double> b = {1.0, 2.0, 2.0, 3.0};
    TestResult res = cramerVonMises(a, b);
    EXPECT_TRUE(std::isfinite(res.statistic));
    EXPECT_GE(res.pValue, 0.0);
    EXPECT_LE(res.pValue, 1.0);
}

TEST(CramerVonMises, MoreSensitiveThanKsToDiffuseDifference)
{
    // A distribution differing from normal in both tails equally can
    // sit below KS's single-gap radar while CvM integrates it up; at
    // minimum CvM must reject clearly here.
    Xoshiro256 gen(12);
    NormalSampler core_s(10.0, 1.0);
    LogisticSampler wide(10.0, 0.8);
    auto a = core_s.sampleMany(gen, 800);
    auto b = wide.sampleMany(gen, 800);
    EXPECT_LT(cramerVonMises(a, b).pValue, 0.01);
}

TEST(RequiredSampleSize, MatchesClosedFormScaling)
{
    Xoshiro256 gen(13);
    NormalSampler sampler(10.0, 1.0); // CV ~ 0.1
    auto pilot = sampler.sampleMany(gen, 100);
    size_t n_loose = requiredSampleSize(pilot, 0.05, 0.95);
    size_t n_tight = requiredSampleSize(pilot, 0.01, 0.95);
    // Quadratic in 1/width: 5x tighter -> ~25x more runs.
    EXPECT_NEAR(static_cast<double>(n_tight) /
                    static_cast<double>(n_loose),
                25.0, 5.0);
    // Closed form: n ~ (2 * 1.96 * 0.1 / 0.05)^2 ~ 62.
    EXPECT_GT(n_loose, 40u);
    EXPECT_LT(n_loose, 90u);
}

TEST(RequiredSampleSize, PredictionActuallyAchievesTarget)
{
    Xoshiro256 gen(14);
    LogNormalSampler sampler(1.0, 0.4);
    auto pilot = sampler.sampleMany(gen, 60);
    size_t n = requiredSampleSize(pilot, 0.1, 0.95);
    auto full = sampler.sampleMany(gen, n);
    auto ci = meanCi(full, 0.95);
    EXPECT_LT(ci.relativeWidth(mean(full)), 0.13); // target + slack
}

TEST(RequiredSampleSize, ConstantPilotNeedsTwo)
{
    EXPECT_EQ(requiredSampleSize({5.0, 5.0, 5.0}, 0.05), 2u);
}

TEST(RequiredSampleSize, RejectsBadInput)
{
    EXPECT_THROW(requiredSampleSize({1.0}, 0.05),
                 std::invalid_argument);
    EXPECT_THROW(requiredSampleSize({1.0, 2.0}, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(requiredSampleSize({-1.0, 1.0}, 0.05),
                 std::invalid_argument);
}

TEST(HypothesisTests, RejectTooSmallSamples)
{
    EXPECT_THROW(welchTTest({1.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(jarqueBera({1.0, 2.0, 3.0}), std::invalid_argument);
    EXPECT_THROW(andersonDarlingNormal({1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW(mannWhitneyU({}, {1.0}), std::invalid_argument);
}

} // anonymous namespace
