/**
 * @file
 * Cross-module integration tests: full SHARP pipelines from launcher
 * through logging to reporting, mirroring the paper's experiments in
 * miniature.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "core/config.hh"
#include "core/stopping/ks_rule.hh"
#include "core/stopping/meta_rule.hh"
#include "json/parser.hh"
#include "launcher/faas_backend.hh"
#include "launcher/launcher.hh"
#include "launcher/sim_backend.hh"
#include "record/csv.hh"
#include "record/metadata.hh"
#include "report/compare.hh"
#include "report/report.hh"
#include "sim/faas.hh"
#include "sim/machine.hh"
#include "sim/rodinia.hh"
#include "stats/similarity.hh"

namespace
{

using namespace sharp;

TEST(Integration, LaunchLogAnalyzeRoundTrip)
{
    // Launch a simulated benchmark with the KS rule, persist the tidy
    // artifacts, reload them, and analyze — the full SHARP loop.
    namespace fs = std::filesystem;
    auto backend = std::make_shared<launcher::SimBackend>(
        sim::rodiniaByName("hotspot"), sim::machineById("machine1"), 0,
        99);
    launcher::LaunchOptions opts;
    opts.warmupRounds = 2;
    opts.maxSamples = 2000;
    launcher::Launcher l(backend,
                         std::make_unique<core::KsHalvesRule>(0.1, 20),
                         opts);
    launcher::LaunchReport report = l.launch();
    ASSERT_TRUE(report.ruleFired);

    report.log.setSystemInfo(record::describeSimulatedMachine(
        sim::machineById("machine1")));
    fs::path base = fs::temp_directory_path() / "sharp_integration";
    report.log.save(base.string());

    // Reload and verify the data round-trips.
    record::CsvTable csv = record::CsvTable::load(base.string() + ".csv");
    auto measured =
        csv.numericColumnWhere("execution_time", "warmup", "false");
    ASSERT_EQ(measured.size(), report.series.size());

    record::MetadataDocument doc =
        record::MetadataDocument::load(base.string() + ".md");
    EXPECT_EQ(doc.get("System Under Test", "cpu_model").value(),
              "AMD EPYC 7443");

    // Analyze the reloaded data.
    auto rep = report::DistributionReport::analyze("hotspot", measured);
    EXPECT_GT(rep.summary.mean, 3.0);
    EXPECT_LT(rep.summary.mean, 6.0);

    fs::remove(base.string() + ".csv");
    fs::remove(base.string() + ".md");
}

TEST(Integration, ConfigDrivenExperimentFromJson)
{
    // Drive an experiment end-to-end from a JSON config document.
    auto config = core::ExperimentConfig::fromJson(json::parse(R"({
        "rule": "ks",
        "params": {"threshold": 0.1, "min": 20},
        "warmup": 2, "min": 20, "max": 1500, "seed": 3
    })"));
    auto backend = std::make_shared<launcher::SimBackend>(
        sim::rodiniaByName("bfs"), sim::machineById("machine1"), 0,
        config.seed);
    launcher::LaunchOptions opts;
    opts.warmupRounds = config.options.warmupRuns;
    opts.minSamples = config.options.minSamples;
    opts.maxSamples = config.options.maxSamples;
    launcher::Launcher l(backend, config.makeRule(), opts);
    auto report = l.launch();
    EXPECT_TRUE(report.ruleFired);
    EXPECT_GE(report.series.size(), 20u);
    EXPECT_LT(report.series.size(), 1500u);
}

TEST(Integration, MetaRuleOnFaasClusterStopsSensibly)
{
    // §V-C setup in miniature: a CUDA function on the two-GPU-worker
    // cluster, adaptive stopping via the meta-heuristic.
    auto cluster = std::make_unique<sim::FaasCluster>(
        sim::rodiniaByName("srad-CUDA"),
        std::vector<sim::MachineSpec>{sim::machineById("machine1"),
                                      sim::machineById("machine3")},
        17);
    auto backend = std::make_unique<launcher::FaasBackend>(
        std::move(cluster), "srad-CUDA");
    launcher::LaunchOptions opts;
    opts.concurrency = 2;
    opts.maxSamples = 4000;
    launcher::Launcher l(std::shared_ptr<launcher::Backend>(
                             std::move(backend)),
                         std::make_unique<core::MetaRule>(), opts);
    auto report = l.launch();
    EXPECT_TRUE(report.ruleFired);
    EXPECT_LT(report.series.size(), 4000u);
    // Two workers at ~1.2x speedup apart: the pooled distribution is
    // bimodal-ish, and sampling must not stop instantly.
    EXPECT_GE(report.series.size(), 30u);
}

TEST(Integration, DayPairComparisonShowsKsNamdGap)
{
    // Fig. 5 in miniature: across day pairs of hotspot on machine2,
    // find at least one pair whose means agree (low NAMD) but whose
    // shapes differ (KS well above NAMD).
    std::vector<std::vector<double>> days;
    for (int day = 0; day < 5; ++day) {
        sim::SimulatedWorkload w(sim::rodiniaByName("hotspot"),
                                 sim::machineById("machine2"), day, 8);
        days.push_back(w.sampleMany(1200));
    }
    bool found_gap = false;
    for (size_t i = 0; i < days.size() && !found_gap; ++i) {
        for (size_t j = i + 1; j < days.size(); ++j) {
            double point = stats::namd(days[i], days[j]);
            double dist = stats::ksDistance(days[i], days[j]);
            if (point < 0.05 && dist > 3.0 * point && dist > 0.08) {
                found_gap = true;
                break;
            }
        }
    }
    EXPECT_TRUE(found_gap);
}

TEST(Integration, StoppingSavesComputeVsFixed1000)
{
    // Fig. 1b in miniature: across a few benchmarks, the KS rule uses
    // far fewer runs than the fixed-1000 ground-truth budget while
    // landing close to the truth distribution.
    size_t adaptive_total = 0;
    size_t fixed_total = 0;
    for (const char *name : {"bfs", "lud", "kmeans", "backprop"}) {
        auto backend = std::make_shared<launcher::SimBackend>(
            sim::rodiniaByName(name), sim::machineById("machine1"), 0,
            55);
        launcher::LaunchOptions opts;
        opts.maxSamples = 1000;
        launcher::Launcher l(
            backend, std::make_unique<core::KsHalvesRule>(0.1, 20),
            opts);
        auto report = l.launch();
        adaptive_total += report.series.size();
        fixed_total += 1000;

        // Compare against a fresh 1000-run ground truth.
        sim::SimulatedWorkload truth(sim::rodiniaByName(name),
                                     sim::machineById("machine1"), 0,
                                     77);
        double ks = stats::ksDistance(report.series.values(),
                                      truth.sampleMany(1000));
        EXPECT_LT(ks, 0.25) << name;
    }
    // Savings of at least 60% on these well-behaved benchmarks.
    EXPECT_LT(adaptive_total, fixed_total * 2 / 5);
}

} // anonymous namespace
