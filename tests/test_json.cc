/**
 * @file
 * Tests for the JSON substrate: value model, parser, writer, and the
 * parse/write round trip SHARP's configs depend on.
 */

#include <gtest/gtest.h>

#include "json/parser.hh"
#include "json/value.hh"
#include "json/writer.hh"

namespace
{

using namespace sharp::json;

TEST(JsonValue, ScalarConstructionAndAccess)
{
    EXPECT_TRUE(Value().isNull());
    EXPECT_TRUE(Value(true).asBool());
    EXPECT_DOUBLE_EQ(Value(3.5).asNumber(), 3.5);
    EXPECT_EQ(Value(42).asLong(), 42);
    EXPECT_EQ(Value("hi").asString(), "hi");
}

TEST(JsonValue, TypeMismatchThrows)
{
    EXPECT_THROW(Value(1.0).asString(), TypeError);
    EXPECT_THROW(Value("x").asNumber(), TypeError);
    EXPECT_THROW(Value().asArray(), TypeError);
    EXPECT_THROW(Value(false).members(), TypeError);
}

TEST(JsonValue, ObjectPreservesInsertionOrder)
{
    Value obj = Value::makeObject();
    obj.set("zeta", 1);
    obj.set("alpha", 2);
    obj.set("mid", 3);
    ASSERT_EQ(obj.size(), 3u);
    EXPECT_EQ(obj.members()[0].first, "zeta");
    EXPECT_EQ(obj.members()[1].first, "alpha");
    EXPECT_EQ(obj.members()[2].first, "mid");
}

TEST(JsonValue, SetReplacesInPlace)
{
    Value obj = Value::makeObject();
    obj.set("key", 1);
    obj.set("other", 2);
    obj.set("key", 9);
    EXPECT_EQ(obj.size(), 2u);
    EXPECT_DOUBLE_EQ(obj.at("key").asNumber(), 9.0);
    EXPECT_EQ(obj.members()[0].first, "key");
}

TEST(JsonValue, LookupHelpers)
{
    Value obj = Value::makeObject();
    obj.set("num", 1.5);
    obj.set("str", "text");
    obj.set("flag", true);
    EXPECT_DOUBLE_EQ(obj.getNumber("num", 0.0), 1.5);
    EXPECT_DOUBLE_EQ(obj.getNumber("missing", 7.0), 7.0);
    EXPECT_EQ(obj.getString("str", ""), "text");
    EXPECT_TRUE(obj.getBool("flag", false));
    EXPECT_TRUE(obj.contains("num"));
    EXPECT_FALSE(obj.contains("nope"));
    EXPECT_THROW(obj.at("nope"), std::out_of_range);
}

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(parse("null").isNull());
    EXPECT_TRUE(parse("true").asBool());
    EXPECT_FALSE(parse("false").asBool());
    EXPECT_DOUBLE_EQ(parse("-12.5e2").asNumber(), -1250.0);
    EXPECT_EQ(parse("\"abc\"").asString(), "abc");
}

TEST(JsonParse, NestedDocument)
{
    Value doc = parse(R"({
        "rule": "ks",
        "params": {"threshold": 0.1, "min": 20},
        "tags": ["hpc", "gpu"],
        "active": true
    })");
    EXPECT_EQ(doc.getString("rule", ""), "ks");
    EXPECT_DOUBLE_EQ(doc.at("params").getNumber("threshold", 0), 0.1);
    ASSERT_EQ(doc.at("tags").size(), 2u);
    EXPECT_EQ(doc.at("tags").asArray()[1].asString(), "gpu");
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(parse(R"("a\nb\t\"q\"\\")").asString(), "a\nb\t\"q\"\\");
    EXPECT_EQ(parse(R"("Aé")").asString(), "A\xc3\xa9");
}

TEST(JsonParse, LineComments)
{
    Value doc = parse("// config\n{\"a\": 1 // inline\n}");
    EXPECT_DOUBLE_EQ(doc.getNumber("a", 0), 1.0);
}

TEST(JsonParse, ErrorsCarryPosition)
{
    try {
        parse("{\"a\": \n  bad}");
        FAIL() << "expected ParseError";
    } catch (const ParseError &err) {
        EXPECT_EQ(err.line, 2u);
    }
}

TEST(JsonParse, RejectsMalformedInput)
{
    EXPECT_THROW(parse(""), ParseError);
    EXPECT_THROW(parse("{"), ParseError);
    EXPECT_THROW(parse("[1,]"), ParseError);
    EXPECT_THROW(parse("{\"a\" 1}"), ParseError);
    EXPECT_THROW(parse("\"unterminated"), ParseError);
    EXPECT_THROW(parse("12 34"), ParseError);
    EXPECT_THROW(parse("01x"), ParseError);
    EXPECT_THROW(parse("tru"), ParseError);
}

TEST(JsonParse, RejectsExcessiveNesting)
{
    std::string deep(300, '[');
    deep += std::string(300, ']');
    EXPECT_THROW(parse(deep), ParseError);

    std::string deep_obj;
    for (int i = 0; i < 300; ++i)
        deep_obj += "{\"k\":";
    deep_obj += "0";
    deep_obj += std::string(300, '}');
    EXPECT_THROW(parse(deep_obj), ParseError);
}

TEST(JsonParse, RejectsTruncatedDocuments)
{
    // Every proper prefix of a valid document must error, not hang or
    // crash — this is the fuzz-shaped surface a config loader sees.
    const std::string doc =
        "{\"rules\": [\"ks\", {\"t\": 0.1, \"ok\": true}], \"n\": 12}";
    for (size_t len = 0; len < doc.size(); ++len)
        EXPECT_THROW(parse(doc.substr(0, len)), ParseError) << len;
    EXPECT_NO_THROW(parse(doc));
}

TEST(JsonParse, RejectsBadEscapes)
{
    EXPECT_THROW(parse("\"\\q\""), ParseError);
    EXPECT_THROW(parse("\"\\u12\""), ParseError);
    EXPECT_THROW(parse("\"\\u12zz\""), ParseError);
    EXPECT_THROW(parse("\"\\\""), ParseError);
    EXPECT_THROW(parse("{\"a\\'\": 1}"), ParseError);
}

TEST(JsonParse, RejectsDuplicateKeys)
{
    // Silently keeping either value would make config typos
    // unobservable, so duplicates are a parse error.
    EXPECT_THROW(parse("{\"a\": 1, \"a\": 2}"), ParseError);
    EXPECT_THROW(parse("{\"a\": 1, \"b\": {\"c\": 0, \"c\": 1}}"),
                 ParseError);
    try {
        parse("{\"seed\": 1, \"seed\": 2}");
        FAIL() << "expected ParseError";
    } catch (const ParseError &err) {
        EXPECT_NE(std::string(err.what()).find("seed"),
                  std::string::npos);
    }
    // Same key at different depths is fine.
    EXPECT_NO_THROW(parse("{\"a\": {\"a\": 1}}"));
}

TEST(JsonWrite, CompactForm)
{
    Value obj = Value::makeObject();
    obj.set("a", 1);
    Value arr = Value::makeArray();
    arr.append(true);
    arr.append(nullptr);
    obj.set("list", std::move(arr));
    EXPECT_EQ(write(obj), "{\"a\":1,\"list\":[true,null]}");
}

TEST(JsonWrite, EscapesControlCharacters)
{
    EXPECT_EQ(write(Value("a\nb")), "\"a\\nb\"");
    EXPECT_EQ(write(Value(std::string(1, '\x01'))), "\"\\u0001\"");
}

TEST(JsonWrite, NumbersRoundTripExactly)
{
    for (double v : {0.1, 1.0 / 3.0, 1e-17, 123456789.123, -0.25}) {
        Value parsed = parse(write(Value(v)));
        EXPECT_DOUBLE_EQ(parsed.asNumber(), v) << "value " << v;
    }
}

TEST(JsonRoundTrip, ParseWriteParseIsIdentity)
{
    const char *text = R"({
        "experiment": "fig6",
        "machines": ["machine1", "machine3"],
        "thresholds": {"t1": 0.05, "t2": 0.01},
        "runs": 1000,
        "nested": [[1, 2], [3, [4]]],
        "note": "KS rule saves ~90%"
    })";
    Value first = parse(text);
    Value second = parse(writePretty(first));
    EXPECT_EQ(first, second);
    Value third = parse(write(first));
    EXPECT_EQ(first, third);
}

TEST(JsonRoundTrip, EmptyContainers)
{
    EXPECT_EQ(write(parse("[]")), "[]");
    EXPECT_EQ(write(parse("{}")), "{}");
}

} // anonymous namespace
