/**
 * @file
 * Tests for kernel density estimation and mode detection — the
 * machinery behind the paper's multimodality findings (Fig. 4).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rng/sampler.hh"
#include "stats/descriptive.hh"
#include "stats/kde.hh"

namespace
{

using namespace sharp::stats;
using namespace sharp::rng;

std::vector<double>
mixtureSample(const std::vector<std::pair<double, double>> &centers_weights,
              double sd, size_t n, uint64_t seed)
{
    std::vector<MixtureSampler::Component> comps;
    for (auto [center, weight] : centers_weights) {
        comps.push_back(
            {weight, std::make_shared<NormalSampler>(center, sd)});
    }
    MixtureSampler mixture(std::move(comps));
    Xoshiro256 gen(seed);
    return mixture.sampleMany(gen, n);
}

TEST(Bandwidth, SilvermanMatchesFormula)
{
    Xoshiro256 gen(1);
    NormalSampler sampler(0.0, 2.0);
    auto xs = sampler.sampleMany(gen, 1000);
    double sd = stddev(xs);
    double iqr_scaled = iqr(xs) / 1.34;
    double expected =
        0.9 * std::min(sd, iqr_scaled) * std::pow(1000.0, -0.2);
    EXPECT_NEAR(kdeBandwidth(xs, BandwidthRule::Silverman), expected,
                1e-12);
}

TEST(Bandwidth, PositiveForDegenerateSample)
{
    std::vector<double> xs(20, 5.0);
    EXPECT_GT(kdeBandwidth(xs, BandwidthRule::Silverman), 0.0);
    EXPECT_GT(kdeBandwidth(xs, BandwidthRule::Scott), 0.0);
}

TEST(Kde, DensityIntegratesToOne)
{
    Xoshiro256 gen(2);
    NormalSampler sampler(10.0, 1.5);
    Kde kde(sampler.sampleMany(gen, 800));
    auto grid = kde.evaluateGrid(512);
    double integral = 0.0;
    for (size_t i = 1; i < grid.x.size(); ++i) {
        integral += 0.5 * (grid.density[i] + grid.density[i - 1]) *
                    (grid.x[i] - grid.x[i - 1]);
    }
    EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(Kde, PeaksNearTrueMean)
{
    Xoshiro256 gen(3);
    NormalSampler sampler(5.0, 1.0);
    Kde kde(sampler.sampleMany(gen, 2000));
    auto grid = kde.evaluateGrid(512);
    size_t argmax = 0;
    for (size_t i = 1; i < grid.density.size(); ++i) {
        if (grid.density[i] > grid.density[argmax])
            argmax = i;
    }
    EXPECT_NEAR(grid.x[argmax], 5.0, 0.3);
}

TEST(Kde, WindowedEvaluationMatchesFullSum)
{
    // The 8-bandwidth window optimization must not change results
    // beyond numerical noise.
    Xoshiro256 gen(4);
    UniformSampler sampler(0.0, 100.0);
    auto xs = sampler.sampleMany(gen, 500);
    Kde kde(xs, 0.5); // narrow bandwidth: window matters
    double x0 = 50.0;
    double brute = 0.0;
    double norm = 1.0 / (500.0 * 0.5 * std::sqrt(2.0 * M_PI));
    for (double v : xs) {
        double z = (x0 - v) / 0.5;
        brute += std::exp(-0.5 * z * z);
    }
    EXPECT_NEAR(kde(x0), norm * brute, 1e-9);
}

TEST(FindModes, UnimodalNormal)
{
    Xoshiro256 gen(5);
    NormalSampler sampler(10.0, 1.0);
    auto modes = findModes(sampler.sampleMany(gen, 2000), 0.15);
    EXPECT_EQ(modes.size(), 1u);
    EXPECT_NEAR(modes[0].location, 10.0, 0.3);
    EXPECT_NEAR(modes[0].mass, 1.0, 1e-9);
}

TEST(FindModes, BimodalSeparated)
{
    auto xs = mixtureSample({{0.0, 0.6}, {6.0, 0.4}}, 0.5, 3000, 6);
    auto modes = findModes(xs, 0.15);
    ASSERT_EQ(modes.size(), 2u);
    EXPECT_NEAR(modes[0].location, 0.0, 0.4);
    EXPECT_NEAR(modes[1].location, 6.0, 0.4);
    // Masses track the mixture weights.
    EXPECT_NEAR(modes[0].mass, 0.6, 0.07);
    EXPECT_NEAR(modes[1].mass, 0.4, 0.07);
}

TEST(FindModes, TrimodalSeparated)
{
    auto xs = mixtureSample({{0.0, 0.4}, {5.0, 0.35}, {10.0, 0.25}}, 0.4,
                            4000, 7);
    EXPECT_EQ(countModes(xs, 0.15), 3u);
}

TEST(FindModes, MassesSumToOne)
{
    auto xs = mixtureSample({{0.0, 0.5}, {8.0, 0.5}}, 0.6, 2000, 8);
    auto modes = findModes(xs, 0.1);
    double total = 0.0;
    for (const auto &mode : modes)
        total += mode.mass;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(FindModes, ProminenceFiltersMinorWiggles)
{
    // A tiny satellite bump below the prominence threshold is ignored.
    auto xs = mixtureSample({{0.0, 0.97}, {6.0, 0.03}}, 0.5, 4000, 9);
    auto strict = findModes(xs, 0.30);
    EXPECT_EQ(strict.size(), 1u);
    auto lax = findModes(xs, 0.01);
    EXPECT_GE(lax.size(), 2u);
}

TEST(FindModes, DegenerateSampleSinglePointMass)
{
    std::vector<double> xs(50, 4.2);
    auto modes = findModes(xs);
    ASSERT_EQ(modes.size(), 1u);
    EXPECT_DOUBLE_EQ(modes[0].location, 4.2);
    EXPECT_DOUBLE_EQ(modes[0].mass, 1.0);
}

TEST(FindModes, RejectsBadArguments)
{
    EXPECT_THROW(findModes({}, 0.1), std::invalid_argument);
    EXPECT_THROW(findModes({1.0, 2.0}, 0.0), std::invalid_argument);
    EXPECT_THROW(findModes({1.0, 2.0}, 1.0), std::invalid_argument);
}

} // anonymous namespace
