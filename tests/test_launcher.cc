/**
 * @file
 * Tests for the Launcher: orchestration of warmups, concurrency,
 * stopping, logging, and failure handling.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/stopping/fixed_rule.hh"
#include "core/stopping/ks_rule.hh"
#include "launcher/launcher.hh"
#include "launcher/sim_backend.hh"
#include "sim/machine.hh"
#include "sim/rodinia.hh"
#include "util/message.hh"

namespace
{

using namespace sharp::launcher;
using namespace sharp::core;
using namespace sharp::sim;

std::shared_ptr<SimBackend>
bfsBackend(uint64_t seed = 1)
{
    return std::make_shared<SimBackend>(rodiniaByName("bfs"),
                                        machineById("machine1"), 0,
                                        seed);
}

TEST(Launcher, FixedRuleRunsExactCount)
{
    LaunchOptions opts;
    opts.maxSamples = 500;
    Launcher launcher(bfsBackend(), std::make_unique<FixedCountRule>(50),
                      opts);
    LaunchReport report = launcher.launch();
    EXPECT_TRUE(report.ruleFired);
    EXPECT_EQ(report.series.size(), 50u);
    EXPECT_EQ(report.rounds, 50u);
    EXPECT_EQ(report.log.size(), 50u);
}

TEST(Launcher, WarmupRoundsLoggedAndFlagged)
{
    LaunchOptions opts;
    opts.warmupRounds = 3;
    Launcher launcher(bfsBackend(), std::make_unique<FixedCountRule>(10),
                      opts);
    LaunchReport report = launcher.launch();
    EXPECT_EQ(report.series.size(), 10u);
    // 3 warmup + 10 measured records.
    EXPECT_EQ(report.log.size(), 13u);
    int warmups = 0;
    for (const auto &rec : report.log.records())
        warmups += rec.warmup;
    EXPECT_EQ(warmups, 3);
    // Warmup values are excluded from the analyzed series.
    EXPECT_EQ(report.log.primaryValues().size(), 10u);
}

TEST(Launcher, ConcurrencyLogsOneRowPerInstance)
{
    LaunchOptions opts;
    opts.concurrency = 4;
    Launcher launcher(bfsBackend(), std::make_unique<FixedCountRule>(20),
                      opts);
    LaunchReport report = launcher.launch();
    // 20 samples at 4 per round = 5 rounds.
    EXPECT_EQ(report.rounds, 5u);
    EXPECT_EQ(report.series.size(), 20u);
    EXPECT_EQ(report.log.size(), 20u);
    // Instance indices 0..3 appear.
    bool saw_instance3 = false;
    for (const auto &rec : report.log.records())
        saw_instance3 |= rec.instance == 3;
    EXPECT_TRUE(saw_instance3);
}

TEST(Launcher, KsRuleStopsEarly)
{
    LaunchOptions opts;
    opts.maxSamples = 2000;
    Launcher launcher(bfsBackend(),
                      std::make_unique<KsHalvesRule>(0.1, 20), opts);
    LaunchReport report = launcher.launch();
    EXPECT_TRUE(report.ruleFired);
    EXPECT_LT(report.series.size(), 2000u);
    EXPECT_TRUE(report.finalDecision.stop);
}

TEST(Launcher, MaxSamplesCapRespected)
{
    LaunchOptions opts;
    opts.maxSamples = 30;
    Launcher launcher(bfsBackend(),
                      std::make_unique<FixedCountRule>(100000), opts);
    LaunchReport report = launcher.launch();
    EXPECT_FALSE(report.ruleFired);
    EXPECT_EQ(report.series.size(), 30u);
    EXPECT_NE(report.finalDecision.reason.find("maxSamples"),
              std::string::npos);
}

TEST(Launcher, LogCarriesConfiguration)
{
    Launcher launcher(bfsBackend(), std::make_unique<FixedCountRule>(5));
    LaunchReport report = launcher.launch();
    auto metadata = report.log.toMetadata();
    EXPECT_EQ(metadata.get("Configuration", "backend").value_or(""),
              "sim");
    EXPECT_EQ(metadata.get("Configuration", "stopped_by").value_or(""),
              "fixed");
    EXPECT_FALSE(
        metadata.get("Configuration", "stopping_rule")->empty());
}

TEST(Launcher, SeriesMatchesLoggedPrimaryValues)
{
    Launcher launcher(bfsBackend(7),
                      std::make_unique<FixedCountRule>(25));
    LaunchReport report = launcher.launch();
    auto logged = report.log.primaryValues();
    ASSERT_EQ(logged.size(), report.series.size());
    for (size_t i = 0; i < logged.size(); ++i)
        EXPECT_DOUBLE_EQ(logged[i], report.series[i]);
}

/** A backend that always fails, for failure-handling tests. */
class FailingBackend : public Backend
{
  public:
    std::string name() const override { return "failing"; }
    std::string workloadName() const override { return "doomed"; }

    RunResult
    run() override
    {
        RunResult res;
        res.success = false;
        res.error = "synthetic failure";
        return res;
    }
};

TEST(Launcher, AbortsAfterTooManyFailures)
{
    std::string captured;
    sharp::util::setMessageCapture(&captured);
    LaunchOptions opts;
    opts.maxFailures = 5;
    opts.maxSamples = 100;
    Launcher launcher(std::make_shared<FailingBackend>(),
                      std::make_unique<FixedCountRule>(50), opts);
    LaunchReport report = launcher.launch();
    sharp::util::setMessageCapture(nullptr);

    EXPECT_TRUE(report.aborted);
    EXPECT_EQ(report.series.size(), 0u);
    EXPECT_GT(report.failures, 5u);
    EXPECT_NE(report.finalDecision.reason.find("aborted"),
              std::string::npos);
    EXPECT_NE(captured.find("synthetic failure"), std::string::npos);
}

TEST(Launcher, RejectsInvalidConstruction)
{
    EXPECT_THROW(
        Launcher(nullptr, std::make_unique<FixedCountRule>(5)),
        std::invalid_argument);
    EXPECT_THROW(Launcher(bfsBackend(), nullptr), std::invalid_argument);
    LaunchOptions bad;
    bad.concurrency = 0;
    EXPECT_THROW(
        Launcher(bfsBackend(), std::make_unique<FixedCountRule>(5), bad),
        std::invalid_argument);
}

TEST(Launcher, DayPropagatedToBackendAndLog)
{
    LaunchOptions opts;
    opts.day = 3;
    auto backend = bfsBackend();
    Launcher launcher(backend, std::make_unique<FixedCountRule>(5),
                      opts);
    LaunchReport report = launcher.launch();
    EXPECT_EQ(backend->day(), 3);
    for (const auto &rec : report.log.records())
        EXPECT_EQ(rec.day, 3);
}

} // anonymous namespace
