/**
 * @file
 * Tests for the Launcher: orchestration of warmups, concurrency,
 * stopping, logging, and failure handling.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>

#include "core/stopping/fixed_rule.hh"
#include "core/stopping/ks_rule.hh"
#include "launcher/launcher.hh"
#include "launcher/sim_backend.hh"
#include "record/journal.hh"
#include "sim/machine.hh"
#include "sim/rodinia.hh"
#include "util/message.hh"

namespace
{

using namespace sharp::launcher;
using namespace sharp::core;
using namespace sharp::sim;

std::shared_ptr<SimBackend>
bfsBackend(uint64_t seed = 1)
{
    return std::make_shared<SimBackend>(rodiniaByName("bfs"),
                                        machineById("machine1"), 0,
                                        seed);
}

TEST(Launcher, FixedRuleRunsExactCount)
{
    LaunchOptions opts;
    opts.maxSamples = 500;
    Launcher launcher(bfsBackend(), std::make_unique<FixedCountRule>(50),
                      opts);
    LaunchReport report = launcher.launch();
    EXPECT_TRUE(report.ruleFired);
    EXPECT_EQ(report.series.size(), 50u);
    EXPECT_EQ(report.rounds, 50u);
    EXPECT_EQ(report.log.size(), 50u);
}

TEST(Launcher, WarmupRoundsLoggedAndFlagged)
{
    LaunchOptions opts;
    opts.warmupRounds = 3;
    Launcher launcher(bfsBackend(), std::make_unique<FixedCountRule>(10),
                      opts);
    LaunchReport report = launcher.launch();
    EXPECT_EQ(report.series.size(), 10u);
    // 3 warmup + 10 measured records.
    EXPECT_EQ(report.log.size(), 13u);
    int warmups = 0;
    for (const auto &rec : report.log.records())
        warmups += rec.warmup;
    EXPECT_EQ(warmups, 3);
    // Warmup values are excluded from the analyzed series.
    EXPECT_EQ(report.log.primaryValues().size(), 10u);
}

TEST(Launcher, ConcurrencyLogsOneRowPerInstance)
{
    LaunchOptions opts;
    opts.concurrency = 4;
    Launcher launcher(bfsBackend(), std::make_unique<FixedCountRule>(20),
                      opts);
    LaunchReport report = launcher.launch();
    // 20 samples at 4 per round = 5 rounds.
    EXPECT_EQ(report.rounds, 5u);
    EXPECT_EQ(report.series.size(), 20u);
    EXPECT_EQ(report.log.size(), 20u);
    // Instance indices 0..3 appear.
    bool saw_instance3 = false;
    for (const auto &rec : report.log.records())
        saw_instance3 |= rec.instance == 3;
    EXPECT_TRUE(saw_instance3);
}

TEST(Launcher, KsRuleStopsEarly)
{
    LaunchOptions opts;
    opts.maxSamples = 2000;
    Launcher launcher(bfsBackend(),
                      std::make_unique<KsHalvesRule>(0.1, 20), opts);
    LaunchReport report = launcher.launch();
    EXPECT_TRUE(report.ruleFired);
    EXPECT_LT(report.series.size(), 2000u);
    EXPECT_TRUE(report.finalDecision.stop);
}

TEST(Launcher, MaxSamplesCapRespected)
{
    LaunchOptions opts;
    opts.maxSamples = 30;
    Launcher launcher(bfsBackend(),
                      std::make_unique<FixedCountRule>(100000), opts);
    LaunchReport report = launcher.launch();
    EXPECT_FALSE(report.ruleFired);
    EXPECT_EQ(report.series.size(), 30u);
    EXPECT_NE(report.finalDecision.reason.find("maxSamples"),
              std::string::npos);
}

TEST(Launcher, LogCarriesConfiguration)
{
    Launcher launcher(bfsBackend(), std::make_unique<FixedCountRule>(5));
    LaunchReport report = launcher.launch();
    auto metadata = report.log.toMetadata();
    EXPECT_EQ(metadata.get("Configuration", "backend").value_or(""),
              "sim");
    EXPECT_EQ(metadata.get("Configuration", "stopped_by").value_or(""),
              "fixed");
    EXPECT_FALSE(
        metadata.get("Configuration", "stopping_rule")->empty());
}

TEST(Launcher, SeriesMatchesLoggedPrimaryValues)
{
    Launcher launcher(bfsBackend(7),
                      std::make_unique<FixedCountRule>(25));
    LaunchReport report = launcher.launch();
    auto logged = report.log.primaryValues();
    ASSERT_EQ(logged.size(), report.series.size());
    for (size_t i = 0; i < logged.size(); ++i)
        EXPECT_DOUBLE_EQ(logged[i], report.series[i]);
}

/** A backend that always fails, for failure-handling tests. */
class FailingBackend : public Backend
{
  public:
    std::string name() const override { return "failing"; }
    std::string workloadName() const override { return "doomed"; }

    RunResult
    run() override
    {
        RunResult res;
        res.success = false;
        res.error = "synthetic failure";
        return res;
    }
};

TEST(Launcher, AbortsAtExactlyMaxFailures)
{
    std::string captured;
    sharp::util::setMessageCapture(&captured);
    LaunchOptions opts;
    opts.maxFailures = 5;
    opts.maxSamples = 100;
    Launcher launcher(std::make_shared<FailingBackend>(),
                      std::make_unique<FixedCountRule>(50), opts);
    LaunchReport report = launcher.launch();
    sharp::util::setMessageCapture(nullptr);

    EXPECT_TRUE(report.aborted);
    EXPECT_EQ(report.series.size(), 0u);
    // Regression pin for the old off-by-one: exactly maxFailures
    // failures trigger the abort, not maxFailures + 1.
    EXPECT_EQ(report.failures, 5u);
    EXPECT_NE(report.finalDecision.reason.find("aborted"),
              std::string::npos);
    // The abort message names the workload and the kind histogram.
    EXPECT_NE(report.finalDecision.reason.find("doomed"),
              std::string::npos);
    EXPECT_NE(
        report.finalDecision.reason.find("backend-unavailable=5"),
        std::string::npos);
    EXPECT_NE(captured.find("synthetic failure"), std::string::npos);
}

TEST(Launcher, MaxFailuresZeroToleratesNoFailure)
{
    std::string captured;
    sharp::util::setMessageCapture(&captured);
    LaunchOptions opts;
    opts.maxFailures = 0;
    Launcher launcher(std::make_shared<FailingBackend>(),
                      std::make_unique<FixedCountRule>(10), opts);
    LaunchReport report = launcher.launch();
    sharp::util::setMessageCapture(nullptr);
    EXPECT_TRUE(report.aborted);
    EXPECT_EQ(report.failures, 1u);
}

TEST(Launcher, ClassifiesKindlessFailuresAsBackendUnavailable)
{
    std::string captured;
    sharp::util::setMessageCapture(&captured);
    LaunchOptions opts;
    opts.maxFailures = 1;
    Launcher launcher(std::make_shared<FailingBackend>(),
                      std::make_unique<FixedCountRule>(10), opts);
    LaunchReport report = launcher.launch();
    sharp::util::setMessageCapture(nullptr);
    ASSERT_EQ(report.log.size(), 1u);
    EXPECT_EQ(report.log.records()[0].failure,
              sharp::record::FailureKind::BackendUnavailable);
    EXPECT_EQ(
        report.failuresByKind
            .at(sharp::record::FailureKind::BackendUnavailable),
        1u);
}

/**
 * Fails every odd invocation with a retryable kind; succeeds
 * otherwise. Deterministic, so retry accounting is exact.
 */
class FlakyBackend : public Backend
{
  public:
    explicit FlakyBackend(FailureKind kind_in = FailureKind::NonzeroExit)
        : kind(kind_in)
    {
    }

    std::string name() const override { return "flaky"; }
    std::string workloadName() const override { return "coinflip"; }

    RunResult
    run() override
    {
        size_t index = calls++;
        if (index % 2 == 0)
            return RunResult::failure(kind, "flaky failure");
        RunResult res;
        res.metrics["execution_time"] =
            1.0 + static_cast<double>(index);
        return res;
    }

    size_t calls = 0;

  private:
    FailureKind kind;
};

TEST(Launcher, RetryRecoversFlakyRuns)
{
    std::string captured;
    sharp::util::setMessageCapture(&captured);
    LaunchOptions opts;
    opts.maxFailures = 1;
    opts.retry.maxAttempts = 2;
    Launcher launcher(std::make_shared<FlakyBackend>(),
                      std::make_unique<FixedCountRule>(10), opts);
    LaunchReport report = launcher.launch();
    sharp::util::setMessageCapture(nullptr);

    // Every invocation fails once and succeeds on its retry.
    EXPECT_FALSE(report.aborted);
    EXPECT_EQ(report.failures, 0u);
    EXPECT_EQ(report.series.size(), 10u);
    EXPECT_EQ(report.retries, 10u);
    // Both attempts are logged as tidy rows.
    EXPECT_EQ(report.log.size(), 20u);
    size_t retried_rows = 0;
    for (const auto &rec : report.log.records()) {
        if (rec.attempt == 1) {
            ++retried_rows;
            EXPECT_TRUE(rec.succeeded());
        } else {
            EXPECT_EQ(rec.failure, FailureKind::NonzeroExit);
        }
    }
    EXPECT_EQ(retried_rows, 10u);
    // Only the final attempts feed the series.
    EXPECT_EQ(report.log.primaryValues().size(), 10u);
}

TEST(Launcher, RetryKindFilterSkipsNonRetryableFailures)
{
    std::string captured;
    sharp::util::setMessageCapture(&captured);
    LaunchOptions opts;
    opts.maxFailures = 3;
    opts.retry.maxAttempts = 3;
    opts.retry.retryableKinds = {FailureKind::Timeout};
    Launcher launcher(
        std::make_shared<FlakyBackend>(FailureKind::NonzeroExit),
        std::make_unique<FixedCountRule>(10), opts);
    LaunchReport report = launcher.launch();
    sharp::util::setMessageCapture(nullptr);

    // NonzeroExit is not in the filter: no retries, failures count up.
    EXPECT_EQ(report.retries, 0u);
    EXPECT_TRUE(report.aborted);
    EXPECT_EQ(report.failures, 3u);
}

/** Alternates success/failure to exercise the failure-rate policy. */
TEST(Launcher, FailureRatePolicyAborts)
{
    std::string captured;
    sharp::util::setMessageCapture(&captured);
    LaunchOptions opts;
    opts.maxFailures = 1000; // cap out of the way
    opts.maxFailureRate = 0.2;
    opts.failureRateMinRuns = 10;
    Launcher launcher(std::make_shared<FlakyBackend>(),
                      std::make_unique<FixedCountRule>(100), opts);
    LaunchReport report = launcher.launch();
    sharp::util::setMessageCapture(nullptr);

    // Half the invocations fail; the rate policy trips as soon as it
    // is armed at failureRateMinRuns completed invocations.
    EXPECT_TRUE(report.aborted);
    EXPECT_EQ(report.failures + report.series.size(), 10u);
    EXPECT_NE(report.finalDecision.reason.find("rate"),
              std::string::npos);
}

TEST(Launcher, InterruptFlagStopsBetweenRounds)
{
    std::atomic<bool> flag{true};
    LaunchOptions opts;
    opts.interruptFlag = &flag;
    Launcher launcher(bfsBackend(),
                      std::make_unique<FixedCountRule>(50), opts);
    LaunchReport report = launcher.launch();
    EXPECT_TRUE(report.interrupted);
    EXPECT_FALSE(report.ruleFired);
    EXPECT_EQ(report.series.size(), 0u);
    // No journal attached: the campaign is interrupted but NOT
    // resumable, and the decision must not claim otherwise.
    auto metadata = report.log.toMetadata();
    EXPECT_EQ(metadata.get("Configuration", "resumable").value_or(""),
              "false");
    EXPECT_EQ(report.finalDecision.reason.find("resumable"),
              std::string::npos);
    EXPECT_EQ(metadata.get("Configuration", "stopped_by").value_or(""),
              "interrupt");
}

TEST(Launcher, InterruptWithJournalReportsResumable)
{
    std::string path =
        (std::filesystem::temp_directory_path() /
         "sharp_launcher_interrupt.jsonl")
            .string();
    std::filesystem::remove(path);
    sharp::record::RunJournal journal(path);
    std::atomic<bool> flag{true};
    LaunchOptions opts;
    opts.interruptFlag = &flag;
    opts.journal = &journal;
    Launcher launcher(bfsBackend(),
                      std::make_unique<FixedCountRule>(50), opts);
    LaunchReport report = launcher.launch();
    EXPECT_TRUE(report.interrupted);
    auto metadata = report.log.toMetadata();
    EXPECT_EQ(metadata.get("Configuration", "resumable").value_or(""),
              "true");
    EXPECT_NE(report.finalDecision.reason.find("resumable"),
              std::string::npos);
    std::filesystem::remove(path);
}

TEST(Launcher, RejectsInvalidConstruction)
{
    EXPECT_THROW(
        Launcher(nullptr, std::make_unique<FixedCountRule>(5)),
        std::invalid_argument);
    EXPECT_THROW(Launcher(bfsBackend(), nullptr), std::invalid_argument);
    LaunchOptions bad;
    bad.concurrency = 0;
    EXPECT_THROW(
        Launcher(bfsBackend(), std::make_unique<FixedCountRule>(5), bad),
        std::invalid_argument);
}

TEST(Launcher, DayPropagatedToBackendAndLog)
{
    LaunchOptions opts;
    opts.day = 3;
    auto backend = bfsBackend();
    Launcher launcher(backend, std::make_unique<FixedCountRule>(5),
                      opts);
    LaunchReport report = launcher.launch();
    EXPECT_EQ(backend->day(), 3);
    for (const auto &rec : report.log.records())
        EXPECT_EQ(rec.day, 3);
}

} // anonymous namespace
