/**
 * @file
 * Tests for `sharp-lint`: the token scanner, each rule's name,
 * severity, and file:line:column (pinned against the seeded defect
 * fixtures), suppression comments, the path allowlists, the 0/1/2
 * exit contract — and the self-host gate: `src/` must lint clean.
 */

#include <gtest/gtest.h>

#include "check/diagnostic.hh"
#include "lint/lexer.hh"
#include "lint/linter.hh"

namespace
{

using namespace sharp;
using check::CheckResult;
using check::Severity;
using lint::Token;
using lint::TokenKind;

std::string
fixture(const std::string &name)
{
    return std::string(SHARP_SOURCE_DIR) + "/tests/fixtures/lint/" +
           name;
}

/** First diagnostic carrying @p rule; nullptr when absent. */
const check::Diagnostic *
findRule(const CheckResult &result, const std::string &rule)
{
    for (const auto &diagnostic : result.diagnostics()) {
        if (diagnostic.rule == rule)
            return &diagnostic;
    }
    return nullptr;
}

CheckResult
lintFixture(const std::string &name)
{
    CheckResult result;
    lint::lintSourceFile(fixture(name), result);
    return result;
}

TEST(LintLexer, TracksLineAndColumnOneBased)
{
    auto tokens = lint::lexCpp("int a;\n  foo();\n");
    ASSERT_GE(tokens.size(), 5u);
    EXPECT_EQ(tokens[0].text, "int");
    EXPECT_EQ(tokens[0].line, 1u);
    EXPECT_EQ(tokens[0].column, 1u);
    EXPECT_EQ(tokens[1].text, "a");
    EXPECT_EQ(tokens[1].column, 5u);
    EXPECT_EQ(tokens[3].text, "foo");
    EXPECT_EQ(tokens[3].line, 2u);
    EXPECT_EQ(tokens[3].column, 3u);
}

TEST(LintLexer, CommentsAreTokensAndStringsAreOpaque)
{
    auto tokens =
        lint::lexCpp("// fsync in a comment\nf(\"fsync inside\");\n");
    ASSERT_GE(tokens.size(), 2u);
    EXPECT_EQ(tokens[0].kind, TokenKind::Comment);
    EXPECT_EQ(tokens[0].text, "// fsync in a comment");
    // The identifier "fsync" never appears as an Identifier token.
    for (const Token &token : tokens) {
        if (token.kind == TokenKind::Identifier) {
            EXPECT_NE(token.text, "fsync");
        }
    }
}

TEST(LintLexer, RawStringsAndFusedPunctuators)
{
    auto tokens = lint::lexCpp("x = R\"(a \" b)\"; p->q; a::b;\n");
    ASSERT_FALSE(tokens.empty());
    bool saw_raw = false, saw_arrow = false, saw_scope = false;
    for (const Token &token : tokens) {
        if (token.kind == TokenKind::String &&
            token.text.find("a \" b") != std::string::npos)
            saw_raw = true;
        if (token.kind == TokenKind::Punct && token.text == "->")
            saw_arrow = true;
        if (token.kind == TokenKind::Punct && token.text == "::")
            saw_scope = true;
    }
    EXPECT_TRUE(saw_raw);
    EXPECT_TRUE(saw_arrow);
    EXPECT_TRUE(saw_scope);
}

TEST(LintLexer, SurvivesMalformedInput)
{
    // Unterminated constructs must not throw or hang.
    EXPECT_NO_THROW(lint::lexCpp("\"never closed"));
    EXPECT_NO_THROW(lint::lexCpp("/* never closed"));
    EXPECT_NO_THROW(lint::lexCpp("R\"(never closed"));
    EXPECT_NO_THROW(lint::lexCpp("'x"));
}

TEST(LintRules, WallClockFixturePinsNameSeverityAndLocation)
{
    CheckResult result = lintFixture("wall_clock.cc");
    EXPECT_EQ(result.errorCount(), 3u);
    const auto *finding = findRule(result, "no-wall-clock");
    ASSERT_NE(finding, nullptr);
    EXPECT_EQ(finding->severity, Severity::Error);
    EXPECT_EQ(finding->line, 9u);
    EXPECT_EQ(finding->column, 10u);
    EXPECT_NE(finding->message.find("random_device"),
              std::string::npos);
    // time(nullptr) and rand() are the other two pinned findings.
    EXPECT_EQ(result.diagnostics()[1].line, 16u);
    EXPECT_EQ(result.diagnostics()[1].column, 12u);
    EXPECT_EQ(result.diagnostics()[2].line, 22u);
    EXPECT_EQ(result.diagnostics()[2].column, 12u);
}

TEST(LintRules, JournalDisciplineFixture)
{
    CheckResult result = lintFixture("journal_discipline.cc");
    const auto *finding =
        findRule(result, "journal-append-discipline");
    ASSERT_NE(finding, nullptr);
    EXPECT_EQ(finding->severity, Severity::Error);
    EXPECT_EQ(finding->line, 11u);
    EXPECT_EQ(finding->column, 9u);
}

TEST(LintRules, SeedWidthFixtureCatchesReadAndWrite)
{
    CheckResult result = lintFixture("seed_width.cc");
    EXPECT_EQ(result.errorCount(), 2u);
    const auto *finding = findRule(result, "seed-width");
    ASSERT_NE(finding, nullptr);
    EXPECT_EQ(finding->severity, Severity::Error);
    EXPECT_EQ(finding->line, 11u);
    EXPECT_EQ(finding->column, 13u);
    EXPECT_EQ(result.diagnostics()[1].line, 17u);
    EXPECT_EQ(result.diagnostics()[1].column, 9u);
}

TEST(LintRules, EintrGuardFixture)
{
    CheckResult result = lintFixture("eintr.cc");
    const auto *finding = findRule(result, "eintr-guard");
    ASSERT_NE(finding, nullptr);
    EXPECT_EQ(finding->severity, Severity::Error);
    EXPECT_EQ(finding->line, 10u);
    EXPECT_EQ(finding->column, 22u);
}

TEST(LintRules, EintrHandledLoopIsClean)
{
    CheckResult result;
    lint::lintSourceText("loop.cc",
                         "long f(int fd, char *b, unsigned long n) {\n"
                         "  while (n > 0) {\n"
                         "    long got = ::read(fd, b, n);\n"
                         "    if (got < 0 && errno == EINTR)\n"
                         "      continue;\n"
                         "    if (got <= 0) break;\n"
                         "    n -= (unsigned long)got;\n"
                         "  }\n"
                         "  return 0;\n"
                         "}\n",
                         result);
    EXPECT_TRUE(result.clean()) << result.renderText();
}

TEST(LintRules, UncheckedSyscallFixtureIsWarningSeverity)
{
    CheckResult result = lintFixture("unchecked.cc");
    EXPECT_EQ(result.errorCount(), 0u);
    const auto *finding = findRule(result, "unchecked-syscall");
    ASSERT_NE(finding, nullptr);
    EXPECT_EQ(finding->severity, Severity::Warning);
    EXPECT_EQ(finding->line, 8u);
    EXPECT_EQ(finding->column, 5u);
    EXPECT_EQ(result.exitCode(), 1);
}

TEST(LintRules, ConsumedSyscallResultIsClean)
{
    CheckResult result;
    lint::lintSourceText("consumed.cc",
                         "void f(int fd) {\n"
                         "  if (ftruncate(fd, 0) != 0)\n"
                         "    return;\n"
                         "  long n = ::write(fd, \"x\", 1);\n"
                         "  (void)n;\n"
                         "}\n",
                         result);
    EXPECT_TRUE(result.clean()) << result.renderText();
}

TEST(LintRules, SuppressionCommentsSilenceFindings)
{
    CheckResult result = lintFixture("suppressed_clean.cc");
    EXPECT_TRUE(result.clean()) << result.renderText();
}

TEST(LintRules, SuppressionIsRuleSpecific)
{
    CheckResult result;
    lint::lintSourceText("s.cc",
                         "// sharp-lint: allow(eintr-guard)\n"
                         "long t = time(nullptr);\n",
                         result);
    // The comment allows a different rule; no-wall-clock still fires.
    EXPECT_NE(findRule(result, "no-wall-clock"), nullptr);
}

TEST(LintRules, TimeUtilsPathIsAllowlistedForWallClock)
{
    const std::string text =
        "double now() { return std::chrono::system_clock::now()"
        ".time_since_epoch().count(); }\n";
    CheckResult allowlisted;
    lint::lintSourceText("src/util/time_utils.cc", text, allowlisted);
    EXPECT_TRUE(allowlisted.clean());
    CheckResult elsewhere;
    lint::lintSourceText("src/core/other.cc", text, elsewhere);
    EXPECT_NE(findRule(elsewhere, "no-wall-clock"), nullptr);
}

TEST(LintRules, JournalHelperHomeIsAllowlisted)
{
    const std::string text = "void f(int fd) { int r = fsync(fd); "
                             "(void)r; }\n";
    CheckResult allowlisted;
    lint::lintSourceText("src/record/journal.cc", text, allowlisted);
    EXPECT_TRUE(allowlisted.clean());
    CheckResult elsewhere;
    lint::lintSourceText("src/serve/queue.cc", text, elsewhere);
    EXPECT_NE(findRule(elsewhere, "journal-append-discipline"),
              nullptr);
}

TEST(LintRules, IntrinsicsFixturePinsNameSeverityAndLocation)
{
    CheckResult result = lintFixture("intrinsics.cc");
    EXPECT_EQ(result.errorCount(), 5u);
    const auto *finding = findRule(result, "intrinsics-confined");
    ASSERT_NE(finding, nullptr);
    EXPECT_EQ(finding->severity, Severity::Error);
    // First finding is the include of <immintrin.h>.
    EXPECT_EQ(finding->line, 4u);
    EXPECT_EQ(finding->column, 11u);
    EXPECT_NE(finding->message.find("immintrin"), std::string::npos);
    // The remaining pinned findings: __m256d declaration, the two
    // _mm256_* calls, and the NEON load.
    ASSERT_EQ(result.diagnostics().size(), 5u);
    EXPECT_EQ(result.diagnostics()[1].line, 9u);
    EXPECT_EQ(result.diagnostics()[1].column, 5u);
    EXPECT_EQ(result.diagnostics()[2].line, 9u);
    EXPECT_EQ(result.diagnostics()[2].column, 17u);
    EXPECT_EQ(result.diagnostics()[3].line, 11u);
    EXPECT_EQ(result.diagnostics()[3].column, 5u);
    EXPECT_EQ(result.diagnostics()[4].line, 19u);
    EXPECT_EQ(result.diagnostics()[4].column, 12u);
}

TEST(LintRules, SimdHomeIsAllowlistedForIntrinsics)
{
    const std::string text =
        "#include <immintrin.h>\n"
        "double f(const double *p) {\n"
        "  __m256d v = _mm256_loadu_pd(p);\n"
        "  return _mm256_cvtsd_f64(v);\n"
        "}\n";
    CheckResult allowlisted;
    lint::lintSourceText("src/simd/avx2.cc", text, allowlisted);
    EXPECT_TRUE(allowlisted.clean()) << allowlisted.renderText();
    CheckResult elsewhere;
    lint::lintSourceText("src/stats/ecdf.cc", text, elsewhere);
    EXPECT_NE(findRule(elsewhere, "intrinsics-confined"), nullptr);
}

TEST(LintPaths, FixtureDirectoryExitsTwo)
{
    CheckResult result = lint::lintPaths({fixture("")});
    EXPECT_GT(result.errorCount(), 0u);
    EXPECT_EQ(result.exitCode(), 2);
}

TEST(LintPaths, SelfHostSrcIsClean)
{
    // The linter's own acceptance gate: the shipped sources obey every
    // invariant the linter enforces.
    CheckResult result =
        lint::lintPaths({std::string(SHARP_SOURCE_DIR) + "/src"});
    EXPECT_TRUE(result.clean()) << result.renderText();
    EXPECT_EQ(result.exitCode(), 0);
}

TEST(LintCatalog, NamesSeveritiesAndOrderAreStable)
{
    const auto &catalog = lint::ruleCatalog();
    ASSERT_EQ(catalog.size(), 6u);
    EXPECT_STREQ(catalog[0].name, "no-wall-clock");
    EXPECT_STREQ(catalog[1].name, "journal-append-discipline");
    EXPECT_STREQ(catalog[2].name, "seed-width");
    EXPECT_STREQ(catalog[3].name, "eintr-guard");
    EXPECT_STREQ(catalog[4].name, "unchecked-syscall");
    EXPECT_STREQ(catalog[5].name, "intrinsics-confined");
    for (size_t i = 0; i < catalog.size(); ++i) {
        EXPECT_EQ(catalog[i].severity, i == 4 ? Severity::Warning
                                              : Severity::Error)
            << catalog[i].name;
    }
}

} // namespace
