/**
 * @file
 * Tests for the simulated testbed registries: the three machines of
 * Table III and the twenty Rodinia benchmarks of Table II, including
 * the Fig. 4 modality census.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/machine.hh"
#include "sim/rodinia.hh"

namespace
{

using namespace sharp::sim;

TEST(MachineRegistry, HasThreeMachinesOfTable3)
{
    const auto &machines = machineRegistry();
    ASSERT_EQ(machines.size(), 3u);

    const MachineSpec &m1 = machines[0];
    EXPECT_EQ(m1.id, "machine1");
    EXPECT_EQ(m1.cpu, "AMD EPYC 7443");
    EXPECT_EQ(m1.cores, 48);
    EXPECT_EQ(m1.ramGib, 256);
    ASSERT_TRUE(m1.hasGpu());
    EXPECT_EQ(m1.gpu->name, "Nvidia A100X 80GB");

    const MachineSpec &m2 = machines[1];
    EXPECT_EQ(m2.ramGib, 230);
    EXPECT_FALSE(m2.hasGpu());

    const MachineSpec &m3 = machines[2];
    EXPECT_EQ(m3.cores, 96);
    EXPECT_EQ(m3.ramGib, 1024);
    ASSERT_TRUE(m3.hasGpu());
    EXPECT_EQ(m3.gpu->name, "Nvidia H100 80GB");
    // The H100 is the newer GPU generation.
    EXPECT_GT(m3.gpu->generationFactor, m1.gpu->generationFactor);
}

TEST(MachineRegistry, LookupById)
{
    EXPECT_EQ(machineById("machine3").cores, 96);
    EXPECT_THROW(machineById("machine9"), std::out_of_range);
}

TEST(RodiniaRegistry, TwentyBenchmarksElevenCpuNineCuda)
{
    EXPECT_EQ(rodiniaRegistry().size(), 20u);
    EXPECT_EQ(rodiniaCpuBenchmarks().size(), 11u);
    EXPECT_EQ(rodiniaCudaBenchmarks().size(), 9u);
}

TEST(RodiniaRegistry, Table2ParametersPreserved)
{
    EXPECT_EQ(rodiniaByName("backprop").parameters, "6553600");
    EXPECT_EQ(rodiniaByName("bfs").parameters, "graph1MW_6.txt");
    EXPECT_EQ(rodiniaByName("hotspot").parameters,
              "1024, 1024, 2, 4, temp_1024, power_1024");
    EXPECT_EQ(rodiniaByName("kmeans").parameters, "4, kdd_cup");
    EXPECT_EQ(rodiniaByName("sc-CUDA").parameters,
              "10, 20, 256, 65536, 65536, 1000, none, 1");
}

TEST(RodiniaRegistry, ModalityCensusMatchesFig4)
{
    // Fig. 4 / §I Q1: 30% unimodal, 40% bimodal, 20% trimodal,
    // 10% with more than three modes.
    std::map<size_t, int> census;
    for (const auto &bench : rodiniaRegistry())
        ++census[std::min<size_t>(bench.numModes(), 4)];
    EXPECT_EQ(census[1], 6);  // 30% of 20
    EXPECT_EQ(census[2], 8);  // 40%
    EXPECT_EQ(census[3], 4);  // 20%
    EXPECT_EQ(census[4], 2);  // 10%
}

TEST(RodiniaRegistry, ModeWeightsArePositive)
{
    for (const auto &bench : rodiniaRegistry()) {
        ASSERT_FALSE(bench.modes.empty()) << bench.name;
        for (const auto &mode : bench.modes) {
            EXPECT_GT(mode.weight, 0.0) << bench.name;
            EXPECT_GT(mode.multiplier, 0.0) << bench.name;
            EXPECT_GT(mode.sigmaFraction, 0.0) << bench.name;
        }
        // The primary mode is the fastest one at multiplier 1.
        EXPECT_DOUBLE_EQ(bench.modes.front().multiplier, 1.0)
            << bench.name;
    }
}

TEST(RodiniaRegistry, GpuSensitivitySpansPaperRange)
{
    // Speedups on the H100 (gen 2.0) are 1 + sensitivity, and must
    // span the paper's 1.2x..2x with bfs at the top and srad at the
    // bottom (Figs. 8 and 9).
    double lo = 2.0, hi = 0.0;
    for (const auto &bench : rodiniaCudaBenchmarks()) {
        EXPECT_GE(bench.gpuSensitivity, 0.2) << bench.name;
        EXPECT_LE(bench.gpuSensitivity, 1.0) << bench.name;
        lo = std::min(lo, bench.gpuSensitivity);
        hi = std::max(hi, bench.gpuSensitivity);
    }
    EXPECT_DOUBLE_EQ(rodiniaByName("bfs-CUDA").gpuSensitivity, 1.0);
    EXPECT_DOUBLE_EQ(rodiniaByName("srad-CUDA").gpuSensitivity, 0.2);
    EXPECT_DOUBLE_EQ(lo, 0.2);
    EXPECT_DOUBLE_EQ(hi, 1.0);
}

TEST(RodiniaRegistry, CpuBenchmarksIgnoreGpu)
{
    for (const auto &bench : rodiniaCpuBenchmarks())
        EXPECT_DOUBLE_EQ(bench.gpuSensitivity, 0.0) << bench.name;
}

TEST(RodiniaRegistry, HotspotDropsModesOften)
{
    // hotspot drives the Fig. 5c day-3-vs-day-5 effect, so its mode
    // structure must be volatile day to day.
    const auto &hotspot = rodiniaByName("hotspot");
    EXPECT_EQ(hotspot.numModes(), 3u);
    EXPECT_GE(hotspot.modeDropProbability, 0.3);
}

TEST(RodiniaRegistry, UnknownBenchmarkThrows)
{
    EXPECT_THROW(rodiniaByName("linpack"), std::out_of_range);
}

TEST(RodiniaRegistry, ScBaseMatchesTable5Scale)
{
    // Table V: sc at concurrency 1 on Machine 3 averages 3.46 s. The
    // model's base and mode structure must put the machine-3 mean in
    // that neighborhood (checked precisely in test_faas.cc).
    const auto &sc = rodiniaByName("sc");
    EXPECT_NEAR(sc.baseSeconds, 3.7, 0.5);
}

} // anonymous namespace
