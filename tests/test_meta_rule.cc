/**
 * @file
 * Tests for the stopping meta-heuristic: it must classify the stream
 * online and delegate to the rule tailored to that class (§IV-c).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/stopping/meta_rule.hh"
#include "rng/synthetic.hh"
#include "rng/xoshiro.hh"

namespace
{

using namespace sharp::core;
using sharp::rng::Xoshiro256;
using sharp::rng::syntheticByName;

/** Run the meta rule on a synthetic stream; return (runs, delegate). */
std::pair<size_t, std::string>
runMeta(const std::string &synthetic, uint64_t seed, size_t cap = 5000)
{
    Xoshiro256 gen(seed);
    auto sampler = syntheticByName(synthetic).make();
    MetaRule rule;
    SampleSeries series;
    while (series.size() < cap) {
        series.append(sampler->sample(gen));
        if (series.size() < rule.minSamples())
            continue;
        if (rule.evaluate(series).stop)
            break;
    }
    return {series.size(), rule.delegate().name()};
}

/**
 * Delegate chosen once the stream is long enough for classification to
 * settle, ignoring stop decisions along the way. Some seeds are
 * misclassified early (the paper's classifier is not perfect); this
 * probes the class->rule mapping rather than early-stop behavior.
 */
std::string
delegateAt(const std::string &synthetic, uint64_t seed, size_t n)
{
    Xoshiro256 gen(seed);
    auto sampler = syntheticByName(synthetic).make();
    MetaRule rule;
    SampleSeries series;
    while (series.size() < n) {
        series.append(sampler->sample(gen));
        if (series.size() >= rule.minSamples())
            rule.evaluate(series);
    }
    return rule.delegate().name();
}

TEST(MetaRule, DelegatesConstantToConstantRule)
{
    auto [runs, delegate] = runMeta("constant", 1);
    EXPECT_EQ(delegate, "constant");
    EXPECT_EQ(runs, 30u); // fires right at the warmup floor
}

TEST(MetaRule, DelegatesNormalToNormalCi)
{
    auto [runs, delegate] = runMeta("normal", 2);
    EXPECT_EQ(delegate, "normal-ci");
    EXPECT_LT(runs, 1500u);
}

TEST(MetaRule, DelegatesLogNormalToGeoMeanCi)
{
    auto [runs, delegate] = runMeta("lognormal", 3);
    EXPECT_EQ(delegate, "geomean-ci");
    (void)runs;
}

TEST(MetaRule, DelegatesUniformToRangeRule)
{
    auto [runs, delegate] = runMeta("uniform", 4);
    EXPECT_EQ(delegate, "uniform-range");
    EXPECT_LT(runs, 1000u);
}

TEST(MetaRule, DelegatesCauchyToMedianCi)
{
    // Seed 5 reads as lognormal until ~110 samples, so probe the
    // mapping after classification settles.
    EXPECT_EQ(delegateAt("cauchy", 5, 300), "median-ci");
    auto [runs, delegate] = runMeta("cauchy", 7);
    EXPECT_EQ(delegate, "median-ci");
    (void)runs;
}

TEST(MetaRule, DelegatesSinusoidalToEssRule)
{
    auto [runs, delegate] = runMeta("sinusoidal", 6);
    EXPECT_EQ(delegate, "autocorr-ess");
    // Correlated data must not stop immediately.
    EXPECT_GT(runs, 50u);
}

TEST(MetaRule, DelegatesMultimodalToModalityRule)
{
    // Both streams read as unimodal for the first hundred-odd samples;
    // probe the mapping after the modes separate.
    EXPECT_EQ(delegateAt("bimodal", 7, 300), "modality");
    EXPECT_EQ(delegateAt("multimodal", 8, 300), "modality");
}

/**
 * Regression pin for the regime-switch hysteresis (the shift veto in
 * MetaRule::Config). A heavy-tailed stream whose median-CI delegate is
 * about to fire gets a level switch injected shortly before the stop:
 * median and CI barely move (that is what robust statistics are for),
 * so without the veto the rule stops inside the first post-switch
 * window and the summary never represents the new regime. The
 * unguarded arm (shiftWindow = 0) reproduces that original defect;
 * the guarded arm must hold the stop until well past the window, and
 * must still terminate once the new regime dominates the series.
 */
TEST(MetaRule, ShiftVetoHoldsStopAcrossARegimeSwitch)
{
    constexpr size_t kSwitchAt = 80;
    constexpr size_t kWindow = 20; // MetaRule::Config default
    constexpr size_t kCap = 600;
    constexpr uint64_t kSeed = 23;

    auto stopOf = [&](MetaRule::Config config) {
        Xoshiro256 gen(kSeed);
        MetaRule rule(config);
        SampleSeries series;
        while (series.size() < kCap) {
            // Cauchy(10, 0.5) switching to Cauchy(14, 0.5): the level
            // jump is ~8 IQRs, unmissable to a window median, yet the
            // whole-series median moves by well under the stop
            // criterion's resolution at 80 samples.
            double location = series.size() < kSwitchAt ? 10.0 : 14.0;
            double u = gen.nextDoubleOpen();
            series.append(location +
                          0.5 * std::tan(M_PI * (u - 0.5)));
            if (series.size() >= rule.minSamples() &&
                rule.evaluate(series).stop) {
                break;
            }
        }
        return series.size();
    };

    MetaRule::Config unguarded;
    unguarded.shiftWindow = 0;
    size_t unguardedStop = stopOf(unguarded);
    // The defect being pinned: without hysteresis the stop lands
    // inside the first post-switch window.
    ASSERT_GT(unguardedStop, kSwitchAt);
    ASSERT_LE(unguardedStop, kSwitchAt + kWindow);

    size_t guardedStop = stopOf(MetaRule::Config{});
    EXPECT_GT(guardedStop, kSwitchAt + kWindow);
    // The veto releases once the new regime dominates: no livelock.
    EXPECT_LT(guardedStop, kCap);
}

TEST(MetaRule, AlwaysTerminatesOnEverySynthetic)
{
    for (const auto &spec : sharp::rng::syntheticRegistry()) {
        auto [runs, delegate] = runMeta(spec.name, 99, 20000);
        EXPECT_LT(runs, 20000u)
            << spec.name << " never stopped (delegate " << delegate
            << ")";
    }
}

TEST(MetaRule, ReasonNamesClassAndDelegate)
{
    Xoshiro256 gen(10);
    auto sampler = syntheticByName("normal").make();
    MetaRule rule;
    SampleSeries series;
    StopDecision last;
    while (series.size() < 500) {
        series.append(sampler->sample(gen));
        if (series.size() < rule.minSamples())
            continue;
        last = rule.evaluate(series);
        if (last.stop)
            break;
    }
    EXPECT_NE(last.reason.find("["), std::string::npos);
    EXPECT_NE(last.reason.find("->"), std::string::npos);
}

TEST(MetaRule, ResetRestoresInitialDelegate)
{
    Xoshiro256 gen(11);
    auto sampler = syntheticByName("constant").make();
    MetaRule rule;
    SampleSeries series;
    for (int i = 0; i < 40; ++i)
        series.append(sampler->sample(gen));
    rule.evaluate(series);
    EXPECT_EQ(rule.delegate().name(), "constant");
    rule.reset();
    EXPECT_EQ(rule.delegate().name(), "ks");
    EXPECT_EQ(rule.classification().cls, DistributionClass::Unknown);
}

TEST(MetaRule, HonorsConfiguredWarmup)
{
    MetaRule::Config config;
    config.minRuns = 100;
    MetaRule rule(config);
    SampleSeries series;
    for (int i = 0; i < 99; ++i)
        series.append(5.0);
    EXPECT_FALSE(rule.evaluate(series).stop);
    EXPECT_EQ(rule.minSamples(), 100u);
}

TEST(MetaRule, SavesRunsVsFixed1000OnEasyDistributions)
{
    // The headline economics: adaptive stopping beats a fixed large N
    // on well-behaved streams (Fig. 1b / §V-C).
    size_t total = 0;
    size_t budget = 0;
    for (const auto &name :
         {"normal", "constant", "uniform", "lognormal"}) {
        auto [runs, delegate] = runMeta(name, 21, 1000);
        (void)delegate;
        total += runs;
        budget += 1000;
    }
    EXPECT_LT(total, budget / 2);
}

} // anonymous namespace
