/**
 * @file
 * Tests for the metadata document: the render/parse round trip that
 * lets SHARP recreate an experiment from its own records (§IV-d), and
 * the system-info capture.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "record/metadata.hh"
#include "record/sysinfo.hh"
#include "sim/machine.hh"

namespace
{

using namespace sharp::record;

MetadataDocument
sampleDoc()
{
    MetadataDocument doc;
    doc.setTitle("hotspot on machine2");
    doc.set("Experiment", "name", "hotspot");
    doc.set("Experiment", "runs", "1000");
    doc.set("Configuration", "rule", "ks");
    doc.set("Configuration", "threshold", 0.1);
    return doc;
}

TEST(Metadata, SetAndGet)
{
    MetadataDocument doc = sampleDoc();
    EXPECT_EQ(doc.get("Experiment", "name").value(), "hotspot");
    EXPECT_EQ(doc.getNumber("Configuration", "threshold").value(), 0.1);
    EXPECT_FALSE(doc.get("Experiment", "nope").has_value());
    EXPECT_FALSE(doc.get("NoSection", "name").has_value());
    EXPECT_TRUE(doc.hasSection("Configuration"));
    EXPECT_FALSE(doc.hasSection("Zilch"));
}

TEST(Metadata, SetReplacesInPlace)
{
    MetadataDocument doc;
    doc.set("S", "k", "1");
    doc.set("S", "k", "2");
    EXPECT_EQ(doc.get("S", "k").value(), "2");
    EXPECT_EQ(doc.sections().front().entries.size(), 1u);
}

TEST(Metadata, RenderContainsMarkdownStructure)
{
    std::string text = sampleDoc().render();
    EXPECT_NE(text.find("# hotspot on machine2"), std::string::npos);
    EXPECT_NE(text.find("## Experiment"), std::string::npos);
    EXPECT_NE(text.find("- **name**: hotspot"), std::string::npos);
}

TEST(Metadata, RoundTripIsIdentity)
{
    MetadataDocument doc = sampleDoc();
    MetadataDocument again = MetadataDocument::parse(doc.render());
    EXPECT_TRUE(doc == again);
    // And stable under repeated round trips.
    MetadataDocument third = MetadataDocument::parse(again.render());
    EXPECT_TRUE(again == third);
}

TEST(Metadata, ParseToleratesNarrativeLines)
{
    std::string text = "# title\n\nSome prose a human added.\n\n"
                       "## Sec\n\nMore prose.\n- **k**: v\n";
    MetadataDocument doc = MetadataDocument::parse(text);
    EXPECT_EQ(doc.get("Sec", "k").value(), "v");
    EXPECT_EQ(doc.getTitle(), "title");
}

TEST(Metadata, ParseRejectsMalformedEntries)
{
    EXPECT_THROW(MetadataDocument::parse("## S\n- **broken entry\n"),
                 std::runtime_error);
    EXPECT_THROW(MetadataDocument::parse("- **k**: orphan\n"),
                 std::runtime_error);
}

TEST(Metadata, ValuesWithColonsSurvive)
{
    MetadataDocument doc;
    doc.set("S", "time", "2024-08-01T10:00:00Z");
    MetadataDocument again = MetadataDocument::parse(doc.render());
    EXPECT_EQ(again.get("S", "time").value(), "2024-08-01T10:00:00Z");
}

TEST(Metadata, SaveAndLoad)
{
    namespace fs = std::filesystem;
    fs::path path = fs::temp_directory_path() / "sharp_test_meta.md";
    MetadataDocument doc = sampleDoc();
    doc.save(path.string());
    MetadataDocument loaded = MetadataDocument::load(path.string());
    EXPECT_TRUE(doc == loaded);
    fs::remove(path);
}

TEST(SysInfo, CapturesRealHost)
{
    SystemInfo info = captureHostInfo();
    EXPECT_FALSE(info.os.empty());
    EXPECT_GT(info.cpuCores, 0);
    EXPECT_GT(info.memoryMib, 0);
    EXPECT_FALSE(info.simulated);
}

TEST(SysInfo, DescribesSimulatedMachine)
{
    SystemInfo info =
        describeSimulatedMachine(sharp::sim::machineById("machine3"));
    EXPECT_EQ(info.hostname, "machine3");
    EXPECT_EQ(info.cpuCores, 96);
    EXPECT_EQ(info.memoryMib, 1024 * 1024);
    EXPECT_EQ(info.gpuModel, "Nvidia H100 80GB");
    EXPECT_TRUE(info.simulated);
}

TEST(SysInfo, MetadataRoundTrip)
{
    SystemInfo info =
        describeSimulatedMachine(sharp::sim::machineById("machine1"));
    MetadataDocument doc;
    info.addToMetadata(doc);
    SystemInfo again = SystemInfo::fromMetadata(doc);
    EXPECT_EQ(again.hostname, info.hostname);
    EXPECT_EQ(again.cpuModel, info.cpuModel);
    EXPECT_EQ(again.cpuCores, info.cpuCores);
    EXPECT_EQ(again.memoryMib, info.memoryMib);
    EXPECT_EQ(again.gpuModel, info.gpuModel);
    EXPECT_EQ(again.simulated, info.simulated);
}

TEST(SysInfo, GpulessMachineRoundTripsAsNone)
{
    SystemInfo info =
        describeSimulatedMachine(sharp::sim::machineById("machine2"));
    MetadataDocument doc;
    info.addToMetadata(doc);
    EXPECT_EQ(doc.get("System Under Test", "gpu_model").value(), "none");
    EXPECT_TRUE(SystemInfo::fromMetadata(doc).gpuModel.empty());
}

} // anonymous namespace
