/**
 * @file
 * Tests for the microbenchmark probes: real host measurements that
 * must be finite, positive, and orchestratable through the launcher.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/stopping/fixed_rule.hh"
#include "launcher/launcher.hh"
#include "micro/micro.hh"
#include "micro/micro_backend.hh"
#include "util/time_utils.hh"

namespace
{

using namespace sharp;
using micro::microByName;
using micro::microRegistry;

TEST(MicroRegistry, HasElevenProbesLikeThePaper)
{
    EXPECT_EQ(microRegistry().size(), 11u);
    for (const auto &probe : microRegistry()) {
        EXPECT_FALSE(probe.name.empty());
        EXPECT_FALSE(probe.description.empty());
        EXPECT_FALSE(probe.unit.empty());
        ASSERT_TRUE(static_cast<bool>(probe.run)) << probe.name;
    }
}

TEST(MicroRegistry, LookupByName)
{
    EXPECT_EQ(microByName("syscall").unit, "ns/op");
    EXPECT_FALSE(microByName("mem-seq-read").smallerIsBetter);
    EXPECT_THROW(microByName("warp-drive"), std::out_of_range);
}

TEST(MicroProbes, EveryProbeProducesFinitePositiveValues)
{
    for (const auto &probe : microRegistry()) {
        double value = probe.run();
        EXPECT_TRUE(std::isfinite(value)) << probe.name;
        EXPECT_GT(value, 0.0) << probe.name;
    }
}

TEST(MicroProbes, ComputeProbesAreFast)
{
    // A probe call must stay cheap enough for adaptive experiments.
    for (const char *name : {"alu-ops", "fp-ops", "mem-seq-read",
                             "malloc-churn", "syscall"}) {
        const auto &probe = microByName(name);
        util::Stopwatch watch;
        probe.run();
        EXPECT_LT(watch.elapsedSeconds(), 0.25) << name;
    }
}

TEST(MicroProbes, SleepPrecisionIsAtLeastOne)
{
    // You can never undersleep.
    EXPECT_GE(microByName("sleep-precision").run(), 1.0);
}

TEST(MicroProbes, RandomLatencyExceedsPerElementSequentialCost)
{
    // A dependent random chase must cost (much) more per access than
    // streaming reads; compare against the sequential bandwidth probe
    // converted to ns per 8-byte element. Take the best of three runs
    // on each side: descheduling under a parallel test load only ever
    // makes a probe look slower, so the minimum is the honest reading.
    double rand_ns = microByName("mem-rand-latency").run();
    double seq_mbps = microByName("mem-seq-read").run();
    for (int i = 0; i < 2; ++i) {
        rand_ns = std::min(rand_ns, microByName("mem-rand-latency").run());
        seq_mbps = std::max(seq_mbps, microByName("mem-seq-read").run());
    }
    double seq_ns_per_elem = 8.0 / (seq_mbps * 1024.0 * 1024.0) * 1e9;
    EXPECT_GT(rand_ns, seq_ns_per_elem);
}

TEST(MicroBackend, ReportsValueAndExecutionTime)
{
    micro::MicroBackend backend(microByName("alu-ops"));
    auto result = backend.run();
    ASSERT_TRUE(result.success) << result.error;
    EXPECT_DOUBLE_EQ(result.metric("value"),
                     result.metric("execution_time"));
    EXPECT_EQ(backend.workloadName(), "alu-ops");
    EXPECT_EQ(backend.name(), "micro");
}

TEST(MicroBackend, LauncherOrchestratesRealMeasurements)
{
    auto backend = std::make_shared<micro::MicroBackend>(
        microByName("syscall"));
    launcher::LaunchOptions options;
    options.warmupRounds = 1;
    options.maxSamples = 100;
    launcher::Launcher l(backend,
                         std::make_unique<core::FixedCountRule>(15),
                         options);
    auto report = l.launch();
    EXPECT_TRUE(report.ruleFired);
    ASSERT_EQ(report.series.size(), 15u);
    for (double v : report.series.values())
        EXPECT_GT(v, 0.0);
    // Logged rows carry the probe name.
    EXPECT_EQ(report.log.records().front().workload, "syscall");
}

} // anonymous namespace
