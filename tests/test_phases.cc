/**
 * @file
 * Tests for the phase-resolved leukocyte model behind use case 1
 * (Fig. 7): total = detection + tracking (+ overhead), detection is
 * unimodal, tracking is bimodal, and the bimodality propagates into
 * the total.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sim/phases.hh"
#include "stats/descriptive.hh"
#include "stats/kde.hh"

namespace
{

using namespace sharp::sim;
namespace stats = sharp::stats;

std::vector<PhasedSample>
draw(size_t n, uint64_t seed = 1)
{
    PhasedWorkload workload(machineById("machine1"), seed);
    return workload.sampleMany(n);
}

TEST(Phases, TotalDominatedByPhases)
{
    for (const auto &s : draw(500)) {
        EXPECT_GT(s.total, s.detection + s.tracking);
        // Overhead is small: < 10% of the total.
        EXPECT_LT(s.total, (s.detection + s.tracking) * 1.1);
    }
}

TEST(Phases, AllTimesPositive)
{
    for (const auto &s : draw(500)) {
        EXPECT_GT(s.detection, 0.0);
        EXPECT_GT(s.tracking, 0.0);
        EXPECT_GT(s.total, 0.0);
    }
}

TEST(Phases, DetectionIsUnimodal)
{
    auto samples = draw(4000, 2);
    std::vector<double> detection;
    for (const auto &s : samples)
        detection.push_back(s.detection);
    EXPECT_EQ(stats::findModes(detection, 0.15).size(), 1u);
}

TEST(Phases, TrackingIsBimodal)
{
    auto samples = draw(4000, 3);
    std::vector<double> tracking;
    for (const auto &s : samples)
        tracking.push_back(s.tracking);
    EXPECT_EQ(stats::findModes(tracking, 0.15).size(), 2u);
}

TEST(Phases, BimodalityPropagatesToTotal)
{
    // Fig. 7's insight: "the dual modes in the overall execution time
    // were introduced in the tracking phase".
    auto samples = draw(4000, 4);
    std::vector<double> total;
    for (const auto &s : samples)
        total.push_back(s.total);
    EXPECT_EQ(stats::findModes(total, 0.15).size(), 2u);
}

TEST(Phases, SlowTrackingModeNearTwelvePercent)
{
    auto samples = draw(6000, 5);
    std::vector<double> tracking;
    for (const auto &s : samples)
        tracking.push_back(s.tracking);
    auto modes = stats::findModes(tracking, 0.15);
    ASSERT_EQ(modes.size(), 2u);
    EXPECT_NEAR(modes[1].location / modes[0].location, 1.12, 0.02);
    // Slow mode carries ~35% of the mass.
    EXPECT_NEAR(modes[1].mass, 0.35, 0.06);
}

TEST(Phases, DeterministicGivenSeed)
{
    PhasedWorkload a(machineById("machine1"), 42);
    PhasedWorkload b(machineById("machine1"), 42);
    for (int i = 0; i < 50; ++i) {
        PhasedSample sa = a.sample();
        PhasedSample sb = b.sample();
        EXPECT_DOUBLE_EQ(sa.total, sb.total);
        EXPECT_DOUBLE_EQ(sa.tracking, sb.tracking);
    }
}

TEST(Phases, FasterMachineShrinksAllPhases)
{
    PhasedWorkload m1_load(machineById("machine1"), 6);
    PhasedWorkload m3_load(machineById("machine3"), 6);
    auto xs1 = m1_load.sampleMany(1000);
    auto xs3 = m3_load.sampleMany(1000);
    std::vector<double> t1, t3;
    for (size_t i = 0; i < 1000; ++i) {
        t1.push_back(xs1[i].total);
        t3.push_back(xs3[i].total);
    }
    EXPECT_GT(stats::mean(t1), stats::mean(t3));
}

TEST(Phases, MetricNamesMatchLoggerColumns)
{
    auto names = PhasedWorkload::metricNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "execution_time");
    EXPECT_EQ(names[1], "detection_time");
    EXPECT_EQ(names[2], "tracking_time");
}

} // anonymous namespace
