/**
 * @file
 * Parameterized property tests: invariants that must hold across the
 * whole cross-product of distributions, rules, benchmarks, and
 * machines — the sweeps TEST_P exists for.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/stopping/stopping_rule.hh"
#include "rng/synthetic.hh"
#include "sim/machine.hh"
#include "sim/rodinia.hh"
#include "sim/workload.hh"
#include "stats/ci.hh"
#include "stats/descriptive.hh"
#include "stats/ecdf.hh"
#include "stats/histogram.hh"
#include "stats/similarity.hh"

namespace
{

using namespace sharp;

// ---------------------------------------------------------------
// Similarity-metric properties over every synthetic distribution.
// ---------------------------------------------------------------

class SimilarityProperties
    : public ::testing::TestWithParam<const char *>
{
  protected:
    std::vector<double>
    draw(uint64_t seed, size_t n = 400)
    {
        rng::Xoshiro256 gen(seed);
        return rng::syntheticByName(GetParam())
            .make()
            ->sampleMany(gen, n);
    }
};

TEST_P(SimilarityProperties, KsIsAPseudometric)
{
    auto a = draw(1);
    auto b = draw(2);
    auto c = draw(3);
    double ab = stats::ksDistance(a, b);
    double bc = stats::ksDistance(b, c);
    double ac = stats::ksDistance(a, c);
    // Identity, symmetry, bounds, triangle inequality.
    EXPECT_DOUBLE_EQ(stats::ksDistance(a, a), 0.0);
    EXPECT_DOUBLE_EQ(ab, stats::ksDistance(b, a));
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_LE(ac, ab + bc + 1e-12);
}

TEST_P(SimilarityProperties, KsShrinksWithSampleSize)
{
    // Same-distribution KS decays toward 0 as n grows.
    rng::Xoshiro256 gen(7);
    auto sampler_a = rng::syntheticByName(GetParam()).make();
    auto sampler_b = rng::syntheticByName(GetParam()).make();
    double small_ks = stats::ksDistance(sampler_a->sampleMany(gen, 50),
                                        sampler_b->sampleMany(gen, 50));
    auto sampler_c = rng::syntheticByName(GetParam()).make();
    auto sampler_d = rng::syntheticByName(GetParam()).make();
    double large_ks =
        stats::ksDistance(sampler_c->sampleMany(gen, 5000),
                          sampler_d->sampleMany(gen, 5000));
    EXPECT_LE(large_ks, small_ks + 0.05) << GetParam();
}

TEST_P(SimilarityProperties, WassersteinScalesWithShift)
{
    auto a = draw(11);
    std::vector<double> shifted = a;
    for (double &v : shifted)
        v += 2.5;
    EXPECT_NEAR(stats::wasserstein1(a, shifted), 2.5, 1e-9)
        << GetParam();
}

TEST_P(SimilarityProperties, SummaryOrderingInvariants)
{
    auto xs = draw(13, 800);
    auto s = stats::Summary::compute(xs);
    EXPECT_LE(s.min, s.q1);
    EXPECT_LE(s.q1, s.median);
    EXPECT_LE(s.median, s.q3);
    EXPECT_LE(s.q3, s.p95);
    EXPECT_LE(s.p95, s.p99);
    EXPECT_LE(s.p99, s.max);
    EXPECT_GE(s.stddev, 0.0);
    EXPECT_GE(s.mean, s.min);
    EXPECT_LE(s.mean, s.max);
}

TEST_P(SimilarityProperties, HistogramConservesMassUnderAllRules)
{
    auto xs = draw(17, 600);
    for (auto rule :
         {stats::BinRule::Sturges, stats::BinRule::FreedmanDiaconis,
          stats::BinRule::Scott, stats::BinRule::SturgesFdMin}) {
        auto hist = stats::Histogram::build(xs, rule);
        size_t total = 0;
        for (size_t i = 0; i < hist.numBins(); ++i)
            total += hist.count(i);
        EXPECT_EQ(total, xs.size()) << GetParam();
    }
}

TEST_P(SimilarityProperties, KsMonotoneUnderMassSeparation)
{
    // Shifting a sample against itself moves probability mass one way,
    // so D(t) = sup |F(x) - F(x - t)| is non-decreasing in t, and the
    // distance saturates at 1 once the supports are disjoint.
    auto a = draw(19);
    auto [lo, hi] = std::minmax_element(a.begin(), a.end());
    double span = *hi - *lo + 1.0;
    double previous = 0.0; // KS(a, a) == 0
    for (double frac : {0.05, 0.15, 0.4, 1.0}) {
        std::vector<double> shifted = a;
        for (double &v : shifted)
            v += frac * span;
        double d = stats::ksDistance(a, shifted);
        EXPECT_GE(d, previous - 1e-12) << GetParam() << " t=" << frac;
        EXPECT_LE(d, 1.0) << GetParam();
        previous = d;
    }
    EXPECT_DOUBLE_EQ(previous, 1.0) << GetParam(); // disjoint supports
}

// ---------------------------------------------------------------
// NAMD closed-form anchors (the paper's point-summary metric).
// ---------------------------------------------------------------

TEST(NamdClosedForm, MatchesHandComputedPairs)
{
    // Sorted-pair matching, |diff| = 1 each, means 1 and 2:
    // 0.5 * (1/1 + 1/2) * 1 = 0.75.
    EXPECT_DOUBLE_EQ(stats::namd({1, 1, 1, 1}, {2, 2, 2, 2}), 0.75);
    // Pairs (2,4), (4,8): mean |diff| 3, means 3 and 6:
    // 0.5 * (3/3 + 3/6) = 0.75.
    EXPECT_DOUBLE_EQ(stats::namd({2, 4}, {4, 8}), 0.75);
    // One-sided unit shift at mean 10 vs 11.
    EXPECT_DOUBLE_EQ(stats::namd({10}, {11}),
                     0.5 * (1.0 / 10.0 + 1.0 / 11.0));
}

TEST(NamdClosedForm, ZeroOnIdenticalAndSymmetric)
{
    std::vector<double> x = {3.0, 1.0, 4.0, 1.5, 9.0};
    std::vector<double> y = {2.5, 8.0, 1.0, 3.5, 4.0};
    EXPECT_DOUBLE_EQ(stats::namd(x, x), 0.0);
    // Permutation invariance: pairs are matched by sorted order.
    std::vector<double> x_perm = {9.0, 1.0, 1.5, 4.0, 3.0};
    EXPECT_DOUBLE_EQ(stats::namd(x_perm, y), stats::namd(x, y));
    EXPECT_DOUBLE_EQ(stats::namd(x, y), stats::namd(y, x));
}

TEST(NamdClosedForm, RejectsDegenerateInput)
{
    EXPECT_THROW(stats::namd({}, {1.0}), std::invalid_argument);
    EXPECT_THROW(stats::namd({1.0}, {}), std::invalid_argument);
    EXPECT_THROW(stats::namd({-1.0, 1.0}, {2.0, 3.0}),
                 std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    AllSynthetics, SimilarityProperties,
    ::testing::Values("normal", "lognormal", "uniform", "loguniform",
                      "logistic", "bimodal", "multimodal", "sinusoidal",
                      "cauchy"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

// ---------------------------------------------------------------
// Stopping-rule contract over the (rule x synthetic) product.
// ---------------------------------------------------------------

struct RuleCase
{
    const char *rule;
    const char *synthetic;
};

class StoppingRuleContract : public ::testing::TestWithParam<RuleCase>
{
};

TEST_P(StoppingRuleContract, NeverStopsBeforeMinSamplesAndNeverLies)
{
    auto [rule_name, synthetic] = GetParam();
    auto rule = core::StoppingRuleFactory::instance().make(rule_name);
    rng::Xoshiro256 gen(5);
    auto sampler = rng::syntheticByName(synthetic).make();

    core::SampleSeries series;
    for (size_t i = 0; i < 400; ++i) {
        series.append(sampler->sample(gen));
        core::StopDecision decision = rule->evaluate(series);
        if (series.size() < rule->minSamples()) {
            EXPECT_FALSE(decision.stop)
                << rule_name << " fired below its own minimum on "
                << synthetic;
        }
        EXPECT_FALSE(decision.reason.empty()) << rule_name;
        if (decision.stop) {
            // A stop decision must report criterion within threshold
            // semantics (criterion compared against threshold).
            EXPECT_TRUE(std::isfinite(decision.criterion)) << rule_name;
            break;
        }
    }
}

TEST_P(StoppingRuleContract, ResetMakesEvaluationRepeatable)
{
    auto [rule_name, synthetic] = GetParam();
    auto rule = core::StoppingRuleFactory::instance().make(rule_name);
    rng::Xoshiro256 gen(9);
    auto sampler = rng::syntheticByName(synthetic).make();
    core::SampleSeries series;
    for (size_t i = 0; i < 120; ++i)
        series.append(sampler->sample(gen));

    rule->reset();
    core::StopDecision first = rule->evaluate(series);
    rule->reset();
    core::StopDecision second = rule->evaluate(series);
    EXPECT_EQ(first.stop, second.stop) << rule_name;
    EXPECT_DOUBLE_EQ(first.criterion, second.criterion) << rule_name;
}

std::vector<RuleCase>
ruleCases()
{
    std::vector<RuleCase> cases;
    const char *rules[] = {"fixed", "ci", "ks", "constant", "normal-ci",
                           "geomean-ci", "median-ci", "uniform-range",
                           "autocorr-ess", "modality", "tail-quantile",
                           "meta"};
    const char *synthetics[] = {"normal", "lognormal", "bimodal",
                                "cauchy", "constant"};
    for (const char *rule : rules)
        for (const char *synthetic : synthetics)
            cases.push_back({rule, synthetic});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RuleBySynthetic, StoppingRuleContract,
    ::testing::ValuesIn(ruleCases()),
    [](const ::testing::TestParamInfo<RuleCase> &info) {
        std::string name = std::string(info.param.rule) + "_on_" +
                           info.param.synthetic;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------
// CI coverage-direction properties across confidence levels.
// ---------------------------------------------------------------

class CiLevelProperties : public ::testing::TestWithParam<double>
{
};

TEST_P(CiLevelProperties, HigherLevelsGiveWiderIntervals)
{
    double level = GetParam();
    rng::Xoshiro256 gen(21);
    rng::NormalSampler sampler(10.0, 1.0);
    auto xs = sampler.sampleMany(gen, 200);

    auto ci = stats::meanCi(xs, level);
    auto wider = stats::meanCi(xs, std::min(0.999, level + 0.04));
    EXPECT_GE(wider.width(), ci.width());

    auto med = stats::medianCi(xs, level);
    EXPECT_LE(med.lower, stats::median(xs));
    EXPECT_GE(med.upper, stats::median(xs));
}

INSTANTIATE_TEST_SUITE_P(Levels, CiLevelProperties,
                         ::testing::Values(0.5, 0.8, 0.9, 0.95, 0.99));

// ---------------------------------------------------------------
// Simulated-testbed properties over the benchmark x machine grid.
// ---------------------------------------------------------------

struct GridCase
{
    const char *benchmark;
    const char *machine;
};

class WorkloadGrid : public ::testing::TestWithParam<GridCase>
{
};

TEST_P(WorkloadGrid, DeterministicPositiveAndDayStable)
{
    auto [bench_name, machine_id] = GetParam();
    const auto &bench = sim::rodiniaByName(bench_name);
    const auto &machine = sim::machineById(machine_id);
    if (bench.kind == sim::BenchmarkKind::Cuda && !machine.hasGpu())
        GTEST_SKIP() << "CUDA benchmark on GPU-less machine";

    sim::SimulatedWorkload a(bench, machine, 2, 77);
    sim::SimulatedWorkload b(bench, machine, 2, 77);
    auto xs = a.sampleMany(300);
    auto ys = b.sampleMany(300);
    for (size_t i = 0; i < xs.size(); ++i) {
        ASSERT_DOUBLE_EQ(xs[i], ys[i]);
        ASSERT_GT(xs[i], 0.0);
    }

    // Day-to-day means stay within 10% (the Fig. 5 precondition).
    sim::SimulatedWorkload other_day(bench, machine, 3, 77);
    double m0 = stats::mean(xs);
    double m1 = stats::mean(other_day.sampleMany(1000));
    EXPECT_LT(std::fabs(m0 - m1) / m0, 0.1)
        << bench_name << " on " << machine_id;
}

std::vector<GridCase>
gridCases()
{
    std::vector<GridCase> cases;
    for (const char *bench :
         {"backprop", "hotspot", "sc", "bfs-CUDA", "sc-CUDA"})
        for (const char *machine : {"machine1", "machine2", "machine3"})
            cases.push_back({bench, machine});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    BenchmarkMachineGrid, WorkloadGrid, ::testing::ValuesIn(gridCases()),
    [](const ::testing::TestParamInfo<GridCase> &info) {
        std::string name = std::string(info.param.benchmark) + "_" +
                           info.param.machine;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // anonymous namespace
