/**
 * @file
 * Parameterized property tests: invariants that must hold across the
 * whole cross-product of distributions, rules, benchmarks, and
 * machines — the sweeps TEST_P exists for.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "core/sample_series.hh"
#include "core/stats_cache.hh"
#include "core/stopping/stopping_rule.hh"
#include "rng/synthetic.hh"
#include "sim/machine.hh"
#include "sim/rodinia.hh"
#include "sim/workload.hh"
#include "stats/ci.hh"
#include "stats/descriptive.hh"
#include "stats/ecdf.hh"
#include "stats/histogram.hh"
#include "stats/similarity.hh"

namespace
{

using namespace sharp;

// ---------------------------------------------------------------
// Similarity-metric properties over every synthetic distribution.
// ---------------------------------------------------------------

class SimilarityProperties
    : public ::testing::TestWithParam<const char *>
{
  protected:
    std::vector<double>
    draw(uint64_t seed, size_t n = 400)
    {
        rng::Xoshiro256 gen(seed);
        return rng::syntheticByName(GetParam())
            .make()
            ->sampleMany(gen, n);
    }
};

TEST_P(SimilarityProperties, KsIsAPseudometric)
{
    auto a = draw(1);
    auto b = draw(2);
    auto c = draw(3);
    double ab = stats::ksDistance(a, b);
    double bc = stats::ksDistance(b, c);
    double ac = stats::ksDistance(a, c);
    // Identity, symmetry, bounds, triangle inequality.
    EXPECT_DOUBLE_EQ(stats::ksDistance(a, a), 0.0);
    EXPECT_DOUBLE_EQ(ab, stats::ksDistance(b, a));
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_LE(ac, ab + bc + 1e-12);
}

TEST_P(SimilarityProperties, KsShrinksWithSampleSize)
{
    // Same-distribution KS decays toward 0 as n grows.
    rng::Xoshiro256 gen(7);
    auto sampler_a = rng::syntheticByName(GetParam()).make();
    auto sampler_b = rng::syntheticByName(GetParam()).make();
    double small_ks = stats::ksDistance(sampler_a->sampleMany(gen, 50),
                                        sampler_b->sampleMany(gen, 50));
    auto sampler_c = rng::syntheticByName(GetParam()).make();
    auto sampler_d = rng::syntheticByName(GetParam()).make();
    double large_ks =
        stats::ksDistance(sampler_c->sampleMany(gen, 5000),
                          sampler_d->sampleMany(gen, 5000));
    EXPECT_LE(large_ks, small_ks + 0.05) << GetParam();
}

TEST_P(SimilarityProperties, WassersteinScalesWithShift)
{
    auto a = draw(11);
    std::vector<double> shifted = a;
    for (double &v : shifted)
        v += 2.5;
    EXPECT_NEAR(stats::wasserstein1(a, shifted), 2.5, 1e-9)
        << GetParam();
}

TEST_P(SimilarityProperties, SummaryOrderingInvariants)
{
    auto xs = draw(13, 800);
    auto s = stats::Summary::compute(xs);
    EXPECT_LE(s.min, s.q1);
    EXPECT_LE(s.q1, s.median);
    EXPECT_LE(s.median, s.q3);
    EXPECT_LE(s.q3, s.p95);
    EXPECT_LE(s.p95, s.p99);
    EXPECT_LE(s.p99, s.max);
    EXPECT_GE(s.stddev, 0.0);
    EXPECT_GE(s.mean, s.min);
    EXPECT_LE(s.mean, s.max);
}

TEST_P(SimilarityProperties, HistogramConservesMassUnderAllRules)
{
    auto xs = draw(17, 600);
    for (auto rule :
         {stats::BinRule::Sturges, stats::BinRule::FreedmanDiaconis,
          stats::BinRule::Scott, stats::BinRule::SturgesFdMin}) {
        auto hist = stats::Histogram::build(xs, rule);
        size_t total = 0;
        for (size_t i = 0; i < hist.numBins(); ++i)
            total += hist.count(i);
        EXPECT_EQ(total, xs.size()) << GetParam();
    }
}

TEST_P(SimilarityProperties, KsMonotoneUnderMassSeparation)
{
    // Shifting a sample against itself moves probability mass one way,
    // so D(t) = sup |F(x) - F(x - t)| is non-decreasing in t, and the
    // distance saturates at 1 once the supports are disjoint.
    auto a = draw(19);
    auto [lo, hi] = std::minmax_element(a.begin(), a.end());
    double span = *hi - *lo + 1.0;
    double previous = 0.0; // KS(a, a) == 0
    for (double frac : {0.05, 0.15, 0.4, 1.0}) {
        std::vector<double> shifted = a;
        for (double &v : shifted)
            v += frac * span;
        double d = stats::ksDistance(a, shifted);
        EXPECT_GE(d, previous - 1e-12) << GetParam() << " t=" << frac;
        EXPECT_LE(d, 1.0) << GetParam();
        previous = d;
    }
    EXPECT_DOUBLE_EQ(previous, 1.0) << GetParam(); // disjoint supports
}

// ---------------------------------------------------------------
// NAMD closed-form anchors (the paper's point-summary metric).
// ---------------------------------------------------------------

TEST(NamdClosedForm, MatchesHandComputedPairs)
{
    // Sorted-pair matching, |diff| = 1 each, means 1 and 2:
    // 0.5 * (1/1 + 1/2) * 1 = 0.75.
    EXPECT_DOUBLE_EQ(stats::namd({1, 1, 1, 1}, {2, 2, 2, 2}), 0.75);
    // Pairs (2,4), (4,8): mean |diff| 3, means 3 and 6:
    // 0.5 * (3/3 + 3/6) = 0.75.
    EXPECT_DOUBLE_EQ(stats::namd({2, 4}, {4, 8}), 0.75);
    // One-sided unit shift at mean 10 vs 11.
    EXPECT_DOUBLE_EQ(stats::namd({10}, {11}),
                     0.5 * (1.0 / 10.0 + 1.0 / 11.0));
}

TEST(NamdClosedForm, ZeroOnIdenticalAndSymmetric)
{
    std::vector<double> x = {3.0, 1.0, 4.0, 1.5, 9.0};
    std::vector<double> y = {2.5, 8.0, 1.0, 3.5, 4.0};
    EXPECT_DOUBLE_EQ(stats::namd(x, x), 0.0);
    // Permutation invariance: pairs are matched by sorted order.
    std::vector<double> x_perm = {9.0, 1.0, 1.5, 4.0, 3.0};
    EXPECT_DOUBLE_EQ(stats::namd(x_perm, y), stats::namd(x, y));
    EXPECT_DOUBLE_EQ(stats::namd(x, y), stats::namd(y, x));
}

TEST(NamdClosedForm, RejectsDegenerateInput)
{
    EXPECT_THROW(stats::namd({}, {1.0}), std::invalid_argument);
    EXPECT_THROW(stats::namd({1.0}, {}), std::invalid_argument);
    EXPECT_THROW(stats::namd({-1.0, 1.0}, {2.0, 3.0}),
                 std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    AllSynthetics, SimilarityProperties,
    ::testing::Values("normal", "lognormal", "uniform", "loguniform",
                      "logistic", "bimodal", "multimodal", "sinusoidal",
                      "cauchy"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

// ---------------------------------------------------------------
// Stopping-rule contract over the (rule x synthetic) product.
// ---------------------------------------------------------------

struct RuleCase
{
    const char *rule;
    const char *synthetic;
};

class StoppingRuleContract : public ::testing::TestWithParam<RuleCase>
{
};

TEST_P(StoppingRuleContract, NeverStopsBeforeMinSamplesAndNeverLies)
{
    auto [rule_name, synthetic] = GetParam();
    auto rule = core::StoppingRuleFactory::instance().make(rule_name);
    rng::Xoshiro256 gen(5);
    auto sampler = rng::syntheticByName(synthetic).make();

    core::SampleSeries series;
    for (size_t i = 0; i < 400; ++i) {
        series.append(sampler->sample(gen));
        core::StopDecision decision = rule->evaluate(series);
        if (series.size() < rule->minSamples()) {
            EXPECT_FALSE(decision.stop)
                << rule_name << " fired below its own minimum on "
                << synthetic;
        }
        EXPECT_FALSE(decision.reason.empty()) << rule_name;
        if (decision.stop) {
            // A stop decision must report criterion within threshold
            // semantics (criterion compared against threshold).
            EXPECT_TRUE(std::isfinite(decision.criterion)) << rule_name;
            break;
        }
    }
}

TEST_P(StoppingRuleContract, ResetMakesEvaluationRepeatable)
{
    auto [rule_name, synthetic] = GetParam();
    auto rule = core::StoppingRuleFactory::instance().make(rule_name);
    rng::Xoshiro256 gen(9);
    auto sampler = rng::syntheticByName(synthetic).make();
    core::SampleSeries series;
    for (size_t i = 0; i < 120; ++i)
        series.append(sampler->sample(gen));

    rule->reset();
    core::StopDecision first = rule->evaluate(series);
    rule->reset();
    core::StopDecision second = rule->evaluate(series);
    EXPECT_EQ(first.stop, second.stop) << rule_name;
    EXPECT_DOUBLE_EQ(first.criterion, second.criterion) << rule_name;
}

std::vector<RuleCase>
ruleCases()
{
    std::vector<RuleCase> cases;
    const char *rules[] = {"fixed", "ci", "ks", "constant", "normal-ci",
                           "geomean-ci", "median-ci", "uniform-range",
                           "autocorr-ess", "modality", "tail-quantile",
                           "meta"};
    const char *synthetics[] = {"normal", "lognormal", "bimodal",
                                "cauchy", "constant"};
    for (const char *rule : rules)
        for (const char *synthetic : synthetics)
            cases.push_back({rule, synthetic});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RuleBySynthetic, StoppingRuleContract,
    ::testing::ValuesIn(ruleCases()),
    [](const ::testing::TestParamInfo<RuleCase> &info) {
        std::string name = std::string(info.param.rule) + "_on_" +
                           info.param.synthetic;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------
// CI coverage-direction properties across confidence levels.
// ---------------------------------------------------------------

class CiLevelProperties : public ::testing::TestWithParam<double>
{
};

TEST_P(CiLevelProperties, HigherLevelsGiveWiderIntervals)
{
    double level = GetParam();
    rng::Xoshiro256 gen(21);
    rng::NormalSampler sampler(10.0, 1.0);
    auto xs = sampler.sampleMany(gen, 200);

    auto ci = stats::meanCi(xs, level);
    auto wider = stats::meanCi(xs, std::min(0.999, level + 0.04));
    EXPECT_GE(wider.width(), ci.width());

    auto med = stats::medianCi(xs, level);
    EXPECT_LE(med.lower, stats::median(xs));
    EXPECT_GE(med.upper, stats::median(xs));
}

INSTANTIATE_TEST_SUITE_P(Levels, CiLevelProperties,
                         ::testing::Values(0.5, 0.8, 0.9, 0.95, 0.99));

// ---------------------------------------------------------------
// Simulated-testbed properties over the benchmark x machine grid.
// ---------------------------------------------------------------

struct GridCase
{
    const char *benchmark;
    const char *machine;
};

class WorkloadGrid : public ::testing::TestWithParam<GridCase>
{
};

TEST_P(WorkloadGrid, DeterministicPositiveAndDayStable)
{
    auto [bench_name, machine_id] = GetParam();
    const auto &bench = sim::rodiniaByName(bench_name);
    const auto &machine = sim::machineById(machine_id);
    if (bench.kind == sim::BenchmarkKind::Cuda && !machine.hasGpu())
        GTEST_SKIP() << "CUDA benchmark on GPU-less machine";

    sim::SimulatedWorkload a(bench, machine, 2, 77);
    sim::SimulatedWorkload b(bench, machine, 2, 77);
    auto xs = a.sampleMany(300);
    auto ys = b.sampleMany(300);
    for (size_t i = 0; i < xs.size(); ++i) {
        ASSERT_DOUBLE_EQ(xs[i], ys[i]);
        ASSERT_GT(xs[i], 0.0);
    }

    // Day-to-day means stay within 10% (the Fig. 5 precondition).
    sim::SimulatedWorkload other_day(bench, machine, 3, 77);
    double m0 = stats::mean(xs);
    double m1 = stats::mean(other_day.sampleMany(1000));
    EXPECT_LT(std::fabs(m0 - m1) / m0, 0.1)
        << bench_name << " on " << machine_id;
}

std::vector<GridCase>
gridCases()
{
    std::vector<GridCase> cases;
    for (const char *bench :
         {"backprop", "hotspot", "sc", "bfs-CUDA", "sc-CUDA"})
        for (const char *machine : {"machine1", "machine2", "machine3"})
            cases.push_back({bench, machine});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    BenchmarkMachineGrid, WorkloadGrid, ::testing::ValuesIn(gridCases()),
    [](const ::testing::TestParamInfo<GridCase> &info) {
        std::string name = std::string(info.param.benchmark) + "_" +
                           info.param.machine;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------
// Incremental statistics engine: randomized append/read
// interleavings must match batch recomputation bit for bit.
// ---------------------------------------------------------------

/** Bitwise double equality (NaN == NaN, -0.0 != 0.0). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/**
 * Drive one randomized append/read schedule and check every read
 * against a from-scratch batch recomputation with the src/stats
 * functions on a copy of the arrival-order values. The engine must
 * match each one bit for bit, no matter which reads happened before or
 * how the appends were batched.
 */
void
interleave(uint64_t seed,
           const std::function<double(rng::Xoshiro256 &)> &draw)
{
    rng::Xoshiro256 gen(seed);
    core::SampleSeries series;
    std::vector<double> arrived;
    // Randomized schedule: bursts of appends (1..17) interleaved with a
    // randomly chosen read, repeated until ~600 samples.
    while (arrived.size() < 600) {
        size_t burst = 1 + gen.next() % 17;
        for (size_t i = 0; i < burst; ++i) {
            double v = draw(gen);
            series.append(v);
            arrived.push_back(v);
        }
        size_t n = arrived.size();
        std::vector<double> copy = arrived;
        switch (gen.next() % 6) {
        case 0:
            ASSERT_TRUE(sameBits(series.stats().quantile(0.5),
                                 stats::quantile(copy, 0.5)))
                << "median at n=" << n;
            break;
        case 1: {
            if (n < 2)
                break;
            double batch = stats::ksStatistic(series.firstHalf(),
                                              series.secondHalf());
            ASSERT_TRUE(sameBits(series.stats().ksHalves(), batch))
                << "ksHalves at n=" << n;
            break;
        }
        case 2: {
            auto warm = series.stats().medianCi(0.95);
            auto batch = stats::medianCi(copy, 0.95);
            ASSERT_TRUE(sameBits(warm.lower, batch.lower) &&
                        sameBits(warm.upper, batch.upper))
                << "medianCi at n=" << n;
            break;
        }
        case 3: {
            if (n < 2)
                break;
            auto ci = series.stats().meanCi(0.95);
            auto batch = stats::meanCi(copy, 0.95);
            ASSERT_TRUE(sameBits(ci.lower, batch.lower) &&
                        sameBits(ci.upper, batch.upper))
                << "meanCi at n=" << n;
            break;
        }
        case 4: {
            size_t k = gen.next() % n;
            std::sort(copy.begin(), copy.end());
            ASSERT_TRUE(sameBits(series.stats().orderStat(k), copy[k]))
                << "orderStat(" << k << ") at n=" << n;
            break;
        }
        default: {
            size_t count = 1 + gen.next() % n;
            double lo = arrived[0], hi = arrived[0];
            for (size_t i = 1; i < count; ++i) {
                lo = std::min(lo, arrived[i]);
                hi = std::max(hi, arrived[i]);
            }
            auto [cl, ch] = series.stats().prefixRange(count);
            ASSERT_TRUE(sameBits(cl, lo) && sameBits(ch, hi))
                << "prefixRange(" << count << ") at n=" << n;
            break;
        }
        }
    }
}

class StatsEngineProperties
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(StatsEngineProperties, InterleavedReadsMatchBatchBitForBit)
{
    auto sampler = rng::syntheticByName(GetParam()).make();
    for (uint64_t seed : {11u, 12u, 13u})
        interleave(seed, [&](rng::Xoshiro256 &gen) {
            return sampler->sample(gen);
        });
}

TEST(StatsEngineEdgeCases, DuplicateHeavyInterleavingsMatchBatch)
{
    // Small discrete support maximizes ties — the hardest case for the
    // sorted-run merge and the KS tie-group walk. radix 1 is the
    // all-constant series.
    for (uint64_t radix : {1u, 2u, 5u})
        interleave(20 + radix, [radix](rng::Xoshiro256 &gen) {
            return static_cast<double>(gen.next() % radix);
        });
}

TEST(StatsEngineEdgeCases, NanAppendsKeepTheSortedViewDeterministic)
{
    // std::sort on NaN-contaminated data is undefined behavior, so the
    // batch reference here is a comparator sort with NaNs ordered last
    // — the engine's documented ordering. Reads that route through
    // order statistics must agree with it exactly.
    double nan = std::numeric_limits<double>::quiet_NaN();
    rng::Xoshiro256 gen(31);
    core::SampleSeries series;
    std::vector<double> arrived;
    auto nanLast = [](double x, double y) {
        bool xn = std::isnan(x), yn = std::isnan(y);
        if (xn || yn)
            return !xn && yn;
        return x < y;
    };
    while (arrived.size() < 300) {
        size_t burst = 1 + gen.next() % 9;
        for (size_t i = 0; i < burst; ++i) {
            double v = gen.next() % 8 == 0
                           ? nan
                           : static_cast<double>(gen.next() % 100);
            series.append(v);
            arrived.push_back(v);
        }
        std::vector<double> reference = arrived;
        std::stable_sort(reference.begin(), reference.end(), nanLast);
        const auto &sorted = series.stats().sorted();
        ASSERT_EQ(sorted.size(), reference.size());
        for (size_t i = 0; i < reference.size(); ++i)
            ASSERT_TRUE(sameBits(sorted[i], reference[i]))
                << "index " << i << " at n=" << arrived.size();
        size_t k = gen.next() % arrived.size();
        ASSERT_TRUE(sameBits(series.stats().orderStat(k), reference[k]))
            << "orderStat(" << k << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSynthetics, StatsEngineProperties,
    ::testing::Values("normal", "lognormal", "uniform", "bimodal",
                      "cauchy", "constant"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

} // anonymous namespace
