/**
 * @file
 * Tests for OLS and quantile regression (the De Oliveira et al.
 * analysis the paper recommends enabling).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rng/sampler.hh"
#include "stats/regression.hh"

namespace
{

using namespace sharp::stats;
using namespace sharp::rng;

TEST(OlsFit, ExactOnNoiselessLine)
{
    std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
    std::vector<double> y = {5.0, 7.0, 9.0, 11.0}; // y = 3 + 2x
    LinearFit fit = olsFit(x, y);
    EXPECT_NEAR(fit.intercept, 3.0, 1e-10);
    EXPECT_NEAR(fit.slope, 2.0, 1e-10);
    EXPECT_NEAR(fit.goodness, 1.0, 1e-12);
    EXPECT_NEAR(fit.predict(10.0), 23.0, 1e-9);
}

TEST(OlsFit, RecoversSlopeUnderNoise)
{
    Xoshiro256 gen(1);
    NormalSampler noise(0.0, 0.5);
    std::vector<double> x, y;
    for (int i = 0; i < 500; ++i) {
        double xi = static_cast<double>(i) / 50.0;
        x.push_back(xi);
        y.push_back(1.0 + 0.8 * xi + noise.sample(gen));
    }
    LinearFit fit = olsFit(x, y);
    EXPECT_NEAR(fit.slope, 0.8, 0.05);
    EXPECT_NEAR(fit.intercept, 1.0, 0.1);
    EXPECT_GT(fit.goodness, 0.8);
}

TEST(OlsFit, RejectsDegenerateInput)
{
    EXPECT_THROW(olsFit({1.0}, {2.0}), std::invalid_argument);
    EXPECT_THROW(olsFit({1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(olsFit({1.0, 2.0}, {1.0}), std::invalid_argument);
}

TEST(PinballLoss, KnownValues)
{
    // Residuals +1 and -1 at tau=0.9: loss = (0.9*1 + 0.1*1)/2 = 0.5.
    EXPECT_NEAR(pinballLoss({2.0, 0.0}, {1.0, 1.0}, 0.9), 0.5, 1e-12);
    // Perfect prediction: zero loss.
    EXPECT_DOUBLE_EQ(pinballLoss({1.0, 2.0}, {1.0, 2.0}, 0.5), 0.0);
}

TEST(QuantileFit, MedianFitTracksCenterOnSymmetricNoise)
{
    Xoshiro256 gen(2);
    NormalSampler noise(0.0, 1.0);
    std::vector<double> x, y;
    for (int i = 0; i < 800; ++i) {
        double xi = static_cast<double>(i) / 100.0;
        x.push_back(xi);
        y.push_back(2.0 + 1.5 * xi + noise.sample(gen));
    }
    LinearFit fit = quantileFit(x, y, 0.5);
    EXPECT_NEAR(fit.slope, 1.5, 0.1);
    EXPECT_NEAR(fit.intercept, 2.0, 0.25);
}

TEST(QuantileFit, UpperQuantileSitsAboveMedianFit)
{
    Xoshiro256 gen(3);
    // Heteroskedastic noise: spread grows with x, so the q90 line has
    // a visibly steeper slope than the median line — the effect
    // quantile regression exists to expose.
    NormalSampler noise(0.0, 1.0);
    std::vector<double> x, y;
    for (int i = 0; i < 1500; ++i) {
        double xi = static_cast<double>(i % 100) / 10.0;
        x.push_back(xi);
        y.push_back(1.0 + 0.5 * xi +
                    (0.2 + 0.3 * xi) * noise.sample(gen));
    }
    LinearFit med = quantileFit(x, y, 0.5);
    LinearFit q90 = quantileFit(x, y, 0.9);
    EXPECT_GT(q90.slope, med.slope + 0.1);
    // At the high end the q90 prediction clearly exceeds the median's.
    EXPECT_GT(q90.predict(10.0), med.predict(10.0) + 1.0);
}

TEST(QuantileFit, ResidualSignBalanceMatchesTau)
{
    Xoshiro256 gen(4);
    NormalSampler noise(0.0, 2.0);
    std::vector<double> x, y;
    for (int i = 0; i < 1000; ++i) {
        double xi = static_cast<double>(i) / 100.0;
        x.push_back(xi);
        y.push_back(xi + noise.sample(gen));
    }
    LinearFit fit = quantileFit(x, y, 0.8);
    int below = 0;
    for (size_t i = 0; i < x.size(); ++i)
        below += y[i] <= fit.predict(x[i]);
    EXPECT_NEAR(static_cast<double>(below) / 1000.0, 0.8, 0.05);
}

TEST(QuantileFit, RejectsBadArguments)
{
    std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<double> y = x;
    EXPECT_THROW(quantileFit(x, y, 0.0), std::invalid_argument);
    EXPECT_THROW(quantileFit(x, y, 1.0), std::invalid_argument);
    EXPECT_THROW(quantileFit({1, 2, 3}, {1, 2, 3}, 0.5),
                 std::invalid_argument);
}

} // anonymous namespace
