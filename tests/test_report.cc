/**
 * @file
 * Tests for the Reporter: ASCII visualization primitives,
 * single-distribution reports, and two-sample comparison reports.
 */

#include <gtest/gtest.h>

#include "report/ascii_plot.hh"
#include "report/compare.hh"
#include "report/report.hh"
#include "rng/sampler.hh"
#include "sim/machine.hh"
#include "sim/rodinia.hh"
#include "sim/workload.hh"

namespace
{

using namespace sharp::report;
using namespace sharp::rng;

std::vector<double>
normalSample(double mean, double sd, size_t n, uint64_t seed)
{
    Xoshiro256 gen(seed);
    NormalSampler sampler(mean, sd);
    return sampler.sampleMany(gen, n);
}

TEST(AsciiHistogram, ContainsBarsAndCounts)
{
    auto xs = normalSample(10.0, 1.0, 500, 1);
    std::string plot = asciiHistogram(xs);
    EXPECT_NE(plot.find('#'), std::string::npos);
    EXPECT_NE(plot.find('|'), std::string::npos);
    // One line per bin; the paper's bin rule keeps this moderate.
    size_t lines = std::count(plot.begin(), plot.end(), '\n');
    EXPECT_GE(lines, 3u);
    EXPECT_LE(lines, 24u);
}

TEST(AsciiHistogram, DegenerateSample)
{
    std::vector<double> xs(10, 5.0);
    std::string plot = asciiHistogram(xs);
    EXPECT_NE(plot.find("10"), std::string::npos); // the count
}

TEST(AsciiBoxplot, ShowsFiveNumberSummary)
{
    auto xs = normalSample(10.0, 1.0, 200, 2);
    std::string plot = asciiBoxplot(xs);
    EXPECT_NE(plot.find('['), std::string::npos);
    EXPECT_NE(plot.find(']'), std::string::npos);
    EXPECT_NE(plot.find('*'), std::string::npos);
    EXPECT_NE(plot.find("median="), std::string::npos);
}

TEST(AsciiBoxplot, ConstantDataDoesNotCrash)
{
    std::vector<double> xs(10, 3.0);
    EXPECT_NO_THROW(asciiBoxplot(xs));
}

TEST(AsciiHeatmap, RendersMatrixWithScale)
{
    std::vector<std::vector<double>> matrix = {{0.0, 0.1},
                                               {0.2, 0.3}};
    std::string plot = asciiHeatmap(matrix, {"day1", "day2"},
                                    {"day1", "day2"});
    EXPECT_NE(plot.find("day1"), std::string::npos);
    EXPECT_NE(plot.find("scale:"), std::string::npos);
    EXPECT_THROW(asciiHeatmap({{1.0}, {1.0, 2.0}}),
                 std::invalid_argument);
}

TEST(AsciiScatter, PlacesPointsAndLabels)
{
    std::vector<double> x = {0.0, 1.0, 2.0};
    std::vector<double> y = {0.0, 1.0, 4.0};
    std::string plot = asciiScatter(x, y, 40, 10, "NAMD", "KS");
    EXPECT_NE(plot.find('o'), std::string::npos);
    EXPECT_NE(plot.find("NAMD"), std::string::npos);
    EXPECT_NE(plot.find("KS"), std::string::npos);
    EXPECT_THROW(asciiScatter({1.0}, {}), std::invalid_argument);
}

TEST(DistributionReport, FieldsAndRendering)
{
    auto xs = normalSample(10.0, 0.5, 400, 3);
    DistributionReport rep = DistributionReport::analyze("bfs", xs);
    EXPECT_EQ(rep.name, "bfs");
    EXPECT_EQ(rep.summary.n, 400u);
    EXPECT_EQ(rep.modes.size(), 1u);

    std::string md = rep.renderMarkdown();
    EXPECT_NE(md.find("## Distribution report: bfs"),
              std::string::npos);
    EXPECT_NE(md.find("95% CI (mean)"), std::string::npos);
    EXPECT_NE(md.find("Histogram"), std::string::npos);
    EXPECT_NE(md.find("Boxplot"), std::string::npos);
    EXPECT_NE(md.find("Distribution class"), std::string::npos);

    std::string brief = rep.renderBrief();
    EXPECT_NE(brief.find("1 mode(s)"), std::string::npos);
}

TEST(DistributionReport, DetectsBimodalWorkload)
{
    // Real pipeline: simulated leukocyte-like bimodal data in, modality
    // insight out.
    std::vector<MixtureSampler::Component> comps;
    comps.push_back({0.6, std::make_shared<NormalSampler>(10.0, 0.3)});
    comps.push_back({0.4, std::make_shared<NormalSampler>(13.0, 0.3)});
    MixtureSampler mixture(std::move(comps));
    Xoshiro256 gen(4);
    DistributionReport rep = DistributionReport::analyze(
        "tracking", mixture.sampleMany(gen, 1500));
    EXPECT_EQ(rep.modes.size(), 2u);
    EXPECT_NE(rep.renderMarkdown().find("% of mass"),
              std::string::npos);
}

TEST(DistributionReport, RejectsTinySamples)
{
    EXPECT_THROW(DistributionReport::analyze("x", {1.0}),
                 std::invalid_argument);
}

TEST(ComparisonReport, GpuComparisonShape)
{
    // Fig. 8 in miniature: bfs-CUDA on A100 vs H100.
    using namespace sharp::sim;
    SimulatedWorkload a100(rodiniaByName("bfs-CUDA"),
                           machineById("machine1"), 0, 5);
    SimulatedWorkload h100(rodiniaByName("bfs-CUDA"),
                           machineById("machine3"), 0, 5);
    ComparisonReport rep = ComparisonReport::analyze(
        "A100", a100.sampleMany(1500), "H100", h100.sampleMany(1500));

    EXPECT_NEAR(rep.meanSpeedup, 2.0, 0.2);
    EXPECT_FALSE(rep.similarAt(0.1)); // clearly different distributions
    EXPECT_LT(rep.ks.pValue, 1e-6);

    std::string md = rep.renderMarkdown();
    EXPECT_NE(md.find("Speedup"), std::string::npos);
    EXPECT_NE(md.find("NAMD (point-summary)"), std::string::npos);
    EXPECT_NE(md.find("KS distance (distribution)"),
              std::string::npos);
    EXPECT_NE(md.find("Mann-Whitney U"), std::string::npos);
}

TEST(ComparisonReport, IdenticalDistributionsReadSimilar)
{
    auto a = normalSample(5.0, 0.5, 800, 6);
    auto b = normalSample(5.0, 0.5, 800, 7);
    ComparisonReport rep =
        ComparisonReport::analyze("run1", a, "run2", b);
    EXPECT_TRUE(rep.similarAt(0.1));
    EXPECT_NEAR(rep.meanSpeedup, 1.0, 0.05);
    EXPECT_NE(rep.renderBrief().find("(similar)"), std::string::npos);
}

TEST(ComparisonReport, RejectsTinySamples)
{
    EXPECT_THROW(
        ComparisonReport::analyze("a", {1.0}, "b", {1.0, 2.0}),
        std::invalid_argument);
}

} // anonymous namespace
