/**
 * @file
 * Tests for experiment reproduction from metadata — the §IV-d claim
 * that SHARP can parse its own records to recreate a run. On the
 * simulated testbed this must be bit-exact.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "core/stopping/ks_rule.hh"
#include "json/parser.hh"
#include "json/writer.hh"
#include "launcher/launcher.hh"
#include "launcher/reproduce.hh"
#include "launcher/sim_backend.hh"
#include "record/metadata.hh"
#include "simd/dispatch.hh"

namespace
{

using namespace sharp;
using launcher::ReproSpec;

ReproSpec
hotspotSpec()
{
    ReproSpec spec;
    spec.backendKind = "sim";
    spec.workload = "hotspot";
    spec.machines = {"machine1"};
    spec.day = 2;
    spec.seed = 1234;
    spec.concurrency = 1;
    spec.jobs = 4;
    spec.experiment.ruleName = "ks";
    spec.experiment.ruleParams = {{"threshold", 0.1}, {"min", 20}};
    spec.experiment.options.maxSamples = 1500;
    return spec;
}

TEST(Reproduce, SpecRoundTripsThroughMetadata)
{
    ReproSpec spec = hotspotSpec();
    record::RunLog log("hotspot");
    launcher::annotate(log, spec);
    ReproSpec again =
        launcher::reproSpecFromMetadata(log.toMetadata());
    EXPECT_EQ(again.backendKind, spec.backendKind);
    EXPECT_EQ(again.workload, spec.workload);
    EXPECT_EQ(again.machines, spec.machines);
    EXPECT_EQ(again.day, spec.day);
    EXPECT_EQ(again.seed, spec.seed);
    EXPECT_EQ(again.concurrency, spec.concurrency);
    EXPECT_EQ(again.jobs, spec.jobs);
    EXPECT_EQ(again.experiment.ruleName, spec.experiment.ruleName);
    EXPECT_EQ(again.experiment.ruleParams, spec.experiment.ruleParams);
    EXPECT_EQ(again.experiment.options.maxSamples,
              spec.experiment.options.maxSamples);
}

TEST(Reproduce, FaultToleranceFieldsRoundTripThroughMetadata)
{
    ReproSpec spec = hotspotSpec();
    spec.maxFailures = 7;
    spec.maxFailureRate = 0.25;
    spec.retry.maxAttempts = 3;
    spec.retry.backoffBaseSeconds = 0.5;
    spec.retry.jitterSeed = 13;
    spec.faultEnabled = true;
    spec.fault.flakyExitProbability = 0.1;
    spec.fault.seed = 21;

    record::RunLog log("hotspot");
    launcher::annotate(log, spec);
    ReproSpec again =
        launcher::reproSpecFromMetadata(log.toMetadata());
    EXPECT_EQ(again.maxFailures, 7u);
    EXPECT_DOUBLE_EQ(again.maxFailureRate, 0.25);
    EXPECT_EQ(again.retry.maxAttempts, 3u);
    EXPECT_DOUBLE_EQ(again.retry.backoffBaseSeconds, 0.5);
    EXPECT_EQ(again.retry.jitterSeed, 13u);
    ASSERT_TRUE(again.faultEnabled);
    EXPECT_DOUBLE_EQ(again.fault.flakyExitProbability, 0.1);
    EXPECT_EQ(again.fault.seed, 21u);
}

TEST(Reproduce, LargeSeedsRoundTripThroughSpecJson)
{
    // The journal spec header round-trips through JSON; seeds above
    // 2^53 must survive exactly or a resumed campaign replays a
    // different jitter/fault schedule than the interrupted one.
    ReproSpec spec = hotspotSpec();
    spec.seed = (1ULL << 53) + 1;
    spec.retry.maxAttempts = 2;
    spec.retry.backoffBaseSeconds = 0.1;
    spec.retry.jitterFraction = 0.5;
    spec.retry.jitterSeed = (1ULL << 60) + 3;
    spec.faultEnabled = true;
    spec.fault.flakyExitProbability = 0.1;
    spec.fault.seed = 0xFFFFFFFFFFFFFFFFULL;

    ReproSpec again = ReproSpec::fromJson(
        sharp::json::parse(sharp::json::write(spec.toJson())));
    EXPECT_EQ(again.seed, (1ULL << 53) + 1);
    EXPECT_EQ(again.retry.jitterSeed, (1ULL << 60) + 3);
    EXPECT_EQ(again.fault.seed, 0xFFFFFFFFFFFFFFFFULL);
}

TEST(Reproduce, StatsCacheStateRoundTripsThroughMetadata)
{
    // Default (engine on): nothing recorded, parses back as enabled.
    record::RunLog on_log("hotspot");
    launcher::annotate(on_log, hotspotSpec());
    record::MetadataDocument on_doc = on_log.toMetadata();
    EXPECT_FALSE(on_doc.get("Configuration", "repro_stats_cache"));
    EXPECT_TRUE(launcher::reproSpecFromMetadata(on_doc).statsCache);

    ReproSpec spec = hotspotSpec();
    spec.statsCache = false;
    record::RunLog off_log("hotspot");
    launcher::annotate(off_log, spec);
    ReproSpec again =
        launcher::reproSpecFromMetadata(off_log.toMetadata());
    EXPECT_FALSE(again.statsCache);

    // And through the JSON spec form (journal headers).
    ReproSpec json_again = ReproSpec::fromJson(
        sharp::json::parse(sharp::json::write(spec.toJson())));
    EXPECT_FALSE(json_again.statsCache);
}

TEST(Reproduce, MetadataWithoutJobsDefaultsToSerial)
{
    // Metadata recorded before the parallel layer lacks repro_jobs;
    // such documents must still reproduce (with jobs = 1).
    record::RunLog log("hotspot");
    launcher::annotate(log, hotspotSpec());
    record::MetadataDocument doc = log.toMetadata();
    doc.remove("Configuration", "repro_jobs");
    ReproSpec spec = launcher::reproSpecFromMetadata(doc);
    EXPECT_EQ(spec.jobs, 1u);
}

TEST(Reproduce, AnnotateRecordsActiveSimdBackend)
{
    // Provenance: the backend the dispatch layer actually selected is
    // recorded alongside the spec, so a replay on different silicon
    // can explain timing (not result) differences.
    record::RunLog log("hotspot");
    launcher::annotate(log, hotspotSpec());
    auto entry =
        log.toMetadata().get("Configuration", "repro_simd_backend");
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(*entry, std::string(simd::activeBackendName()));
    // The backend is environment, not spec: it must not leak into the
    // reproduced spec JSON.
    ReproSpec spec = launcher::reproSpecFromMetadata(log.toMetadata());
    EXPECT_EQ(sharp::json::write(spec.toJson())
                  .find("simd"),
              std::string::npos);
}

TEST(Reproduce, SimulatedReproductionIsBitExact)
{
    ReproSpec spec = hotspotSpec();
    launcher::Launcher original = launcher::makeLauncher(spec);
    launcher::LaunchReport first = original.launch();
    launcher::annotate(first.log, spec);

    // Round-trip the metadata through a real file, as a user would.
    namespace fs = std::filesystem;
    fs::path path = fs::temp_directory_path() / "sharp_repro_meta.md";
    first.log.toMetadata().save(path.string());
    record::MetadataDocument doc =
        record::MetadataDocument::load(path.string());
    fs::remove(path);

    launcher::LaunchReport second = launcher::reproduce(doc);

    ASSERT_EQ(second.series.size(), first.series.size());
    for (size_t i = 0; i < first.series.size(); ++i)
        EXPECT_DOUBLE_EQ(second.series[i], first.series[i]) << i;
    EXPECT_EQ(second.ruleFired, first.ruleFired);
}

TEST(Reproduce, FaasSpecBuildsClusterBackend)
{
    ReproSpec spec;
    spec.backendKind = "faas";
    spec.workload = "bfs-CUDA";
    spec.machines = {"machine1", "machine3"};
    spec.seed = 5;
    spec.concurrency = 2;
    spec.experiment.ruleName = "fixed";
    spec.experiment.ruleParams = {{"count", 30}};
    spec.experiment.options.maxSamples = 200;

    launcher::Launcher launcher = launcher::makeLauncher(spec);
    auto report = launcher.launch();
    EXPECT_TRUE(report.ruleFired);
    EXPECT_GE(report.series.size(), 30u);
    // Both workers served requests.
    bool m1 = false, m3 = false;
    for (const auto &rec : report.log.records()) {
        m1 |= rec.machine == "machine1";
        m3 |= rec.machine == "machine3";
    }
    EXPECT_TRUE(m1);
    EXPECT_TRUE(m3);
}

TEST(Reproduce, PhasedSpecBuildsPhasedBackend)
{
    ReproSpec spec;
    spec.backendKind = "sim-phased";
    spec.workload = "leukocyte";
    spec.machines = {"machine1"};
    spec.experiment.ruleName = "fixed";
    spec.experiment.ruleParams = {{"count", 10}};

    auto backend = launcher::makeBackend(spec);
    auto result = backend->run();
    EXPECT_GT(result.metric("tracking_time"), 0.0);
}

TEST(Reproduce, RejectsIncompleteMetadata)
{
    record::MetadataDocument empty;
    EXPECT_THROW(launcher::reproSpecFromMetadata(empty),
                 std::invalid_argument);

    record::RunLog log("x");
    ReproSpec spec = hotspotSpec();
    spec.backendKind = "quantum"; // unknown kind round-trips but...
    launcher::annotate(log, spec);
    ReproSpec parsed =
        launcher::reproSpecFromMetadata(log.toMetadata());
    EXPECT_THROW(launcher::makeBackend(parsed), std::invalid_argument);
}

TEST(Reproduce, RejectsMalformedNumbers)
{
    record::RunLog log("x");
    launcher::annotate(log, hotspotSpec());
    record::MetadataDocument doc = log.toMetadata();
    doc.set("Configuration", "repro_seed", "not-a-number");
    EXPECT_THROW(launcher::reproSpecFromMetadata(doc),
                 std::invalid_argument);
}

TEST(Reproduce, JsonSpecRoundTrip)
{
    ReproSpec spec = hotspotSpec();
    spec.backendKind = "faas";
    spec.machines = {"machine1", "machine3"};
    spec.concurrency = 2;
    ReproSpec again = ReproSpec::fromJson(spec.toJson());
    EXPECT_EQ(again.backendKind, spec.backendKind);
    EXPECT_EQ(again.workload, spec.workload);
    EXPECT_EQ(again.machines, spec.machines);
    EXPECT_EQ(again.day, spec.day);
    EXPECT_EQ(again.seed, spec.seed);
    EXPECT_EQ(again.concurrency, spec.concurrency);
    EXPECT_EQ(again.experiment.ruleName, spec.experiment.ruleName);
    EXPECT_EQ(again.experiment.ruleParams, spec.experiment.ruleParams);
}

TEST(Reproduce, JsonSpecDefaults)
{
    ReproSpec spec = ReproSpec::fromJson(
        sharp::json::parse(R"({"workload": "bfs"})"));
    EXPECT_EQ(spec.backendKind, "sim");
    EXPECT_EQ(spec.machines, std::vector<std::string>{"machine1"});
    EXPECT_EQ(spec.concurrency, 1u);
    EXPECT_EQ(spec.experiment.ruleName, "ks");
}

TEST(Reproduce, JsonSpecRejectsBadValues)
{
    EXPECT_THROW(ReproSpec::fromJson(sharp::json::parse("[1]")),
                 std::invalid_argument);
    EXPECT_THROW(ReproSpec::fromJson(sharp::json::parse(
                     R"({"workload": "bfs", "concurrency": 0})")),
                 std::invalid_argument);
    EXPECT_THROW(ReproSpec::fromJson(sharp::json::parse(
                     R"({"workload": "bfs", "machines": "machine1"})")),
                 std::invalid_argument);
}

TEST(Reproduce, ReproducedLogCanSeedAnotherReproduction)
{
    ReproSpec spec = hotspotSpec();
    spec.experiment.options.maxSamples = 300;
    launcher::Launcher original = launcher::makeLauncher(spec);
    auto first = original.launch();
    launcher::annotate(first.log, spec);

    auto second = launcher::reproduce(first.log.toMetadata());
    auto third = launcher::reproduce(second.log.toMetadata());
    ASSERT_EQ(third.series.size(), second.series.size());
    for (size_t i = 0; i < second.series.size(); ++i)
        EXPECT_DOUBLE_EQ(third.series[i], second.series[i]);
}

} // anonymous namespace
