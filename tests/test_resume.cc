/**
 * @file
 * Tests for the crash-safe journal and `--resume`: journal round
 * trips, torn-line tolerance, and the central invariant — a campaign
 * interrupted after k rounds and resumed produces byte-identical CSV
 * to the same campaign run uninterrupted.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "core/stopping/fixed_rule.hh"
#include "core/stopping/ks_rule.hh"
#include "launcher/fault_backend.hh"
#include "launcher/launcher.hh"
#include "launcher/resume.hh"
#include "launcher/sim_backend.hh"
#include "record/journal.hh"
#include "sim/machine.hh"
#include "sim/rodinia.hh"
#include "util/message.hh"

namespace
{

namespace fs = std::filesystem;
using namespace sharp::launcher;
using namespace sharp::record;
using sharp::core::FixedCountRule;
using sharp::core::KsHalvesRule;

std::string
tempPath(const std::string &name)
{
    return (fs::temp_directory_path() / name).string();
}

std::shared_ptr<SimBackend>
bfsBackend(uint64_t seed = 1)
{
    return std::make_shared<SimBackend>(
        sharp::sim::rodiniaByName("bfs"),
        sharp::sim::machineById("machine1"), 0, seed);
}

RunRecord
sampleRecord(size_t run, size_t instance, size_t attempt,
             FailureKind failure)
{
    RunRecord rec;
    rec.run = run;
    rec.instance = instance;
    rec.attempt = attempt;
    rec.workload = "bfs";
    rec.backend = "sim";
    rec.machine = "machine1";
    rec.day = 2;
    rec.warmup = run == 0;
    rec.failure = failure;
    if (failure == FailureKind::None)
        rec.metrics["execution_time"] = 1.25 + 0.125 * run;
    return rec;
}

TEST(Journal, RecordJsonRoundTripsEveryKind)
{
    size_t run = 0;
    for (FailureKind kind : allFailureKinds()) {
        RunRecord rec = sampleRecord(run++, 1, 2, kind);
        RunRecord back = recordFromJson(recordToJson(rec));
        EXPECT_EQ(back.run, rec.run);
        EXPECT_EQ(back.instance, rec.instance);
        EXPECT_EQ(back.attempt, rec.attempt);
        EXPECT_EQ(back.workload, rec.workload);
        EXPECT_EQ(back.machine, rec.machine);
        EXPECT_EQ(back.day, rec.day);
        EXPECT_EQ(back.warmup, rec.warmup);
        EXPECT_EQ(back.failure, rec.failure);
        EXPECT_EQ(back.metrics, rec.metrics);
    }
}

TEST(Journal, WriteThenReadBack)
{
    std::string path = tempPath("sharp_journal_roundtrip.jsonl");
    fs::remove(path);
    {
        RunJournal journal(path);
        sharp::json::Value spec = sharp::json::Value::makeObject();
        spec.set("backend", "sim");
        journal.writeSpec(spec);
        journal.appendRound({sampleRecord(0, 0, 0, FailureKind::None)});
        journal.appendRound(
            {sampleRecord(1, 0, 0, FailureKind::Timeout),
             sampleRecord(1, 0, 1, FailureKind::None)});
        journal.markDone();
    }
    JournalContents contents = readJournal(path);
    EXPECT_EQ(contents.spec.getString("backend", ""), "sim");
    EXPECT_EQ(contents.records.size(), 3u);
    EXPECT_EQ(contents.rounds, 2u);
    EXPECT_EQ(contents.warmupRounds, 1u);
    EXPECT_TRUE(contents.done);
    EXPECT_FALSE(contents.truncated);
    fs::remove(path);
}

TEST(Journal, TornTrailingLineIsDiscarded)
{
    std::string path = tempPath("sharp_journal_torn.jsonl");
    fs::remove(path);
    {
        RunJournal journal(path);
        sharp::json::Value spec = sharp::json::Value::makeObject();
        journal.writeSpec(spec);
        journal.appendRound({sampleRecord(0, 0, 0, FailureKind::None)});
    }
    // Simulate a crash mid-append: an unterminated, truncated line.
    {
        std::ofstream torn(path, std::ios::app);
        torn << "{\"type\":\"round\",\"run\":1,\"rec";
    }
    JournalContents contents = readJournal(path);
    EXPECT_TRUE(contents.truncated);
    EXPECT_EQ(contents.rounds, 1u);
    EXPECT_FALSE(contents.done);

    // A malformed line in the middle is a hard error.
    {
        std::ofstream more(path, std::ios::app);
        more << "\n{\"type\":\"done\"}\n";
    }
    EXPECT_THROW(readJournal(path), std::runtime_error);
    fs::remove(path);
}

/**
 * Rerunning a fresh campaign with the same --journal path must not
 * append after the previous campaign's rounds and 'done' marker —
 * that would make a later --resume refuse ("already completed") or
 * replay rounds from both campaigns.
 */
TEST(Journal, FreshOpenTruncatesLeftoverCampaign)
{
    std::string path = tempPath("sharp_journal_leftover.jsonl");
    fs::remove(path);
    {
        RunJournal journal(path);
        sharp::json::Value spec = sharp::json::Value::makeObject();
        spec.set("backend", "old");
        journal.writeSpec(spec);
        journal.appendRound({sampleRecord(0, 0, 0, FailureKind::None)});
        journal.markDone();
    }
    {
        RunJournal journal(path);
        sharp::json::Value spec = sharp::json::Value::makeObject();
        spec.set("backend", "new");
        journal.writeSpec(spec);
    }
    JournalContents contents = readJournal(path);
    EXPECT_EQ(contents.spec.getString("backend", ""), "new");
    EXPECT_EQ(contents.rounds, 0u);
    EXPECT_TRUE(contents.records.empty());
    EXPECT_FALSE(contents.done);
    fs::remove(path);
}

/**
 * Resuming after a crash mid-append must trim the torn fragment
 * before new rounds are appended; otherwise the first append fuses
 * onto the fragment and the journal becomes unresumable.
 */
TEST(Resume, LoadTrimsTornTrailingLineBeforeAppend)
{
    std::string path = tempPath("sharp_journal_repair.jsonl");
    fs::remove(path);
    sharp::json::Value spec = sharp::json::Value::makeObject();
    spec.set("backend", "sim");
    {
        RunJournal journal(path);
        journal.writeSpec(spec);
        journal.appendRound({sampleRecord(0, 0, 0, FailureKind::None)});
    }
    {
        std::ofstream torn(path, std::ios::app);
        torn << "{\"type\":\"round\",\"run\":1,\"rec";
    }
    ResumedCampaign campaign = loadResumedCampaign(path);
    EXPECT_TRUE(campaign.truncated);
    EXPECT_EQ(campaign.state.rounds, 1u);
    {
        RunJournal journal(path, JournalMode::Resume);
        journal.appendRound({sampleRecord(1, 0, 0, FailureKind::None)});
        journal.markDone();
    }
    // The appended round landed on a clean line boundary: the journal
    // parses whole and a second load sees both rounds.
    JournalContents contents = readJournal(path);
    EXPECT_FALSE(contents.truncated);
    EXPECT_EQ(contents.rounds, 2u);
    EXPECT_TRUE(contents.done);
    fs::remove(path);
}

/**
 * A crash can also land between a line's payload and its newline: the
 * final line parses but is unterminated. Loading must supply the
 * newline so appends start a fresh line instead of fusing.
 */
TEST(Resume, LoadTerminatesUnterminatedFinalLine)
{
    std::string path = tempPath("sharp_journal_noterm.jsonl");
    fs::remove(path);
    {
        std::ofstream raw(path);
        raw << "{\"type\":\"spec\",\"spec\":{\"backend\":\"sim\"}}";
    }
    ResumedCampaign campaign = loadResumedCampaign(path);
    EXPECT_FALSE(campaign.truncated);
    {
        RunJournal journal(path, JournalMode::Resume);
        journal.appendRound({sampleRecord(0, 0, 0, FailureKind::None)});
    }
    JournalContents contents = readJournal(path);
    EXPECT_FALSE(contents.spec.isNull());
    EXPECT_EQ(contents.rounds, 1u);
    fs::remove(path);
}

TEST(Resume, LoadRejectsSpeclessJournal)
{
    std::string path = tempPath("sharp_journal_nospec.jsonl");
    fs::remove(path);
    {
        RunJournal journal(path);
        journal.appendRound({sampleRecord(0, 0, 0, FailureKind::None)});
    }
    EXPECT_THROW(loadResumedCampaign(path), std::runtime_error);
    fs::remove(path);
}

/**
 * Wraps a backend and trips an interrupt flag after a fixed number of
 * invocations, so the launcher stops at the next round boundary — the
 * in-process stand-in for SIGINT.
 */
class TrippingBackend : public Backend
{
  public:
    TrippingBackend(std::shared_ptr<Backend> inner_in, size_t after_in,
                    std::atomic<bool> *flag_in)
        : inner(std::move(inner_in)), after(after_in), flag(flag_in)
    {
    }

    std::string name() const override { return inner->name(); }
    std::string workloadName() const override
    {
        return inner->workloadName();
    }
    void setDay(int day) override { inner->setDay(day); }
    bool deterministic() const override
    {
        return inner->deterministic();
    }

    RunResult
    run() override
    {
        maybeTrip();
        return inner->run();
    }

    std::vector<RunResult>
    runBatch(size_t n) override
    {
        maybeTrip();
        return inner->runBatch(n);
    }

  private:
    void
    maybeTrip()
    {
        if (++calls >= after)
            flag->store(true);
    }

    std::shared_ptr<Backend> inner;
    size_t after;
    std::atomic<bool> *flag;
    size_t calls = 0;
};

LaunchOptions
campaignOptions()
{
    LaunchOptions opts;
    opts.warmupRounds = 2;
    opts.concurrency = 2;
    opts.maxSamples = 400;
    return opts;
}

/** The invariant behind `sharp run --resume`. */
TEST(Resume, KillThenResumeMatchesUninterruptedRun)
{
    std::string baseline_journal = tempPath("sharp_resume_base.jsonl");
    std::string interrupted_journal =
        tempPath("sharp_resume_cut.jsonl");
    fs::remove(baseline_journal);
    fs::remove(interrupted_journal);
    sharp::json::Value spec = sharp::json::Value::makeObject();
    spec.set("backend", "sim");

    // Uninterrupted reference run.
    std::string baseline_csv;
    {
        RunJournal journal(baseline_journal);
        journal.writeSpec(spec);
        LaunchOptions opts = campaignOptions();
        opts.journal = &journal;
        Launcher launcher(bfsBackend(42),
                          std::make_unique<KsHalvesRule>(0.08, 30),
                          opts);
        LaunchReport report = launcher.launch();
        EXPECT_TRUE(report.ruleFired);
        baseline_csv = report.log.toCsv().toCsv();
    }
    EXPECT_TRUE(readJournal(baseline_journal).done);

    // Same campaign, interrupted mid-flight.
    std::atomic<bool> flag{false};
    {
        RunJournal journal(interrupted_journal);
        journal.writeSpec(spec);
        LaunchOptions opts = campaignOptions();
        opts.journal = &journal;
        opts.interruptFlag = &flag;
        Launcher launcher(
            std::make_shared<TrippingBackend>(bfsBackend(42), 9, &flag),
            std::make_unique<KsHalvesRule>(0.08, 30), opts);
        LaunchReport report = launcher.launch();
        ASSERT_TRUE(report.interrupted);
        EXPECT_FALSE(readJournal(interrupted_journal).done);
    }

    // Resume from the interrupted journal with a fresh backend.
    {
        ResumedCampaign campaign =
            loadResumedCampaign(interrupted_journal);
        EXPECT_FALSE(campaign.done);
        EXPECT_GT(campaign.state.rounds, 0u);
        RunJournal journal(interrupted_journal, JournalMode::Resume);
        LaunchOptions opts = campaignOptions();
        opts.journal = &journal;
        opts.resume = &campaign.state;
        Launcher launcher(bfsBackend(42),
                          std::make_unique<KsHalvesRule>(0.08, 30),
                          opts);
        LaunchReport report = launcher.launch();
        EXPECT_TRUE(report.ruleFired);
        EXPECT_FALSE(report.interrupted);
        EXPECT_EQ(report.log.toCsv().toCsv(), baseline_csv);
    }
    // After the resumed finish, the journal holds the whole campaign.
    JournalContents final_contents = readJournal(interrupted_journal);
    EXPECT_TRUE(final_contents.done);
    EXPECT_EQ(final_contents.records.size(),
              readJournal(baseline_journal).records.size());
    fs::remove(baseline_journal);
    fs::remove(interrupted_journal);
}

/** Resume replays retries too, keeping the fault schedule aligned. */
TEST(Resume, ResumeWithFaultInjectionAndRetries)
{
    std::string baseline_journal =
        tempPath("sharp_resume_fault_base.jsonl");
    std::string interrupted_journal =
        tempPath("sharp_resume_fault_cut.jsonl");
    fs::remove(baseline_journal);
    fs::remove(interrupted_journal);
    std::string captured;
    sharp::util::setMessageCapture(&captured);

    FaultSpec fault;
    fault.flakyExitProbability = 0.25;
    fault.seed = 7;
    sharp::json::Value spec = sharp::json::Value::makeObject();

    auto makeOptions = [] {
        LaunchOptions opts;
        opts.maxSamples = 500;
        opts.maxFailures = 1000;
        opts.retry.maxAttempts = 3;
        return opts;
    };
    auto makeFaulty = [&] {
        return std::make_shared<FaultInjectingBackend>(bfsBackend(9),
                                                       fault);
    };

    std::string baseline_csv;
    {
        RunJournal journal(baseline_journal);
        journal.writeSpec(spec);
        LaunchOptions opts = makeOptions();
        opts.journal = &journal;
        Launcher launcher(makeFaulty(),
                          std::make_unique<FixedCountRule>(60), opts);
        baseline_csv = launcher.launch().log.toCsv().toCsv();
    }

    std::atomic<bool> flag{false};
    {
        RunJournal journal(interrupted_journal);
        journal.writeSpec(spec);
        LaunchOptions opts = makeOptions();
        opts.journal = &journal;
        opts.interruptFlag = &flag;
        Launcher launcher(std::make_shared<TrippingBackend>(
                              makeFaulty(), 25, &flag),
                          std::make_unique<FixedCountRule>(60), opts);
        ASSERT_TRUE(launcher.launch().interrupted);
    }
    {
        ResumedCampaign campaign =
            loadResumedCampaign(interrupted_journal);
        RunJournal journal(interrupted_journal, JournalMode::Resume);
        LaunchOptions opts = makeOptions();
        opts.journal = &journal;
        opts.resume = &campaign.state;
        Launcher launcher(makeFaulty(),
                          std::make_unique<FixedCountRule>(60), opts);
        LaunchReport report = launcher.launch();
        EXPECT_EQ(report.log.toCsv().toCsv(), baseline_csv);
    }
    sharp::util::setMessageCapture(nullptr);
    fs::remove(baseline_journal);
    fs::remove(interrupted_journal);
}

TEST(Resume, ResumingCompletedJournalEndsImmediately)
{
    std::string path = tempPath("sharp_resume_done.jsonl");
    fs::remove(path);
    sharp::json::Value spec = sharp::json::Value::makeObject();
    {
        RunJournal journal(path);
        journal.writeSpec(spec);
        LaunchOptions opts;
        opts.journal = &journal;
        Launcher launcher(bfsBackend(4),
                          std::make_unique<FixedCountRule>(15), opts);
        launcher.launch();
    }
    ResumedCampaign campaign = loadResumedCampaign(path);
    EXPECT_TRUE(campaign.done);

    // Even if relaunched, the replayed rule decision ends the launch
    // without new rounds.
    LaunchOptions opts;
    opts.resume = &campaign.state;
    Launcher launcher(bfsBackend(4),
                      std::make_unique<FixedCountRule>(15), opts);
    LaunchReport report = launcher.launch();
    EXPECT_TRUE(report.ruleFired);
    EXPECT_EQ(report.series.size(), 15u);
    EXPECT_EQ(report.log.size(), 15u);
    fs::remove(path);
}

} // anonymous namespace
