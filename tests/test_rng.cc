/**
 * @file
 * Tests for the RNG substrate: generator determinism and quality
 * smoke checks, sampler moments, and the synthetic-distribution
 * registry the stopping heuristics were tuned on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "rng/sampler.hh"
#include "rng/synthetic.hh"
#include "rng/xoshiro.hh"
#include "stats/autocorr.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace sharp::rng;
namespace stats = sharp::stats;

TEST(Xoshiro, DeterministicGivenSeed)
{
    Xoshiro256 a(12345), b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge)
{
    Xoshiro256 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

TEST(Xoshiro, NextDoubleInUnitInterval)
{
    Xoshiro256 gen(7);
    for (int i = 0; i < 10000; ++i) {
        double u = gen.nextDouble();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Xoshiro, NextDoubleOpenNeverZero)
{
    Xoshiro256 gen(7);
    for (int i = 0; i < 10000; ++i) {
        double u = gen.nextDoubleOpen();
        EXPECT_GT(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Xoshiro, NextBelowRespectsBound)
{
    Xoshiro256 gen(3);
    std::vector<int> counts(7, 0);
    for (int i = 0; i < 70000; ++i) {
        uint64_t v = gen.nextBelow(7);
        ASSERT_LT(v, 7u);
        ++counts[v];
    }
    // Roughly uniform: each bucket within 10% of expectation.
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 1000);
}

TEST(Xoshiro, UniformBitsHaveBalancedPopcount)
{
    Xoshiro256 gen(99);
    long ones = 0;
    const int draws = 10000;
    for (int i = 0; i < draws; ++i)
        ones += __builtin_popcountll(gen.next());
    double fraction =
        static_cast<double>(ones) / (64.0 * static_cast<double>(draws));
    EXPECT_NEAR(fraction, 0.5, 0.01);
}

TEST(Xoshiro, SplitYieldsIndependentStreams)
{
    Xoshiro256 parent(42);
    Xoshiro256 child1 = parent.split();
    Xoshiro256 child2 = parent.split();
    int same12 = 0, same1p = 0;
    for (int i = 0; i < 64; ++i) {
        uint64_t c1 = child1.next(), c2 = child2.next(),
                 p = parent.next();
        same12 += c1 == c2;
        same1p += c1 == p;
    }
    EXPECT_EQ(same12, 0);
    EXPECT_EQ(same1p, 0);
}

TEST(SplitMixSeeding, ZeroSeedIsValid)
{
    Xoshiro256 gen(0);
    // Must not be stuck at zero.
    uint64_t x = gen.next();
    uint64_t y = gen.next();
    EXPECT_TRUE(x != 0 || y != 0);
    EXPECT_NE(x, y);
}

TEST(NormalSampler, MomentsMatch)
{
    Xoshiro256 gen(11);
    NormalSampler sampler(10.0, 2.0);
    auto xs = sampler.sampleMany(gen, 20000);
    EXPECT_NEAR(stats::mean(xs), 10.0, 0.05);
    EXPECT_NEAR(stats::stddev(xs), 2.0, 0.05);
    EXPECT_NEAR(stats::skewness(xs), 0.0, 0.06);
}

TEST(NormalSampler, RejectsNegativeSigma)
{
    EXPECT_THROW(NormalSampler(0.0, -1.0), std::invalid_argument);
}

TEST(LogNormalSampler, MedianMatchesExpMu)
{
    Xoshiro256 gen(12);
    LogNormalSampler sampler(2.0, 0.5);
    auto xs = sampler.sampleMany(gen, 20000);
    EXPECT_NEAR(stats::median(xs), std::exp(2.0), 0.15);
    EXPECT_GT(stats::skewness(xs), 0.5); // right-skewed
}

TEST(UniformSampler, RangeAndMean)
{
    Xoshiro256 gen(13);
    UniformSampler sampler(5.0, 15.0);
    auto xs = sampler.sampleMany(gen, 20000);
    for (double x : xs) {
        ASSERT_GE(x, 5.0);
        ASSERT_LT(x, 15.0);
    }
    EXPECT_NEAR(stats::mean(xs), 10.0, 0.1);
    // Uniform has excess kurtosis -1.2.
    EXPECT_NEAR(stats::excessKurtosis(xs), -1.2, 0.1);
}

TEST(UniformSampler, RejectsEmptyRange)
{
    EXPECT_THROW(UniformSampler(2.0, 2.0), std::invalid_argument);
}

TEST(LogUniformSampler, LogIsUniform)
{
    Xoshiro256 gen(14);
    LogUniformSampler sampler(1.0, 100.0);
    auto xs = sampler.sampleMany(gen, 20000);
    std::vector<double> logs;
    for (double x : xs) {
        ASSERT_GE(x, 1.0);
        ASSERT_LT(x, 100.0);
        logs.push_back(std::log(x));
    }
    EXPECT_NEAR(stats::mean(logs), std::log(100.0) / 2.0, 0.05);
    EXPECT_NEAR(stats::excessKurtosis(logs), -1.2, 0.1);
}

TEST(LogUniformSampler, RejectsNonPositiveLow)
{
    EXPECT_THROW(LogUniformSampler(0.0, 10.0), std::invalid_argument);
}

TEST(LogisticSampler, MeanAndHeavierTails)
{
    Xoshiro256 gen(15);
    LogisticSampler sampler(10.0, 0.6);
    auto xs = sampler.sampleMany(gen, 30000);
    EXPECT_NEAR(stats::mean(xs), 10.0, 0.05);
    // Logistic variance = s^2 pi^2 / 3; excess kurtosis = 1.2.
    EXPECT_NEAR(stats::stddev(xs), 0.6 * M_PI / std::sqrt(3.0), 0.03);
    EXPECT_NEAR(stats::excessKurtosis(xs), 1.2, 0.35);
}

TEST(CauchySampler, MedianRobustButVarianceWild)
{
    Xoshiro256 gen(16);
    CauchySampler sampler(10.0, 0.5);
    auto xs = sampler.sampleMany(gen, 20000);
    EXPECT_NEAR(stats::median(xs), 10.0, 0.05);
    // IQR of Cauchy = 2 * scale.
    EXPECT_NEAR(stats::iqr(xs), 1.0, 0.1);
}

TEST(ExponentialSampler, MeanIsInverseRate)
{
    Xoshiro256 gen(17);
    ExponentialSampler sampler(0.5);
    auto xs = sampler.sampleMany(gen, 20000);
    EXPECT_NEAR(stats::mean(xs), 2.0, 0.06);
    for (double x : xs)
        ASSERT_GT(x, 0.0);
}

TEST(ConstantSampler, AlwaysSameValue)
{
    Xoshiro256 gen(18);
    ConstantSampler sampler(10.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(sampler.sample(gen), 10.0);
}

TEST(MixtureSampler, WeightsRespected)
{
    Xoshiro256 gen(19);
    std::vector<MixtureSampler::Component> comps;
    comps.push_back({0.7, std::make_shared<ConstantSampler>(1.0)});
    comps.push_back({0.3, std::make_shared<ConstantSampler>(2.0)});
    MixtureSampler mixture(std::move(comps));
    int low = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        low += mixture.sample(gen) == 1.0;
    EXPECT_NEAR(static_cast<double>(low) / n, 0.7, 0.02);
}

TEST(MixtureSampler, RejectsBadComponents)
{
    EXPECT_THROW(MixtureSampler({}), std::invalid_argument);
    std::vector<MixtureSampler::Component> comps;
    comps.push_back({-1.0, std::make_shared<ConstantSampler>(1.0)});
    EXPECT_THROW(MixtureSampler(std::move(comps)), std::invalid_argument);
}

TEST(SinusoidalSampler, StrongAutocorrelation)
{
    Xoshiro256 gen(20);
    SinusoidalSampler sampler(10.0, 2.0, 50.0, 0.3);
    auto xs = sampler.sampleMany(gen, 2000);
    EXPECT_GT(stats::autocorrelation(xs, 1), 0.8);
    EXPECT_NEAR(stats::mean(xs), 10.0, 0.2);
}

TEST(Ar1Sampler, Lag1MatchesPhi)
{
    Xoshiro256 gen(21);
    Ar1Sampler sampler(5.0, 0.8, 0.5);
    auto xs = sampler.sampleMany(gen, 20000);
    EXPECT_NEAR(stats::autocorrelation(xs, 1), 0.8, 0.03);
    EXPECT_NEAR(stats::mean(xs), 5.0, 0.1);
}

TEST(Ar1Sampler, RejectsNonStationaryPhi)
{
    EXPECT_THROW(Ar1Sampler(0.0, 1.0, 1.0), std::invalid_argument);
}

TEST(AffineSampler, ShiftsAndScales)
{
    Xoshiro256 gen(22);
    auto inner = std::make_shared<ConstantSampler>(2.0);
    AffineSampler affine(inner, 3.0, 1.0);
    EXPECT_DOUBLE_EQ(affine.sample(gen), 7.0);
}

TEST(ClampSampler, BoundsOutput)
{
    Xoshiro256 gen(23);
    auto inner = std::make_shared<NormalSampler>(0.0, 10.0);
    ClampSampler clamp(inner, -1.0, 1.0);
    for (int i = 0; i < 1000; ++i) {
        double x = clamp.sample(gen);
        ASSERT_GE(x, -1.0);
        ASSERT_LE(x, 1.0);
    }
}

TEST(SamplerDescribe, MentionsFamilyAndParameters)
{
    EXPECT_EQ(NormalSampler(10, 2).describe(), "normal(10, 2)");
    EXPECT_EQ(CauchySampler(10, 0.5).describe(), "cauchy(10, 0.5)");
    EXPECT_NE(SinusoidalSampler(1, 2, 3, 0.1).describe().find("period"),
              std::string::npos);
}

TEST(SyntheticRegistry, HasTheTenPaperDistributions)
{
    const auto &registry = syntheticRegistry();
    ASSERT_EQ(registry.size(), 10u);
    // Paper §IV-c: normal, log-normal, uniform, log-uniform, logistic,
    // bi-modal, multi-modal, autocorrelated sinusoidal, Cauchy, constant.
    EXPECT_EQ(registry[0].name, "normal");
    EXPECT_EQ(registry[9].name, "constant");
    int multimodal = 0, correlated = 0;
    for (const auto &spec : registry) {
        multimodal += spec.trueModes > 1;
        correlated += spec.correlated;
    }
    EXPECT_EQ(multimodal, 2);
    EXPECT_EQ(correlated, 1);
}

TEST(SyntheticRegistry, SamplersAreConstructibleAndFinite)
{
    Xoshiro256 gen(31);
    for (const auto &spec : syntheticRegistry()) {
        auto sampler = spec.make();
        ASSERT_TRUE(sampler) << spec.name;
        for (int i = 0; i < 100; ++i)
            EXPECT_TRUE(std::isfinite(sampler->sample(gen)))
                << spec.name;
    }
}

TEST(SyntheticRegistry, LookupByName)
{
    EXPECT_EQ(syntheticByName("cauchy").truth,
              SyntheticClass::HeavyTail);
    EXPECT_EQ(syntheticByName("bimodal").trueModes, 2);
    EXPECT_THROW(syntheticByName("nope"), std::out_of_range);
}

TEST(SyntheticRegistry, FreshSamplersAreIndependent)
{
    // Stateful samplers (sinusoidal) must restart per make() call.
    const auto &spec = syntheticByName("sinusoidal");
    Xoshiro256 g1(5), g2(5);
    auto s1 = spec.make();
    auto s2 = spec.make();
    for (int i = 0; i < 20; ++i)
        EXPECT_DOUBLE_EQ(s1->sample(g1), s2->sample(g2));
}

} // anonymous namespace
