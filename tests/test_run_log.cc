/**
 * @file
 * Tests for the RunLog: tidy CSV shape (one row per concurrent
 * instance), the field dictionary, and the save/reload round trip.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "record/run_log.hh"

namespace
{

using namespace sharp::record;

RunLog
sampleLog()
{
    RunLog log("fig5-hotspot", "execution_time");
    for (size_t run = 0; run < 3; ++run) {
        for (size_t inst = 0; inst < 2; ++inst) {
            RunRecord rec;
            rec.run = run;
            rec.instance = inst;
            rec.workload = "hotspot";
            rec.backend = "sim";
            rec.machine = inst == 0 ? "machine1" : "machine3";
            rec.day = 2;
            rec.warmup = run == 0;
            rec.metrics["execution_time"] =
                4.0 + static_cast<double>(run) +
                0.1 * static_cast<double>(inst);
            rec.metrics["cold_start"] = run == 0 ? 1.0 : 0.0;
            log.add(rec);
        }
    }
    return log;
}

TEST(RunLog, TidyShapeOneRowPerInstance)
{
    RunLog log = sampleLog();
    EXPECT_EQ(log.size(), 6u);
    CsvTable csv = log.toCsv();
    EXPECT_EQ(csv.numRows(), 6u);
    // Fixed columns followed by metric columns.
    auto cols = csv.columns();
    ASSERT_GE(cols.size(), 11u);
    EXPECT_EQ(cols[0], "run");
    EXPECT_EQ(cols[1], "instance");
    EXPECT_EQ(cols[2], "attempt");
    EXPECT_TRUE(csv.columnIndex("failure").has_value());
    EXPECT_TRUE(csv.columnIndex("execution_time").has_value());
    EXPECT_TRUE(csv.columnIndex("cold_start").has_value());
    // A clean log records attempt 0 and failure "none" everywhere.
    EXPECT_EQ(csv.cell(0, *csv.columnIndex("attempt")), "0");
    EXPECT_EQ(csv.cell(0, *csv.columnIndex("failure")), "none");
}

TEST(RunLog, FailedAndRetriedRowsAreRecorded)
{
    RunLog log("flaky", "execution_time");
    RunRecord failed;
    failed.run = 0;
    failed.workload = "w";
    failed.failure = FailureKind::Timeout;
    log.add(failed);

    RunRecord retried;
    retried.run = 0;
    retried.attempt = 1;
    retried.workload = "w";
    retried.metrics["execution_time"] = 2.5;
    log.add(retried);

    CsvTable csv = log.toCsv();
    EXPECT_EQ(csv.cell(0, *csv.columnIndex("failure")), "timeout");
    EXPECT_EQ(csv.cell(1, *csv.columnIndex("attempt")), "1");
    EXPECT_EQ(csv.cell(1, *csv.columnIndex("failure")), "none");
    // Failed rows never contribute to the analysed series.
    auto values = log.primaryValues();
    ASSERT_EQ(values.size(), 1u);
    EXPECT_DOUBLE_EQ(values[0], 2.5);
}

TEST(RunLog, PrimaryValuesExcludeWarmups)
{
    RunLog log = sampleLog();
    auto values = log.primaryValues();
    // Runs 1 and 2 only, 2 instances each.
    ASSERT_EQ(values.size(), 4u);
    EXPECT_DOUBLE_EQ(values[0], 5.0);
}

TEST(RunLog, MetricNamesInFirstSeenOrder)
{
    RunLog log = sampleLog();
    auto names = log.metricNames();
    // std::map orders metrics alphabetically within a record.
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "cold_start");
    EXPECT_EQ(names[1], "execution_time");
}

TEST(RunLog, MetadataHasFieldDictionaryAndConfig)
{
    RunLog log = sampleLog();
    log.setConfigEntry("stopping_rule", "ks(threshold=0.1)");
    log.describeMetric("cold_start",
                       "1.0 when the invocation paid a cold start");
    MetadataDocument doc = log.toMetadata();
    EXPECT_EQ(doc.getTitle(), "fig5-hotspot");
    EXPECT_EQ(doc.get("Experiment", "records").value(), "6");
    EXPECT_EQ(doc.get("Configuration", "stopping_rule").value(),
              "ks(threshold=0.1)");
    EXPECT_NE(doc.get("Field Dictionary", "cold_start")
                  .value()
                  .find("cold start"),
              std::string::npos);
    EXPECT_TRUE(doc.get("Field Dictionary", "warmup").has_value());
    EXPECT_EQ(doc.get("Experiment", "sharp_version").value(),
              "sharp-cpp 1.0.0");
}

TEST(RunLog, SystemInfoEmbedded)
{
    RunLog log = sampleLog();
    log.setSystemInfo(
        describeSimulatedMachine(sharp::sim::machineById("machine1")));
    MetadataDocument doc = log.toMetadata();
    EXPECT_EQ(doc.get("System Under Test", "cpu_model").value(),
              "AMD EPYC 7443");
}

TEST(RunLog, SaveWritesPairedFiles)
{
    namespace fs = std::filesystem;
    fs::path base = fs::temp_directory_path() / "sharp_test_runlog";
    RunLog log = sampleLog();
    log.save(base.string());

    ASSERT_TRUE(fs::exists(base.string() + ".csv"));
    ASSERT_TRUE(fs::exists(base.string() + ".md"));

    CsvTable csv = CsvTable::load(base.string() + ".csv");
    EXPECT_EQ(csv.numRows(), 6u);
    auto times = csv.numericColumnWhere("execution_time", "warmup",
                                        "false");
    EXPECT_EQ(times.size(), 4u);

    MetadataDocument doc =
        MetadataDocument::load(base.string() + ".md");
    EXPECT_EQ(doc.get("Experiment", "name").value(), "fig5-hotspot");

    fs::remove(base.string() + ".csv");
    fs::remove(base.string() + ".md");
}

TEST(RunLog, ConfigEntryReplacesInPlace)
{
    RunLog log("x");
    log.setConfigEntry("k", "1");
    log.setConfigEntry("k", "2");
    EXPECT_EQ(log.toMetadata().get("Configuration", "k").value(), "2");
}

TEST(RunLog, RecordsWithDifferentMetricSetsPadEmpty)
{
    RunLog log("mixed");
    RunRecord a;
    a.workload = "w";
    a.metrics["execution_time"] = 1.0;
    log.add(a);
    RunRecord b = a;
    b.metrics["extra"] = 2.0;
    log.add(b);
    CsvTable csv = log.toCsv();
    auto extra_idx = csv.columnIndex("extra");
    ASSERT_TRUE(extra_idx.has_value());
    EXPECT_EQ(csv.cell(0, *extra_idx), "");
    EXPECT_EQ(csv.cell(1, *extra_idx), "2");
}

} // anonymous namespace
