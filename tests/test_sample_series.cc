/**
 * @file
 * Tests for SampleSeries: streaming aggregates must match batch
 * recomputation exactly (up to FP noise), and the half/tail views the
 * KS rule relies on must slice correctly.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/sample_series.hh"
#include "rng/sampler.hh"
#include "stats/descriptive.hh"

namespace
{

using sharp::core::SampleSeries;
namespace stats = sharp::stats;

TEST(SampleSeries, EmptyStateIsSane)
{
    SampleSeries s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SampleSeries, StreamingMomentsMatchBatch)
{
    sharp::rng::Xoshiro256 gen(1);
    sharp::rng::LogNormalSampler sampler(1.0, 0.7);
    auto xs = sampler.sampleMany(gen, 5000);

    SampleSeries s;
    for (double v : xs)
        s.append(v);

    EXPECT_NEAR(s.mean(), stats::mean(xs), 1e-9);
    EXPECT_NEAR(s.variance(), stats::variance(xs), 1e-7);
    EXPECT_NEAR(s.stddev(), stats::stddev(xs), 1e-8);
    EXPECT_DOUBLE_EQ(s.min(), *std::min_element(xs.begin(), xs.end()));
    EXPECT_DOUBLE_EQ(s.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(SampleSeries, SingleSample)
{
    SampleSeries s;
    s.append(4.2);
    EXPECT_DOUBLE_EQ(s.mean(), 4.2);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.2);
    EXPECT_DOUBLE_EQ(s.max(), 4.2);
}

TEST(SampleSeries, HalvesSplitInArrivalOrder)
{
    SampleSeries s({1.0, 2.0, 3.0, 4.0, 5.0});
    auto first = s.firstHalf();
    auto second = s.secondHalf();
    ASSERT_EQ(first.size(), 2u);
    ASSERT_EQ(second.size(), 3u);
    EXPECT_DOUBLE_EQ(first[0], 1.0);
    EXPECT_DOUBLE_EQ(first[1], 2.0);
    EXPECT_DOUBLE_EQ(second[0], 3.0);
    EXPECT_DOUBLE_EQ(second[2], 5.0);
}

TEST(SampleSeries, TailReturnsLastN)
{
    SampleSeries s({1.0, 2.0, 3.0, 4.0});
    auto t = s.tail(2);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_DOUBLE_EQ(t[0], 3.0);
    EXPECT_DOUBLE_EQ(t[1], 4.0);
    EXPECT_EQ(s.tail(10).size(), 4u);
}

TEST(SampleSeries, ClearResetsEverything)
{
    SampleSeries s({5.0, 6.0});
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.append(1.0);
    EXPECT_DOUBLE_EQ(s.mean(), 1.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(SampleSeries, IndexAccessInArrivalOrder)
{
    SampleSeries s({9.0, 7.0, 8.0});
    EXPECT_DOUBLE_EQ(s[0], 9.0);
    EXPECT_DOUBLE_EQ(s[2], 8.0);
    EXPECT_EQ(s.values().size(), 3u);
}

TEST(SampleSeries, AppendAllAccumulates)
{
    SampleSeries s;
    s.appendAll({1.0, 2.0});
    s.appendAll({3.0});
    EXPECT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(SampleSeries, NegativeAndMixedValues)
{
    SampleSeries s({-5.0, 0.0, 5.0});
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_NEAR(s.variance(), 25.0, 1e-12);
}

TEST(SampleSeries, StreamingSkewnessTracksBatch)
{
    // The streaming higher moments match the batch formulas up to
    // floating-point accumulation order, not bit for bit — hence the
    // relative tolerance here, unlike the engine's exactness tests.
    sharp::rng::Xoshiro256 gen(41);
    sharp::rng::LogNormalSampler sampler(0.0, 0.9);
    SampleSeries s;
    std::vector<double> xs;
    for (size_t i = 0; i < 2000; ++i) {
        double v = sampler.sample(gen);
        s.append(v);
        xs.push_back(v);
        if (i == 99 || i == 999 || i == 1999) {
            double batch = stats::skewness(xs);
            EXPECT_NEAR(s.skewness(), batch,
                        1e-9 * std::max(1.0, std::fabs(batch)))
                << "n=" << i + 1;
        }
    }
}

TEST(SampleSeries, StreamingKurtosisTracksBatch)
{
    sharp::rng::Xoshiro256 gen(43);
    sharp::rng::NormalSampler sampler(5.0, 2.0);
    SampleSeries s;
    std::vector<double> xs;
    for (size_t i = 0; i < 2000; ++i) {
        double v = sampler.sample(gen);
        s.append(v);
        xs.push_back(v);
        if (i == 99 || i == 999 || i == 1999) {
            double batch = stats::excessKurtosis(xs);
            EXPECT_NEAR(s.excessKurtosis(), batch,
                        1e-9 * std::max(1.0, std::fabs(batch)))
                << "n=" << i + 1;
        }
    }
}

TEST(SampleSeries, HigherMomentsDegenerateCases)
{
    SampleSeries tiny({1.0, 2.0});
    EXPECT_DOUBLE_EQ(tiny.skewness(), 0.0); // n < 3
    SampleSeries three({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(three.excessKurtosis(), 0.0); // n < 4
    SampleSeries flat({4.0, 4.0, 4.0, 4.0, 4.0});
    EXPECT_DOUBLE_EQ(flat.skewness(), 0.0); // zero variance
    EXPECT_DOUBLE_EQ(flat.excessKurtosis(), 0.0);
}

TEST(SampleSeries, VersionAdvancesOnEveryMutation)
{
    SampleSeries s;
    uint64_t v = s.version();
    s.append(1.0);
    ASSERT_GT(s.version(), v);
    v = s.version();
    s.appendAll({2.0, 3.0});
    ASSERT_GT(s.version(), v);
    v = s.version();
    s.clear();
    EXPECT_GT(s.version(), v);
}

} // anonymous namespace
