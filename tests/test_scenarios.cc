/**
 * @file
 * The scenario library's property and contract tests: seeded
 * determinism of the five nonstationary generator families, their
 * per-family shape invariants, regime-boundary accounting, scenario
 * JSON round-trips, trace replay in all three modes — including the
 * golden byte-identity contract (record a campaign, replay it
 * verbatim, get the same tidy CSV back) — and jobs-independence of a
 * calibration sweep that includes the families.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "calibrate/calibration.hh"
#include "json/writer.hh"
#include "launcher/launcher.hh"
#include "launcher/reproduce.hh"
#include "launcher/scenario_backend.hh"
#include "launcher/suite.hh"
#include "rng/nonstationary.hh"
#include "rng/xoshiro.hh"
#include "sim/scenario.hh"
#include "stats/autocorr.hh"
#include "stats/descriptive.hh"

namespace
{

namespace fs = std::filesystem;
using namespace sharp;
using rng::FamilyParams;
using rng::Xoshiro256;
using sim::ScenarioSpec;

std::string
repoPath(const std::string &relative)
{
    return std::string(SHARP_SOURCE_DIR) + "/" + relative;
}

std::string
tempPath(const std::string &name)
{
    return (fs::temp_directory_path() / name).string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** @p n samples from a fresh sampler of @p family under @p seed. */
std::vector<double>
familyStream(const std::string &family, uint64_t seed, size_t n,
             const FamilyParams &params = {})
{
    Xoshiro256 gen(seed);
    auto sampler = rng::makeFamilySampler(family, params);
    std::vector<double> values;
    values.reserve(n);
    for (size_t i = 0; i < n; ++i)
        values.push_back(sampler->sample(gen));
    return values;
}

// ---- Seeded determinism: the foundational property every stream in
// ---- this repo keeps — same seed, same stream; new seed, new stream.

TEST(NonstationaryFamilies, SameSeedReplaysTheExactStream)
{
    for (const auto &family : rng::familyNames()) {
        auto first = familyStream(family, 42, 300);
        auto second = familyStream(family, 42, 300);
        EXPECT_EQ(first, second) << family;
        auto other = familyStream(family, 43, 300);
        EXPECT_NE(first, other) << family;
    }
}

TEST(NonstationaryFamilies, RegistryCoversExactlyTheFiveFamilies)
{
    auto names = rng::familyNames();
    ASSERT_EQ(names.size(), 5u);
    for (const auto &name : names) {
        EXPECT_TRUE(rng::isKnownFamily(name));
        const auto &spec = rng::nonstationaryByName(name);
        EXPECT_EQ(spec.name, name);
        // Every family builds a working sampler from its defaults.
        Xoshiro256 gen(1);
        EXPECT_TRUE(std::isfinite(spec.make()->sample(gen)));
    }
    EXPECT_FALSE(rng::isKnownFamily("trace"));
    EXPECT_THROW(rng::nonstationaryByName("nope"), std::out_of_range);
}

// ---- Per-family shape invariants, under the canonical defaults.

TEST(NonstationaryFamilies, LoadRampMeanClimbsFromStartToEnd)
{
    // Defaults ramp 8 -> 16 over 600 samples; compare thirds so both
    // sides are far from the crossover.
    auto values = familyStream("load-ramp", 7, 600);
    double early = stats::mean(std::vector<double>(
        values.begin(), values.begin() + 200));
    double late = stats::mean(std::vector<double>(
        values.begin() + 400, values.end()));
    EXPECT_NEAR(early, 9.33, 0.5);  // mean of ramp over [0, 1/3]
    EXPECT_NEAR(late, 14.67, 0.5);  // mean of ramp over [2/3, 1]
    EXPECT_GT(late - early, 4.0);
}

TEST(NonstationaryFamilies, RegimeSwitchStaysNearItsLevels)
{
    // Defaults: levels {8, 12}, sigma 0.35. Every sample should sit
    // within a few sigma of one of the two levels, and both regimes
    // must actually be visited.
    auto values = familyStream("regime-switch", 9, 800);
    size_t nearLow = 0;
    size_t nearHigh = 0;
    for (double v : values) {
        if (std::fabs(v - 8.0) < 2.0)
            ++nearLow;
        else if (std::fabs(v - 12.0) < 2.0)
            ++nearHigh;
        else
            ADD_FAILURE() << "sample " << v << " near neither level";
    }
    EXPECT_GT(nearLow, 100u);
    EXPECT_GT(nearHigh, 100u);
}

TEST(NonstationaryFamilies, RegimeSwitchCountsItsBoundaries)
{
    Xoshiro256 gen(11);
    rng::RegimeSwitchSampler sampler({8.0, 12.0}, 0.35, 40.0);
    size_t n = 800;
    std::vector<double> values;
    for (size_t i = 0; i < n; ++i)
        values.push_back(sampler.sample(gen));

    // Mean dwell 40 over 800 samples: expect on the order of 20
    // switches, and the counter must agree with what the stream shows.
    size_t counted = sampler.switches();
    EXPECT_GE(counted, 8u);
    EXPECT_LE(counted, 40u);
    size_t observed = 0;
    int side = values[0] < 10.0 ? 0 : 1;
    for (double v : values) {
        int now = v < 10.0 ? 0 : 1;
        if (now != side) {
            ++observed;
            side = now;
        }
    }
    // Noise cannot cross the 2-sigma gap between levels, so regime
    // boundaries in the values are exactly the sampler's switches.
    EXPECT_EQ(observed, counted);
}

TEST(NonstationaryFamilies, HeavyTailBurstsAreEpisodic)
{
    // Defaults: lognormal base around 10, a 12-sample Cauchy-tailed
    // burst every 70 samples. Far-tail samples must exist but stay a
    // minority, and the baseline in between must look tame.
    auto values = familyStream("heavy-tail-burst", 5, 1400);
    size_t far = 0;
    for (double v : values) {
        if (std::fabs(v - 10.0) > 6.0)
            ++far;
    }
    EXPECT_GT(far, 20u);
    EXPECT_LT(far, values.size() / 4);
    // The burst-free majority keeps a tame median.
    std::vector<double> copy = values;
    EXPECT_NEAR(stats::median(std::move(copy)), 10.0, 1.0);
}

TEST(NonstationaryFamilies, CoRunnerStreamIsStronglyAutocorrelated)
{
    auto values = familyStream("co-runner", 3, 1000);
    double rho = stats::autocorrelation(values, 1);
    EXPECT_GT(rho, 0.5);
    // An independent control at the same marginal scale stays near 0.
    auto control = familyStream("heavy-tail-burst", 3, 1000);
    EXPECT_LT(std::fabs(stats::autocorrelation(control, 1)), 0.35);
}

TEST(NonstationaryFamilies, DiurnalDriftSweepsItsAmplitude)
{
    // Defaults: amplitude 2.5 around base 10, period 300. Quarter-
    // period window means must swing by more than the amplitude (the
    // sinusoid's swing is 2x amplitude; noise is only 0.35).
    auto values = familyStream("diurnal-drift", 21, 900);
    std::vector<double> windowMeans;
    for (size_t start = 0; start + 75 <= values.size(); start += 75) {
        windowMeans.push_back(stats::mean(std::vector<double>(
            values.begin() + static_cast<long>(start),
            values.begin() + static_cast<long>(start + 75))));
    }
    auto [low, high] = std::minmax_element(windowMeans.begin(),
                                           windowMeans.end());
    EXPECT_GT(*high - *low, 2.5);
}

// ---- Scenario files: schema round-trip and the shipped library.

TEST(ScenarioLibrary, EveryShippedScenarioLoadsAndRoundTrips)
{
    const char *files[] = {"co_runner.json",       "diurnal_drift.json",
                           "heavy_tail_burst.json", "load_ramp.json",
                           "regime_switch.json",    "trace_replay.json"};
    for (const char *file : files) {
        ScenarioSpec spec =
            sim::loadScenario(repoPath("scenarios/") + file);
        EXPECT_FALSE(spec.name.empty()) << file;
        // Serialization round-trips through the parser.
        ScenarioSpec again =
            ScenarioSpec::fromJson(spec.toJson(), spec.baseDir);
        EXPECT_EQ(json::write(again.toJson()),
                  json::write(spec.toJson()))
            << file;
        if (spec.isTrace()) {
            EXPECT_EQ(spec.trace.mode, sim::TraceMode::Verbatim);
            continue;
        }
        // Family scenarios build deterministic samplers.
        Xoshiro256 a(9);
        Xoshiro256 b(9);
        EXPECT_EQ(spec.makeSampler()->sample(a),
                  spec.makeSampler()->sample(b))
            << file;
    }
}

TEST(ScenarioLibrary, TraceScenarioHasNoSamplerOrDistribution)
{
    ScenarioSpec spec =
        sim::loadScenario(repoPath("scenarios/trace_replay.json"));
    EXPECT_THROW(spec.makeSampler(), std::logic_error);
    EXPECT_THROW(sim::scenarioDistribution(spec),
                 std::invalid_argument);
}

// ---- Trace replay: the three resampling modes.

TEST(TraceReplay, ShuffledModeIsASeededPermutationOfTheMeasurements)
{
    ScenarioSpec spec =
        sim::loadScenario(repoPath("scenarios/trace_replay.json"));
    spec.trace.mode = sim::TraceMode::Shuffled;

    launcher::TraceBackend backend(spec, /*runSeed=*/4);
    size_t n = backend.trace().samples.size();
    ASSERT_GT(n, 2u);
    std::vector<double> replayed;
    for (size_t i = 0; i < n; ++i)
        replayed.push_back(
            backend.run().metric("execution_time"));

    std::vector<double> recorded = backend.trace().samples;
    EXPECT_NE(replayed, recorded); // actually shuffled...
    std::vector<double> replayedSorted = replayed;
    std::vector<double> recordedSorted = recorded;
    std::sort(replayedSorted.begin(), replayedSorted.end());
    std::sort(recordedSorted.begin(), recordedSorted.end());
    EXPECT_EQ(replayedSorted, recordedSorted); // ...but a permutation

    // Same (scenario seed, run seed) -> the same permutation.
    launcher::TraceBackend again(spec, 4);
    std::vector<double> repeat;
    for (size_t i = 0; i < n; ++i)
        repeat.push_back(again.run().metric("execution_time"));
    EXPECT_EQ(repeat, replayed);
}

TEST(TraceReplay, ResamplingModesAreSeedDeterministic)
{
    ScenarioSpec spec =
        sim::loadScenario(repoPath("scenarios/trace_replay.json"));
    for (auto mode :
         {sim::TraceMode::Shuffled, sim::TraceMode::Bootstrap}) {
        spec.trace.mode = mode;
        launcher::TraceBackend a(spec, 7);
        launcher::TraceBackend b(spec, 7);
        launcher::TraceBackend other(spec, 8);
        std::vector<double> sa;
        std::vector<double> sb;
        std::vector<double> so;
        for (size_t i = 0; i < 80; ++i) {
            sa.push_back(a.run().metric("execution_time"));
            sb.push_back(b.run().metric("execution_time"));
            so.push_back(other.run().metric("execution_time"));
        }
        EXPECT_EQ(sa, sb) << sim::traceModeName(mode);
        EXPECT_NE(sa, so) << sim::traceModeName(mode);
        // Every emitted value is one of the recorded measurements.
        std::set<double> pool(a.trace().samples.begin(),
                              a.trace().samples.end());
        for (double v : sa)
            EXPECT_TRUE(pool.count(v)) << sim::traceModeName(mode);
    }
}

/**
 * The golden reproducibility contract (DESIGN.md §10): record a
 * campaign, point a verbatim trace scenario at its tidy CSV, replay
 * with a matching launch configuration, and the replayed campaign's
 * tidy CSV is byte-for-byte the recording.
 */
TEST(TraceReplay, VerbatimRoundTripReproducesTheTidyCsvByteForByte)
{
    // 1. Record: a deterministic sim campaign, fixed-count 25.
    launcher::ReproSpec recordSpec;
    recordSpec.backendKind = "sim";
    recordSpec.workload = "bfs";
    recordSpec.machines = {"machine1"};
    recordSpec.seed = 5;
    recordSpec.experiment.ruleName = "fixed";
    recordSpec.experiment.ruleParams["count"] = 25;
    recordSpec.experiment.options.maxSamples = 25;
    launcher::Launcher recorder = launcher::makeLauncher(recordSpec);
    launcher::LaunchReport recorded = recorder.launch();
    std::string recordedCsv = recorded.log.toCsv().toCsv();
    std::string tracePath = tempPath("sharp_golden_trace.csv");
    {
        std::ofstream out(tracePath, std::ios::binary);
        out << recordedCsv;
    }

    // 2. A verbatim trace scenario pointing at the recording.
    ScenarioSpec scenario;
    scenario.name = "golden";
    scenario.family = "trace";
    scenario.trace.path = tracePath; // absolute; baseDir not needed
    std::string scenarioPath = tempPath("sharp_golden_scenario.json");
    {
        std::ofstream out(scenarioPath, std::ios::binary);
        out << json::writePretty(scenario.toJson());
    }

    // 3. Replay with the matching configuration.
    launcher::ReproSpec replaySpec;
    replaySpec.backendKind = "scenario";
    replaySpec.scenario = scenarioPath;
    replaySpec.experiment.ruleName = "fixed";
    replaySpec.experiment.ruleParams["count"] = 25;
    replaySpec.experiment.options.maxSamples = 25;
    launcher::Launcher replayer = launcher::makeLauncher(replaySpec);
    launcher::LaunchReport replayed = replayer.launch();

    EXPECT_EQ(replayed.log.toCsv().toCsv(), recordedCsv);

    fs::remove(tracePath);
    fs::remove(scenarioPath);
}

// ---- Suite and calibration integration.

TEST(ScenarioSuite, DirectoryExpandsToOneEntryPerScenarioFile)
{
    auto entries = launcher::scenarioSuite(repoPath("scenarios"));
    ASSERT_EQ(entries.size(), 6u);
    // Sorted by filename; display names are the stems.
    EXPECT_EQ(entries.front().workload, "co_runner");
    EXPECT_EQ(entries.back().workload, "trace_replay");
    for (const auto &entry : entries)
        EXPECT_FALSE(entry.scenario.empty());
}

TEST(ScenarioCalibration, FamilySweepIsByteIdenticalForAnyJobs)
{
    calibrate::CalibrationConfig config;
    config.rules = {"meta"};
    config.distributions = {"regime-switch", "co-runner"};
    config.seedsPerCell = 2;
    config.maxSamples = 150;
    config.truthSamples = 500;

    config.jobs = 1;
    calibrate::CalibrationResult serial = runCalibration(config);
    config.jobs = 4;
    calibrate::CalibrationResult parallel = runCalibration(config);

    EXPECT_EQ(serial.toCsv().toCsv(), parallel.toCsv().toCsv());
    EXPECT_EQ(json::writePretty(serial.summaryJson()),
              json::writePretty(parallel.summaryJson()));
    // The families land in the summary with their ground-truth class
    // and a recorded meta delegation.
    for (const auto &cell : serial.cells) {
        EXPECT_FALSE(cell.metaDelegate.empty())
            << cell.distribution;
        EXPECT_EQ(cell.truthClass,
                  rng::syntheticClassName(
                      rng::familyTruth(cell.distribution)));
    }
}

TEST(ScenarioCalibration, ScenarioFilesJoinTheSweepAsDistributions)
{
    ScenarioSpec spec =
        sim::loadScenario(repoPath("scenarios/co_runner.json"));
    rng::SyntheticSpec dist = sim::scenarioDistribution(spec);
    EXPECT_EQ(dist.name, "co_runner");
    EXPECT_TRUE(dist.correlated);

    calibrate::CalibrationConfig config;
    config.rules = {"fixed"};
    config.distributions = {"co_runner"};
    config.extraDistributions = {dist};
    config.seedsPerCell = 1;
    config.maxSamples = 60;
    config.truthSamples = 300;
    calibrate::CalibrationResult result = runCalibration(config);
    ASSERT_EQ(result.cells.size(), 1u);
    EXPECT_EQ(result.cells[0].distribution, "co_runner");
}

} // namespace
