/**
 * @file
 * End-to-end supervision tests for `sharp serve`: a real daemon over
 * a real unix socket, with real forked worker shards. Campaigns are
 * submitted through the client library and the tests then do their
 * worst — SIGKILL a shard mid-round, hang a worker past the watchdog
 * deadline, SIGTERM the daemon mid-drain, SIGKILL it mid-failover —
 * and assert the one invariant the whole subsystem exists for: the
 * final tidy CSV is byte-identical to an undisturbed `sharp run` of
 * the same spec.
 *
 * Lives in its own `serve` label: multi-second wall-clock campaigns,
 * watchdog deadlines, and process trees are meaningless under
 * sanitizer slowdowns.
 */

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "check/analyzer.hh"
#include "check/campaign.hh"
#include "check/diagnostic.hh"
#include "cli/cli.hh"
#include "json/parser.hh"
#include "json/writer.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"
#include "serve/protocol.hh"
#include "serve/queue.hh"
#include "serve/state.hh"
#include "util/fs.hh"

namespace
{

namespace fs = std::filesystem;
using namespace sharp;
using namespace std::chrono_literals;

struct Harness
{
    fs::path dir;
    serve::ServeOptions options;
    pid_t daemonPid = -1;

    std::string socketPath() const { return options.socketPath; }
    std::string stateDir() const { return options.stateDir; }
};

Harness
makeHarness(const std::string &tag)
{
    Harness harness;
    harness.dir = fs::temp_directory_path() /
                  ("sharp_serve_" + tag + "_" +
                   std::to_string(::getpid()));
    fs::remove_all(harness.dir);
    fs::create_directories(harness.dir);
    harness.options.stateDir = (harness.dir / "state").string();
    // Unix socket paths are length-limited; /tmp keeps them short.
    harness.options.socketPath =
        "/tmp/sharp_" + tag + "_" + std::to_string(::getpid()) +
        ".sock";
    harness.options.shards = 2;
    harness.options.roundDeadlineSeconds = 10.0;
    harness.options.pollMillis = 20;
    return harness;
}

/** Fork the daemon; its log goes to <dir>/daemon.log for forensics. */
void
spawnDaemon(Harness &harness)
{
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
        std::ofstream log(harness.dir /
                          ("daemon." + std::to_string(::getpid()) +
                           ".log"));
        std::_Exit(serve::runDaemon(harness.options, log, log));
    }
    harness.daemonPid = pid;
}

json::Value
request(const Harness &harness, const json::Value &doc)
{
    return serve::clientRequest(harness.socketPath(), doc);
}

/** Wait until the daemon answers a ping (it just started). */
void
waitForDaemon(const Harness &harness, double timeoutSeconds = 10.0)
{
    json::Value ping = json::Value::makeObject();
    ping.set("op", "ping");
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(timeoutSeconds);
    for (;;) {
        try {
            if (request(harness, ping).getBool("ok", false))
                return;
        } catch (const std::exception &) {
        }
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "daemon never came up on " << harness.socketPath();
        std::this_thread::sleep_for(50ms);
    }
}

/**
 * A deterministic sim campaign. @p stallSeconds > 0 adds the
 * hang-then-recover band: every invocation sleeps ~stallSeconds (the
 * metrics stay byte-exact), which is how tests make rounds slow
 * enough to kill mid-flight — or slow enough to trip the watchdog.
 */
json::Value
simSpec(int count, double stallSeconds = 0.0)
{
    std::ostringstream doc;
    doc << R"({"backend":"sim","workload":"bfs",)"
        << R"("machines":["machine1"],"seed":11,)"
        << R"("experiment":{"rule":"fixed","params":{"count":)"
        << count << R"(},"max":1000})";
    if (stallSeconds > 0.0) {
        doc << R"(,"fault":{"hang_recover":1.0,)"
            << R"("hang_recover_seconds":)" << stallSeconds
            << R"(,"seed":4242})";
    }
    doc << "}";
    return json::parse(doc.str());
}

std::string
submit(const Harness &harness, const json::Value &spec,
       const std::string &tenant = "default")
{
    json::Value doc = json::Value::makeObject();
    doc.set("op", "submit");
    doc.set("tenant", tenant);
    doc.set("spec", spec);
    json::Value response = request(harness, doc);
    EXPECT_TRUE(response.getBool("ok", false))
        << json::write(response);
    return response.getString("id", "");
}

json::Value
statusOf(const Harness &harness, const std::string &id)
{
    json::Value doc = json::Value::makeObject();
    doc.set("op", "status");
    doc.set("id", id);
    return request(harness, doc);
}

/** Poll until campaign @p id is running and return its worker pid. */
pid_t
waitForWorkerPid(const Harness &harness, const std::string &id,
                 double timeoutSeconds = 20.0)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(timeoutSeconds);
    for (;;) {
        json::Value response = statusOf(harness, id);
        const json::Value *campaign = response.find("campaign");
        if (campaign) {
            long pid = campaign->getLong("pid", 0);
            if (campaign->getString("state", "") == "running" &&
                pid > 0)
                return static_cast<pid_t>(pid);
        }
        if (std::chrono::steady_clock::now() >= deadline)
            return -1;
        std::this_thread::sleep_for(20ms);
    }
}

/** Reap the daemon and return its exit code (-1 on signal death). */
int
reapDaemon(Harness &harness)
{
    int status = 0;
    if (::waitpid(harness.daemonPid, &status, 0) != harness.daemonPid)
        return -2;
    harness.daemonPid = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/** An undisturbed in-process `sharp run` of @p spec, for reference. */
std::string
referenceCsv(const Harness &harness, const json::Value &spec)
{
    std::string config = (harness.dir / "reference.json").string();
    std::string base = (harness.dir / "reference").string();
    {
        std::ofstream out(config);
        out << json::writePretty(spec);
    }
    std::ostringstream sink;
    int code = cli::runCli(
        {"run", "--config", config, "--out", base}, sink, sink);
    EXPECT_EQ(code, 0) << sink.str();
    return util::readFileText(base + ".csv");
}

std::string
campaignCsv(const Harness &harness, const std::string &id)
{
    return util::readFileText(harness.stateDir() + "/campaigns/" + id +
                              "/result.csv");
}

/** `sharp check` over the daemon's own artifacts must stay clean. */
void
expectCleanArtifacts(const Harness &harness)
{
    check::CheckResult queue;
    EXPECT_EQ(check::checkArtifactFile(
                  harness.stateDir() + "/queue.jsonl", queue),
              check::ArtifactKind::QueueJournal);
    EXPECT_EQ(queue.errorCount(), 0u) << queue.renderText();

    check::CheckResult state;
    EXPECT_EQ(check::checkArtifactFile(
                  harness.stateDir() + "/daemon.json", state),
              check::ArtifactKind::DaemonState);
    EXPECT_EQ(state.errorCount(), 0u) << state.renderText();

    // And the cross-artifact audit over the whole state dir: a live
    // daemon's campaign tree must satisfy every campaign invariant.
    check::CheckResult audit;
    check::checkCampaignDir(harness.stateDir(), audit);
    EXPECT_EQ(audit.errorCount(), 0u) << audit.renderText();
    EXPECT_EQ(audit.warningCount(), 0u) << audit.renderText();
}

void
cleanup(Harness &harness)
{
    if (harness.daemonPid > 0) {
        ::kill(harness.daemonPid, SIGKILL);
        ::waitpid(harness.daemonPid, nullptr, 0);
    }
    fs::remove_all(harness.dir);
    fs::remove(harness.socketPath());
}

TEST(ServeDaemon, SubmitRunsToCompletionMatchingSharpRun)
{
    Harness harness = makeHarness("basic");
    spawnDaemon(harness);
    waitForDaemon(harness);

    json::Value spec = simSpec(30);
    std::string id = submit(harness, spec);
    ASSERT_FALSE(id.empty());

    json::Value final = serve::waitForCampaign(harness.socketPath(),
                                               id, 60.0);
    ASSERT_TRUE(final.getBool("ok", false)) << json::write(final);
    ASSERT_EQ(final.find("campaign")->getString("state", ""), "done");

    // The results op hands back the CSV inline and by path.
    json::Value doc = json::Value::makeObject();
    doc.set("op", "results");
    doc.set("id", id);
    json::Value results = request(harness, doc);
    ASSERT_TRUE(results.getBool("ok", false)) << json::write(results);
    std::string csv = results.getString("csv", "");
    ASSERT_FALSE(csv.empty());
    EXPECT_EQ(csv,
              util::readFileText(results.getString("csv_path", "")));

    // A daemon-run campaign is the same campaign `sharp run` runs.
    EXPECT_EQ(csv, referenceCsv(harness, spec));

    expectCleanArtifacts(harness);

    // SIGTERM with nothing running: drain immediately, exit 130,
    // leave a drained state file behind.
    ASSERT_EQ(::kill(harness.daemonPid, SIGTERM), 0);
    EXPECT_EQ(reapDaemon(harness), 130);
    auto state = serve::DaemonState::fromJson(
        json::parseFile(harness.stateDir() + "/daemon.json"));
    EXPECT_TRUE(state.drained);
    cleanup(harness);
}

TEST(ServeDaemon, ShardSigkillFailsOverByteIdentically)
{
    Harness harness = makeHarness("failover");
    spawnDaemon(harness);
    waitForDaemon(harness);

    // ~0.06s stall per round: slow enough to kill mid-campaign,
    // fast enough to finish in seconds.
    json::Value spec = simSpec(40, 0.06);
    std::string id = submit(harness, spec);
    pid_t worker = waitForWorkerPid(harness, id);
    ASSERT_GT(worker, 0);

    // Let it journal some rounds, then murder the shard outright.
    std::this_thread::sleep_for(800ms);
    ASSERT_EQ(::kill(worker, SIGKILL), 0);

    json::Value final = serve::waitForCampaign(harness.socketPath(),
                                               id, 120.0);
    ASSERT_TRUE(final.getBool("ok", false)) << json::write(final);
    const json::Value *campaign = final.find("campaign");
    ASSERT_NE(campaign, nullptr);
    EXPECT_EQ(campaign->getString("state", ""), "done");
    EXPECT_GE(campaign->getLong("failovers", 0), 1);

    // The failover resumed from the journal: byte-identical output.
    EXPECT_EQ(campaignCsv(harness, id), referenceCsv(harness, spec));
    expectCleanArtifacts(harness);

    ASSERT_EQ(::kill(harness.daemonPid, SIGTERM), 0);
    EXPECT_EQ(reapDaemon(harness), 130);
    cleanup(harness);
}

TEST(ServeDaemon, WatchdogKillsHungShardUntilTheStallHalvesUnderTheDeadline)
{
    Harness harness = makeHarness("watchdog");
    // Deadline 0.3s versus a ~0.9s hang: the watchdog must fire.
    // Every failover halves the stall (0.9 -> 0.45 -> 0.225), so the
    // third incarnation beats the deadline and completes.
    harness.options.roundDeadlineSeconds = 0.3;
    harness.options.maxFailovers = 6;
    spawnDaemon(harness);
    waitForDaemon(harness);

    json::Value spec = simSpec(6, 0.9);
    std::string id = submit(harness, spec);

    json::Value final = serve::waitForCampaign(harness.socketPath(),
                                               id, 120.0);
    ASSERT_TRUE(final.getBool("ok", false)) << json::write(final);
    const json::Value *campaign = final.find("campaign");
    ASSERT_NE(campaign, nullptr);
    EXPECT_EQ(campaign->getString("state", ""), "done")
        << json::write(final);
    EXPECT_GE(campaign->getLong("failovers", 0), 2);

    // The queue journal names the watchdog as the failover reason.
    std::string journal =
        util::readFileText(harness.stateDir() + "/queue.jsonl");
    EXPECT_NE(journal.find("watchdog killed the shard"),
              std::string::npos);

    // Hung or not, the recovered campaign's data is untouched.
    EXPECT_EQ(campaignCsv(harness, id), referenceCsv(harness, spec));
    expectCleanArtifacts(harness);

    ASSERT_EQ(::kill(harness.daemonPid, SIGTERM), 0);
    EXPECT_EQ(reapDaemon(harness), 130);
    cleanup(harness);
}

TEST(ServeDaemon, SigtermDrainsParksAndRestartResumes)
{
    Harness harness = makeHarness("drain");
    harness.options.shards = 1;
    spawnDaemon(harness);
    waitForDaemon(harness);

    json::Value spec = simSpec(50, 0.05);
    std::string running = submit(harness, spec);
    std::string queued = submit(harness, simSpec(10));
    ASSERT_GT(waitForWorkerPid(harness, running), 0);
    std::this_thread::sleep_for(500ms);

    // SIGTERM mid-campaign: the worker parks at a round boundary and
    // the daemon exits 130 with both campaigns resumable.
    ASSERT_EQ(::kill(harness.daemonPid, SIGTERM), 0);
    EXPECT_EQ(reapDaemon(harness), 130);

    auto state = serve::DaemonState::fromJson(
        json::parseFile(harness.stateDir() + "/daemon.json"));
    EXPECT_TRUE(state.drained);
    serve::QueueContents queue =
        serve::readQueue(harness.stateDir() + "/queue.jsonl");
    ASSERT_EQ(queue.campaigns.size(), 2u);
    for (const auto &campaign : queue.campaigns)
        EXPECT_EQ(campaign.state, serve::CampaignState::Queued);

    // Restart on the same state directory: both campaigns picked up
    // and finished, the parked one byte-identical to an undisturbed
    // run.
    spawnDaemon(harness);
    waitForDaemon(harness);
    json::Value first = serve::waitForCampaign(harness.socketPath(),
                                               running, 120.0);
    ASSERT_EQ(first.find("campaign")->getString("state", ""), "done")
        << json::write(first);
    json::Value second = serve::waitForCampaign(harness.socketPath(),
                                                queued, 120.0);
    ASSERT_EQ(second.find("campaign")->getString("state", ""), "done")
        << json::write(second);
    EXPECT_EQ(campaignCsv(harness, running),
              referenceCsv(harness, spec));
    expectCleanArtifacts(harness);

    ASSERT_EQ(::kill(harness.daemonPid, SIGTERM), 0);
    EXPECT_EQ(reapDaemon(harness), 130);
    cleanup(harness);
}

TEST(ServeDaemon, DoubleCrashStillResumesByteIdentically)
{
    Harness harness = makeHarness("doublecrash");
    spawnDaemon(harness);
    waitForDaemon(harness);

    json::Value spec = simSpec(40, 0.06);
    std::string id = submit(harness, spec);
    pid_t worker = waitForWorkerPid(harness, id);
    ASSERT_GT(worker, 0);
    std::this_thread::sleep_for(700ms);

    // Crash one: SIGKILL the shard mid-round.
    ASSERT_EQ(::kill(worker, SIGKILL), 0);
    // Crash two: SIGKILL the daemon while it is handling the
    // failover. PDEATHSIG takes any replacement worker down with it,
    // so the restart below never races an orphan for the journal.
    std::this_thread::sleep_for(100ms);
    ASSERT_EQ(::kill(harness.daemonPid, SIGKILL), 0);
    ::waitpid(harness.daemonPid, nullptr, 0);
    harness.daemonPid = -1;
    std::this_thread::sleep_for(100ms);

    // Restart on the wreckage: the queue journal (torn tail and all)
    // replays, the campaign re-queues, its run journal repairs, and
    // the campaign finishes as if nothing happened.
    spawnDaemon(harness);
    waitForDaemon(harness);
    json::Value final = serve::waitForCampaign(harness.socketPath(),
                                               id, 120.0);
    ASSERT_TRUE(final.getBool("ok", false)) << json::write(final);
    ASSERT_EQ(final.find("campaign")->getString("state", ""), "done")
        << json::write(final);

    EXPECT_EQ(campaignCsv(harness, id), referenceCsv(harness, spec));
    expectCleanArtifacts(harness);

    ASSERT_EQ(::kill(harness.daemonPid, SIGTERM), 0);
    EXPECT_EQ(reapDaemon(harness), 130);
    cleanup(harness);
}

TEST(ServeDaemon, AdmissionControlAndTypedErrors)
{
    Harness harness = makeHarness("admission");
    // One shard, held busy by a long campaign: everything else stays
    // deterministically queued, and a drain has to wait for the
    // worker to park — which is the window the draining-rejection
    // assertions below rely on.
    harness.options.shards = 1;
    harness.options.maxQueuedPerTenant = 1;
    spawnDaemon(harness);
    waitForDaemon(harness);

    std::string id = submit(harness, simSpec(400, 0.15));
    ASSERT_FALSE(id.empty());
    ASSERT_GT(waitForWorkerPid(harness, id), 0);

    // Tenant cap reached: typed, retryable queue-full rejection.
    json::Value doc = json::Value::makeObject();
    doc.set("op", "submit");
    doc.set("spec", simSpec(5));
    json::Value full = request(harness, doc);
    EXPECT_FALSE(full.getBool("ok", true));
    EXPECT_EQ(full.find("error")->getString("code", ""),
              "queue-full");
    EXPECT_TRUE(serve::isRetryable(full));
    EXPECT_EQ(serve::clientExitCode(full), 1);

    // Another tenant has its own cap; its campaign queues behind the
    // busy shard.
    std::string queuedId = submit(harness, simSpec(5), "other");
    ASSERT_FALSE(queuedId.empty());

    // A bad spec is rejected outright, with diagnostics attached.
    json::Value bad = json::Value::makeObject();
    bad.set("op", "submit");
    bad.set("tenant", "other2");
    bad.set("spec", json::parse(R"({"backend":"simm"})"));
    json::Value invalid = request(harness, bad);
    EXPECT_FALSE(invalid.getBool("ok", true));
    EXPECT_EQ(invalid.find("error")->getString("code", ""),
              "invalid-spec");
    EXPECT_FALSE(serve::isRetryable(invalid));
    EXPECT_EQ(serve::clientExitCode(invalid), 2);
    EXPECT_NE(invalid.find("diagnostics"), nullptr);

    // Unknown ids and ops are typed too, with did-you-mean hints.
    json::Value unknown = statusOf(harness, "c999999");
    EXPECT_EQ(unknown.find("error")->getString("code", ""),
              "unknown-campaign");
    json::Value typo = json::Value::makeObject();
    typo.set("op", "statsu");
    json::Value unknownOp = request(harness, typo);
    EXPECT_EQ(unknownOp.find("error")->getString("code", ""),
              "unknown-op");
    EXPECT_NE(unknownOp.find("error")
                  ->getString("message", "")
                  .find("did you mean 'status'?"),
              std::string::npos);

    // Results on a queued campaign: not-done, retryable.
    json::Value resultsDoc = json::Value::makeObject();
    resultsDoc.set("op", "results");
    resultsDoc.set("id", queuedId);
    json::Value pending = request(harness, resultsDoc);
    EXPECT_EQ(pending.find("error")->getString("code", ""),
              "not-done");
    EXPECT_TRUE(serve::isRetryable(pending));

    // Cancelled while queued: still not-done, but retrying is now
    // pointless.
    json::Value cancelDoc = json::Value::makeObject();
    cancelDoc.set("op", "cancel");
    cancelDoc.set("id", queuedId);
    json::Value cancelled = request(harness, cancelDoc);
    EXPECT_TRUE(cancelled.getBool("ok", false));
    EXPECT_EQ(cancelled.getString("state", ""), "cancelled");
    json::Value afterCancel = request(harness, resultsDoc);
    EXPECT_EQ(afterCancel.find("error")->getString("code", ""),
              "not-done");
    EXPECT_FALSE(serve::isRetryable(afterCancel));

    // A client drain stops admission with a retryable rejection
    // while the running shard is still parking...
    json::Value drainDoc = json::Value::makeObject();
    drainDoc.set("op", "drain");
    EXPECT_TRUE(request(harness, drainDoc).getBool("ok", false));
    json::Value late = json::Value::makeObject();
    late.set("op", "submit");
    late.set("tenant", "other3");
    late.set("spec", simSpec(5));
    json::Value rejected = request(harness, late);
    EXPECT_EQ(rejected.find("error")->getString("code", ""),
              "draining");
    EXPECT_TRUE(serve::isRetryable(rejected));

    // ...a cancel of the running campaign rides along (the drain
    // already SIGTERMed it; the flag reclassifies the park)...
    json::Value cancelRunning = json::Value::makeObject();
    cancelRunning.set("op", "cancel");
    cancelRunning.set("id", id);
    EXPECT_TRUE(request(harness, cancelRunning).getBool("ok", false));

    // ...and once the worker parks, the daemon exits through the
    // drain path with the cancellations journaled.
    EXPECT_EQ(reapDaemon(harness), 130);
    serve::QueueContents queue =
        serve::readQueue(harness.stateDir() + "/queue.jsonl");
    ASSERT_EQ(queue.campaigns.size(), 2u);
    EXPECT_EQ(queue.campaigns[0].state,
              serve::CampaignState::Cancelled);
    EXPECT_EQ(queue.campaigns[1].state,
              serve::CampaignState::Cancelled);
    cleanup(harness);
}

} // anonymous namespace
