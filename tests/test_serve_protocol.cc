/**
 * @file
 * Unit tests for the `sharp serve` building blocks that need no
 * daemon: the wire protocol (request parsing, typed errors, the
 * retryable flag), the fsync'd queue journal and its replay fold,
 * torn-tail repair on open, the daemon state file round trip, and
 * the socket/heartbeat plumbing the supervisor is built from.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "check/diagnostic.hh"
#include "json/parser.hh"
#include "json/writer.hh"
#include "serve/protocol.hh"
#include "serve/queue.hh"
#include "serve/state.hh"
#include "util/heartbeat.hh"
#include "util/socket.hh"

namespace
{

namespace fs = std::filesystem;
using namespace sharp;
using namespace sharp::serve;

std::string
tempPath(const std::string &name)
{
    return (fs::temp_directory_path() /
            ("sharp_serve_" + name + "_" + std::to_string(::getpid())))
        .string();
}

/** A minimal run spec that passes `sharp check`. */
json::Value
minimalSpec()
{
    return json::parse(R"({
        "backend": "sim", "workload": "bfs",
        "machines": ["machine1"], "seed": 7,
        "experiment": {"rule": "fixed", "params": {"count": 5}}
    })");
}

// ---- Protocol -------------------------------------------------------

TEST(ServeProtocol, ParsesAFullSubmitRequest)
{
    Request request;
    std::string error;
    ASSERT_TRUE(parseRequest(
        R"({"op":"submit","tenant":"ci","spec":{"backend":"sim"}})",
        request, error))
        << error;
    EXPECT_EQ(request.op, "submit");
    EXPECT_EQ(request.tenant, "ci");
    ASSERT_TRUE(request.spec.isObject());
    EXPECT_EQ(request.spec.getString("backend", ""), "sim");
}

TEST(ServeProtocol, DefaultsTenantAndRejectsGarbage)
{
    Request request;
    std::string error;
    ASSERT_TRUE(parseRequest(R"({"op":"ping"})", request, error));
    EXPECT_EQ(request.tenant, "default");

    EXPECT_FALSE(parseRequest("not json", request, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseRequest(R"(["op"])", request, error));
    EXPECT_FALSE(parseRequest(R"({"tenant":"x"})", request, error));
}

TEST(ServeProtocol, ErrorResponsesCarryTheRetryableContract)
{
    json::Value full =
        errorResponse(errors::queueFull, "tenant over cap", true);
    EXPECT_FALSE(full.getBool("ok", true));
    EXPECT_TRUE(isRetryable(full));
    const json::Value *error = full.find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->getString("code", ""), "queue-full");

    json::Value bad =
        errorResponse(errors::invalidSpec, "no backend", false);
    EXPECT_FALSE(isRetryable(bad));
    EXPECT_TRUE(okResponse().getBool("ok", false));
    EXPECT_FALSE(isRetryable(okResponse()));
    EXPECT_FALSE(isRetryable(json::Value()));
}

// ---- Queue journal --------------------------------------------------

TEST(ServeQueue, ReplayFoldsEventsToCampaignState)
{
    std::string path = tempPath("replay");
    fs::remove(path);
    {
        QueueJournal journal(path);
        journal.submit("c000001", "default", minimalSpec());
        journal.submit("c000002", "ci", minimalSpec());
        journal.start("c000001", 0);
        journal.done("c000001");
        journal.start("c000002", 1);
        journal.failover("c000002", "shard killed by signal 9");
    }

    QueueContents queue = readQueue(path);
    EXPECT_FALSE(queue.truncated);
    ASSERT_EQ(queue.campaigns.size(), 2u);

    EXPECT_EQ(queue.campaigns[0].id, "c000001");
    EXPECT_EQ(queue.campaigns[0].state, CampaignState::Done);
    EXPECT_TRUE(queue.campaigns[0].started);

    // "Running" is not a fact a dead daemon can assert: a start (or
    // failover) whose campaign never reached a terminal state folds
    // back to Queued, ready for pickup on restart.
    EXPECT_EQ(queue.campaigns[1].tenant, "ci");
    EXPECT_EQ(queue.campaigns[1].state, CampaignState::Queued);
    EXPECT_EQ(queue.campaigns[1].failovers, 1u);
    EXPECT_TRUE(queue.campaigns[1].started);

    EXPECT_EQ(queue.nextIdNumber, 3u);
    fs::remove(path);
}

TEST(ServeQueue, MissingFileFoldsToAnEmptyQueue)
{
    QueueContents queue = readQueue(tempPath("missing"));
    EXPECT_TRUE(queue.campaigns.empty());
    EXPECT_EQ(queue.nextIdNumber, 1u);
}

TEST(ServeQueue, TornTailIsDiscardedOnReadAndRepairedOnOpen)
{
    std::string path = tempPath("torn");
    fs::remove(path);
    {
        QueueJournal journal(path);
        journal.submit("c000001", "default", minimalSpec());
    }
    // Crash mid-append: a torn half-line with no newline.
    {
        std::ofstream torn(path, std::ios::app | std::ios::binary);
        torn << "{\"event\":\"done\",\"id\":\"c0";
    }

    QueueContents queue = readQueue(path);
    EXPECT_TRUE(queue.truncated);
    ASSERT_EQ(queue.campaigns.size(), 1u);
    EXPECT_EQ(queue.campaigns[0].state, CampaignState::Queued);

    // Re-opening the journal repairs the tail before appending, so
    // the next event lands on a clean line.
    {
        QueueJournal journal(path);
        journal.done("c000001");
    }
    QueueContents repaired = readQueue(path);
    EXPECT_FALSE(repaired.truncated);
    ASSERT_EQ(repaired.campaigns.size(), 1u);
    EXPECT_EQ(repaired.campaigns[0].state, CampaignState::Done);
    fs::remove(path);
}

TEST(ServeQueue, CheckerFlagsDefectsWithLocations)
{
    check::CheckResult result;
    checkQueueText("{\"schema\":\"sharp-queue-v1\"}\n"
                   "{\"event\":\"start\",\"id\":\"c000001\"}\n",
                   result);
    ASSERT_EQ(result.errorCount(), 1u);
    const auto &order = result.diagnostics().front();
    EXPECT_EQ(order.rule, "queue-order");
    EXPECT_EQ(order.line, 2u);
    EXPECT_NE(order.message.find("before its submit"),
              std::string::npos);
}

// ---- Daemon state ---------------------------------------------------

TEST(ServeState, RoundTripsThroughJsonAndDisk)
{
    DaemonState state;
    state.socket = "/tmp/sharp.sock";
    state.shards = 4;
    state.maxQueuedPerTenant = 2;
    state.roundDeadlineSeconds = 0.25;
    state.maxFailovers = 5;
    state.pid = 1234;
    state.drained = true;

    DaemonState back = DaemonState::fromJson(state.toJson());
    EXPECT_EQ(back.socket, state.socket);
    EXPECT_EQ(back.shards, 4u);
    EXPECT_EQ(back.maxQueuedPerTenant, 2u);
    EXPECT_DOUBLE_EQ(back.roundDeadlineSeconds, 0.25);
    EXPECT_EQ(back.maxFailovers, 5u);
    EXPECT_EQ(back.pid, 1234);
    EXPECT_TRUE(back.drained);

    std::string path = tempPath("state.json");
    state.save(path);
    DaemonState loaded = DaemonState::fromJson(json::parseFile(path));
    EXPECT_EQ(loaded.socket, state.socket);
    EXPECT_TRUE(loaded.drained);
    fs::remove(path);
}

TEST(ServeState, CheckerRejectsBadShapes)
{
    check::CheckResult zero_shards;
    json::Value doc = DaemonState().toJson();
    doc.set("shards", 0);
    checkDaemonState(doc, zero_shards);
    EXPECT_GT(zero_shards.errorCount(), 0u);

    check::CheckResult no_schema;
    checkDaemonState(json::parse("{}"), no_schema);
    EXPECT_GT(no_schema.errorCount(), 0u);
}

// ---- Plumbing -------------------------------------------------------

TEST(ServePlumbing, SocketMovesWholeLinesBothWays)
{
    std::string path = tempPath("sock");
    int listener = util::listenUnixSocket(path);
    ASSERT_GE(listener, 0);

    int client = util::connectUnixSocket(path);
    int server = ::accept(listener, nullptr, nullptr);
    ASSERT_GE(server, 0);

    ASSERT_TRUE(util::sendLine(client, R"({"op":"ping"})"));
    std::string buffer, line;
    ASSERT_TRUE(util::recvLine(server, buffer, line));
    EXPECT_EQ(line, R"({"op":"ping"})");

    ASSERT_TRUE(util::sendLine(server, "pong"));
    std::string client_buffer;
    ASSERT_TRUE(util::recvLine(client, client_buffer, line));
    EXPECT_EQ(line, "pong");

    util::closeQuietly(client);
    util::closeQuietly(server);
    util::closeQuietly(listener);
    fs::remove(path);
}

TEST(ServePlumbing, HeartbeatsAccumulateAndDrain)
{
    auto channel = util::HeartbeatChannel::create();
    EXPECT_EQ(util::drainHeartbeats(channel.readFd), 0u);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(util::sendHeartbeat(channel.writeFd));
    EXPECT_EQ(util::drainHeartbeats(channel.readFd), 3u);
    EXPECT_EQ(util::drainHeartbeats(channel.readFd), 0u);
    channel.closeRead();
    channel.closeWrite();
}

} // anonymous namespace
