/**
 * @file
 * End-to-end signal harness: a real `sharp run` campaign over real
 * child processes is SIGINT'd mid-flight; the journal must be left
 * complete (whole rounds only), the partial CSV must parse, the exit
 * code must be 130, and `sharp run --resume` must finish the campaign.
 *
 * Lives in the slow suite: it runs a multi-second local-process
 * campaign and plays with real signals.
 */

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "cli/cli.hh"
#include "record/csv.hh"
#include "record/journal.hh"

namespace
{

namespace fs = std::filesystem;
using sharp::cli::runCli;

struct Paths
{
    fs::path dir;
    std::string config;
    std::string journal;
    std::string out;
};

Paths
makePaths(const std::string &tag)
{
    Paths paths;
    paths.dir = fs::temp_directory_path() /
                ("sharp_signal_" + tag + "_" +
                 std::to_string(::getpid()));
    fs::remove_all(paths.dir);
    fs::create_directories(paths.dir);
    paths.config = (paths.dir / "campaign.json").string();
    paths.journal = (paths.dir / "journal.jsonl").string();
    paths.out = (paths.dir / "result").string();
    return paths;
}

void
writeCampaignConfig(const std::string &path, int count)
{
    std::ofstream config(path);
    config << R"({
  "backend": "local",
  "workload": "napper",
  "argv": ["sh", "-c", "sleep 0.02"],
  "timeout": 10,
  "seed": 1,
  "experiment": {"rule": "fixed", "params": {"count": )"
           << count << R"(}, "max": 400}
})";
}

/** Run the CLI in a forked child so a real SIGINT can hit it. */
pid_t
spawnCliRun(const Paths &paths)
{
    pid_t pid = fork();
    if (pid != 0)
        return pid;
    // Child: the campaign's own output is irrelevant to the parent.
    std::ostringstream sink;
    int status = runCli({"run", "--config", paths.config, "--journal",
                         paths.journal, "--out", paths.out},
                        sink, sink);
    std::_Exit(status);
}

TEST(SignalResume, SigintLeavesResumableJournal)
{
    Paths paths = makePaths("sigint");
    const int target = 150; // ~3s of sleep-0.02 rounds
    writeCampaignConfig(paths.config, target);

    pid_t pid = spawnCliRun(paths);
    ASSERT_GT(pid, 0) << "fork failed";

    // Give the campaign time to start and journal a few rounds, then
    // interrupt it mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(900));
    ASSERT_EQ(kill(pid, SIGINT), 0);

    int wait_status = 0;
    ASSERT_EQ(waitpid(pid, &wait_status, 0), pid);
    ASSERT_TRUE(WIFEXITED(wait_status))
        << "sharp run must exit cleanly on SIGINT, not die of it";
    EXPECT_EQ(WEXITSTATUS(wait_status), 130);

    // The journal holds only whole rounds and no completion marker.
    auto contents = sharp::record::readJournal(paths.journal);
    EXPECT_FALSE(contents.done);
    EXPECT_FALSE(contents.truncated);
    ASSERT_GT(contents.rounds, 0u);
    ASSERT_LT(contents.rounds, static_cast<size_t>(target));
    for (const auto &rec : contents.records)
        EXPECT_LT(rec.run, contents.rounds);

    // The partial CSV written on interrupt parses.
    auto partial = sharp::record::CsvTable::load(paths.out + ".csv");
    EXPECT_EQ(partial.numRows(), contents.records.size());

    // Resume finishes the campaign in-process.
    std::ostringstream out, err;
    int resumed = runCli(
        {"run", "--resume", paths.dir.string(), "--out", paths.out},
        out, err);
    EXPECT_EQ(resumed, 0) << err.str();
    EXPECT_NE(out.str().find("resumed to"), std::string::npos);

    auto final_contents = sharp::record::readJournal(paths.journal);
    EXPECT_TRUE(final_contents.done);
    EXPECT_GE(final_contents.rounds, static_cast<size_t>(target));

    auto csv = sharp::record::CsvTable::load(paths.out + ".csv");
    EXPECT_EQ(
        csv.numericColumnWhere("execution_time", "failure", "none")
            .size(),
        static_cast<size_t>(target));
    fs::remove_all(paths.dir);
}

TEST(SignalResume, SigtermAlsoStopsResumably)
{
    Paths paths = makePaths("sigterm");
    writeCampaignConfig(paths.config, 150);

    pid_t pid = spawnCliRun(paths);
    ASSERT_GT(pid, 0) << "fork failed";
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    ASSERT_EQ(kill(pid, SIGTERM), 0);

    int wait_status = 0;
    ASSERT_EQ(waitpid(pid, &wait_status, 0), pid);
    ASSERT_TRUE(WIFEXITED(wait_status));
    EXPECT_EQ(WEXITSTATUS(wait_status), 130);

    auto contents = sharp::record::readJournal(paths.journal);
    EXPECT_FALSE(contents.done);
    EXPECT_GT(contents.rounds, 0u);
    fs::remove_all(paths.dir);
}

} // anonymous namespace
