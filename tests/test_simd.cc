/**
 * @file
 * Parity suite for the SIMD dispatch layer: every backend compiled
 * into this binary and runnable on this CPU must reproduce the scalar
 * reference kernels bit for bit — outputs, supremum statistics, and
 * comparison counts alike — on randomized and adversarial inputs
 * (NaNs, duplicate plateaus, constants, signed zeros, lane-straddling
 * sizes). Also covers the dispatch machinery itself: backend naming,
 * the SHARP_SIMD_BACKEND override, did-you-mean errors, and
 * setActiveBackend() rewiring observed through a real StatsCache.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <stdexcept>
#include <vector>

#include "core/sample_series.hh"
#include "core/stats_cache.hh"
#include "simd/dispatch.hh"

namespace
{

using sharp::simd::Backend;
using sharp::simd::KernelTable;

/** Bitwise equality: distinguishes -0.0 from 0.0 and accepts NaN==NaN. */
bool
sameBits(double a, double b)
{
    uint64_t ba, bb;
    std::memcpy(&ba, &a, sizeof(ba));
    std::memcpy(&bb, &b, sizeof(bb));
    return ba == bb;
}

std::vector<Backend>
runnableBackends()
{
    std::vector<Backend> out;
    for (Backend b : sharp::simd::compiledBackends())
        if (sharp::simd::backendRunnable(b))
            out.push_back(b);
    return out;
}

std::vector<Backend>
runnableVectorBackends()
{
    std::vector<Backend> out;
    for (Backend b : runnableBackends())
        if (b != Backend::Scalar)
            out.push_back(b);
    return out;
}

/** The lane-width straddles every backend cares about (2, 4, 8). */
const size_t kSizes[] = {0,  1,  2,  3,  4,  5,  7,  8,   9,
                         15, 16, 17, 31, 63, 64, 65, 255, 1000};

std::vector<double>
sortedRandom(std::mt19937_64 &rng, size_t n, int dup_bias)
{
    // dup_bias narrows the value alphabet so runs/plateaus appear:
    // 0 = continuous, larger = heavier duplication.
    std::vector<double> v(n);
    if (dup_bias == 0) {
        std::normal_distribution<double> d(0.0, 1.0);
        for (double &x : v)
            x = d(rng);
    } else {
        std::uniform_int_distribution<int> d(0, dup_bias);
        for (double &x : v)
            x = static_cast<double>(d(rng));
    }
    std::sort(v.begin(), v.end());
    return v;
}

struct MergeResult
{
    std::vector<double> out;
    uint64_t comparisons;
};

MergeResult
runMerge(const KernelTable &table, const std::vector<double> &a,
         const std::vector<double> &b)
{
    MergeResult r;
    r.out.resize(a.size() + b.size());
    r.comparisons = table.mergeSorted(a.data(), a.size(), b.data(),
                                      b.size(), r.out.data());
    return r;
}

void
expectMergeParity(const KernelTable &vec, const std::vector<double> &a,
                  const std::vector<double> &b, const char *what)
{
    const KernelTable &ref =
        sharp::simd::kernelTable(Backend::Scalar);
    MergeResult want = runMerge(ref, a, b);
    MergeResult got = runMerge(vec, a, b);
    ASSERT_EQ(want.out.size(), got.out.size()) << what;
    for (size_t i = 0; i < want.out.size(); ++i)
        ASSERT_TRUE(sameBits(want.out[i], got.out[i]))
            << what << " diverges at element " << i << ": "
            << want.out[i] << " vs " << got.out[i];
    EXPECT_EQ(want.comparisons, got.comparisons) << what;
}

void
expectKsParity(const KernelTable &vec, const std::vector<double> &a,
               const std::vector<double> &b, const char *what)
{
    if (a.empty() || b.empty())
        return; // KS is undefined on empty samples; callers pre-check.
    double want = sharp::simd::kernelTable(Backend::Scalar)
                      .ksSorted(a.data(), a.size(), b.data(), b.size());
    double got = vec.ksSorted(a.data(), a.size(), b.data(), b.size());
    EXPECT_TRUE(sameBits(want, got))
        << what << ": scalar " << want << " vs vector " << got;
}

void
expectMomentParity(const KernelTable &vec, const std::vector<double> &v,
                   const char *what)
{
    const KernelTable &ref =
        sharp::simd::kernelTable(Backend::Scalar);
    double sum_want = ref.kahanSum(v.data(), v.size());
    double sum_got = vec.kahanSum(v.data(), v.size());
    EXPECT_TRUE(sameBits(sum_want, sum_got)) << what << " (kahanSum)";
    double m = v.empty() ? 0.0
                         : sum_want / static_cast<double>(v.size());
    double ss_want = ref.sumSquaredDeviations(v.data(), v.size(), m);
    double ss_got = vec.sumSquaredDeviations(v.data(), v.size(), m);
    EXPECT_TRUE(sameBits(ss_want, ss_got))
        << what << " (sumSquaredDeviations): " << ss_want << " vs "
        << ss_got;
}

void
expectOrderStatParity(const KernelTable &vec,
                      const std::vector<double> &a,
                      const std::vector<double> &b, const char *what)
{
    const KernelTable &ref =
        sharp::simd::kernelTable(Backend::Scalar);
    for (size_t k = 0; k < a.size() + b.size(); ++k) {
        uint64_t cw = 0, cg = 0;
        double want = ref.orderStatTwoRuns(a.data(), a.size(), b.data(),
                                           b.size(), k, &cw);
        double got = vec.orderStatTwoRuns(a.data(), a.size(), b.data(),
                                          b.size(), k, &cg);
        ASSERT_TRUE(sameBits(want, got)) << what << " at k=" << k;
        ASSERT_EQ(cw, cg) << what << " count at k=" << k;
    }
}

class SimdParity : public ::testing::TestWithParam<Backend>
{
};

TEST_P(SimdParity, RandomizedMergeAndKs)
{
    const KernelTable &vec = sharp::simd::kernelTable(GetParam());
    std::mt19937_64 rng(20260809);
    for (size_t na : kSizes) {
        for (size_t nb : {size_t{0}, size_t{1}, size_t{5}, size_t{64},
                          size_t{997}}) {
            for (int dup : {0, 3, 50}) {
                auto a = sortedRandom(rng, na, dup);
                auto b = sortedRandom(rng, nb, dup);
                expectMergeParity(vec, a, b, "randomized merge");
                expectKsParity(vec, a, b, "randomized ks");
            }
        }
    }
}

TEST_P(SimdParity, LargeSizesEngageTheFastPaths)
{
    // The chunked KS walk only engages past 1024 combined elements
    // and the bitonic merge's steady-state loop needs enough quads to
    // matter; the sizes above mostly exercise edges and fallbacks.
    // These pairs drive the co-rank splits, the interleaved lanes
    // (including mid-tie-group chunk boundaries via dup_bias), and
    // the merge drain with every kind of asymmetry.
    const KernelTable &vec = sharp::simd::kernelTable(GetParam());
    std::mt19937_64 rng(987654321);
    const std::pair<size_t, size_t> shapes[] = {
        {5000, 4999}, {20000, 117}, {117, 20000}, {8192, 8192},
    };
    for (auto [na, nb] : shapes) {
        for (int dup : {0, 7, 200}) {
            auto a = sortedRandom(rng, na, dup);
            auto b = sortedRandom(rng, nb, dup);
            expectMergeParity(vec, a, b, "large merge");
            expectKsParity(vec, a, b, "large ks");
        }
    }
}

TEST_P(SimdParity, AdversarialSeries)
{
    const KernelTable &vec = sharp::simd::kernelTable(GetParam());
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<double>> cases = {
        {},
        {0.0},
        {-0.0, 0.0, 0.0},
        {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0},
        {-inf, -1.0, 0.0, 1.0, inf},
        {1.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 3.0},
        {nan},
        {1.0, 2.0, nan},
        {nan, nan, nan},
    };
    // Sorted with NaNs last, matching what CountingLess-sorted series
    // look like when measurements produce NaN.
    std::vector<double> plateau(100, 7.0);
    plateau.front() = -7.0;
    plateau.back() = 77.0;
    cases.push_back(plateau);
    std::vector<double> zeros(33, 0.0);
    for (size_t i = 0; i < 16; ++i)
        zeros[i] = -0.0;
    cases.push_back(zeros);

    for (const auto &a : cases) {
        for (const auto &b : cases) {
            expectMergeParity(vec, a, b, "adversarial merge");
            bool has_nan = false;
            for (double x : a)
                has_nan |= std::isnan(x);
            for (double x : b)
                has_nan |= std::isnan(x);
            if (!has_nan)
                expectKsParity(vec, a, b, "adversarial ks");
            expectOrderStatParity(vec, a, b, "adversarial orderStat");
        }
        expectMomentParity(vec, a, "adversarial moments");
    }
}

TEST_P(SimdParity, RandomizedMoments)
{
    const KernelTable &vec = sharp::simd::kernelTable(GetParam());
    std::mt19937_64 rng(42);
    for (size_t n : kSizes) {
        auto v = sortedRandom(rng, n, 0);
        std::shuffle(v.begin(), v.end(), rng);
        expectMomentParity(vec, v, "randomized moments");
    }
}

TEST_P(SimdParity, AsymmetricMergeCounts)
{
    // One long run against a few interleaved points: the regime where
    // the batched walk's memcpy tails and speculative stores matter.
    const KernelTable &vec = sharp::simd::kernelTable(GetParam());
    std::vector<double> big;
    for (size_t i = 0; i < 1000; ++i)
        big.push_back(static_cast<double>(i));
    std::vector<double> small = {-1.0, 250.5, 250.5, 999.5, 2000.0};
    expectMergeParity(vec, big, small, "big-vs-small merge");
    expectMergeParity(vec, small, big, "small-vs-big merge");
    expectKsParity(vec, big, small, "big-vs-small ks");
}

INSTANTIATE_TEST_SUITE_P(
    Backends, SimdParity, ::testing::ValuesIn(runnableVectorBackends()),
    [](const ::testing::TestParamInfo<Backend> &info) {
        return sharp::simd::backendName(info.param);
    });

// An empty instantiation is expected on hosts with no vector unit
// (the scalar backend is the reference, so there is nothing to
// compare); GTest would otherwise fail the suite for it.
GTEST_ALLOW_UNINSTANTIATED_PARAMETERIZED_TEST(SimdParity);

TEST(SimdDispatch, ScalarAlwaysRunnable)
{
    EXPECT_TRUE(sharp::simd::backendCompiled(Backend::Scalar));
    EXPECT_TRUE(sharp::simd::backendRunnable(Backend::Scalar));
    auto compiled = sharp::simd::compiledBackends();
    EXPECT_FALSE(compiled.empty());
    EXPECT_EQ(compiled.back(), Backend::Scalar);
}

TEST(SimdDispatch, NamesRoundTrip)
{
    for (const std::string &name : sharp::simd::knownBackendNames()) {
        Backend b = sharp::simd::parseBackendName(name);
        EXPECT_STREQ(sharp::simd::backendName(b), name.c_str());
    }
}

TEST(SimdDispatch, EnvOverrideIsHonored)
{
    // The harness runs this binary with and without
    // SHARP_SIMD_BACKEND; whatever the environment says must be what
    // the process-wide table resolved to.
    const char *env = std::getenv("SHARP_SIMD_BACKEND");
    EXPECT_EQ(sharp::simd::activeBackend(),
              sharp::simd::resolveBackend(env));
    if (env != nullptr && *env != '\0') {
        EXPECT_STREQ(sharp::simd::activeBackendName(), env);
    }
}

TEST(SimdDispatch, ResolveScalarByName)
{
    EXPECT_EQ(sharp::simd::resolveBackend("scalar"), Backend::Scalar);
}

TEST(SimdDispatch, UnknownBackendSuggests)
{
    try {
        sharp::simd::resolveBackend("sclar");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("unknown SIMD backend 'sclar'"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("did you mean 'scalar'?"),
                  std::string::npos)
            << what;
    }
}

TEST(SimdDispatch, NotRunnableBackendThrows)
{
    for (Backend b :
         {Backend::Neon, Backend::Avx2, Backend::Avx512}) {
        if (sharp::simd::backendRunnable(b))
            continue;
        EXPECT_THROW(
            sharp::simd::resolveBackend(sharp::simd::backendName(b)),
            std::invalid_argument);
        EXPECT_THROW(sharp::simd::setActiveBackend(b),
                     std::invalid_argument);
    }
}

/**
 * End-to-end rewiring check: a StatsCache driven past its cutover with
 * every runnable backend in turn must report bit-identical statistics
 * and identical work counters. This is the decisions_bitwise_equal
 * property the bench gate asserts, exercised through the real
 * call sites rather than the kernel table.
 */
TEST(SimdDispatch, StatsCacheBitEqualAcrossBackends)
{
    Backend before = sharp::simd::activeBackend();
    struct Observed
    {
        double median, q95, mean, ci_hi, ks;
        uint64_t comparisons;
    };
    std::vector<Observed> runs;
    std::vector<Backend> backends = runnableBackends();
    for (Backend b : backends) {
        sharp::simd::setActiveBackend(b);
        sharp::core::SampleSeries s;
        std::mt19937_64 rng(7);
        std::uniform_int_distribution<int> d(0, 200);
        Observed o{};
        for (int i = 0; i < 5000; ++i) {
            s.append(static_cast<double>(d(rng)) / 8.0);
            if (i % 97 == 3) {
                // Interleave queries so tail merges happen at many
                // different fill levels.
                o.median = s.stats().quantile(0.5);
                o.ks = s.stats().ksHalves();
            }
        }
        o.q95 = s.stats().quantile(0.95);
        o.mean = s.stats().mean();
        o.ci_hi = s.stats().meanCi(0.95).upper;
        o.comparisons = s.stats().counters().comparisons;
        runs.push_back(o);
    }
    sharp::simd::setActiveBackend(before);
    for (size_t i = 1; i < runs.size(); ++i) {
        EXPECT_TRUE(sameBits(runs[0].median, runs[i].median))
            << sharp::simd::backendName(backends[i]);
        EXPECT_TRUE(sameBits(runs[0].q95, runs[i].q95))
            << sharp::simd::backendName(backends[i]);
        EXPECT_TRUE(sameBits(runs[0].mean, runs[i].mean))
            << sharp::simd::backendName(backends[i]);
        EXPECT_TRUE(sameBits(runs[0].ci_hi, runs[i].ci_hi))
            << sharp::simd::backendName(backends[i]);
        EXPECT_TRUE(sameBits(runs[0].ks, runs[i].ks))
            << sharp::simd::backendName(backends[i]);
        EXPECT_EQ(runs[0].comparisons, runs[i].comparisons)
            << sharp::simd::backendName(backends[i]);
    }
}

} // anonymous namespace
