/**
 * @file
 * Tests for the similarity metrics (§V-A.3): NAMD vs. KS — including
 * the paper's central claim that equal means can hide shape
 * differences NAMD misses but KS catches.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "rng/sampler.hh"
#include "stats/descriptive.hh"
#include "stats/similarity.hh"

namespace
{

using namespace sharp::stats;
using namespace sharp::rng;

TEST(Namd, ZeroForIdenticalSamples)
{
    std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0};
    EXPECT_DOUBLE_EQ(namd(xs, xs), 0.0);
}

TEST(Namd, PermutationInvariant)
{
    std::vector<double> a = {1.0, 2.0, 3.0};
    std::vector<double> b = {3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(namd(a, b), 0.0);
}

TEST(Namd, SymmetricInArguments)
{
    std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
    std::vector<double> b = {2.0, 3.0, 4.0, 6.0};
    EXPECT_DOUBLE_EQ(namd(a, b), namd(b, a));
}

TEST(Namd, KnownHandComputedValue)
{
    // a = {1,3}, b = {2,4}: sorted pairwise |diff| = 1 each, MAD = 1.
    // means 2 and 3 -> namd = 0.5*(1/2 + 1/3) = 5/12.
    EXPECT_NEAR(namd({1.0, 3.0}, {2.0, 4.0}), 5.0 / 12.0, 1e-12);
}

TEST(Namd, HandlesUnequalLengthsByQuantileMatching)
{
    std::vector<double> a = {1.0, 2.0, 3.0, 4.0, 5.0};
    std::vector<double> b = {1.0, 3.0, 5.0};
    double d = namd(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 0.2); // same underlying spread, so small
}

TEST(Namd, RejectsEmptyOrZeroMean)
{
    EXPECT_THROW(namd({}, {1.0}), std::invalid_argument);
    EXPECT_THROW(namd({-1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Namd, BlindToShapeWhenMeansMatch)
{
    // The paper's hotspot day-3 vs day-5 phenomenon: same mean,
    // different modality. NAMD stays small; KS is large.
    Xoshiro256 gen(1);

    // A: single mode at 10. B: two modes at 8.5 and 11.5 with equal
    // weight — the same mean of 10.
    NormalSampler a_sampler(10.0, 0.3);
    std::vector<MixtureSampler::Component> comps;
    comps.push_back({0.5, std::make_shared<NormalSampler>(8.5, 0.3)});
    comps.push_back({0.5, std::make_shared<NormalSampler>(11.5, 0.3)});
    MixtureSampler b_sampler(std::move(comps));

    auto a = a_sampler.sampleMany(gen, 2000);
    auto b = b_sampler.sampleMany(gen, 2000);

    EXPECT_NEAR(mean(a), mean(b), 0.1);
    double point_metric = namd(a, b);
    double dist_metric = ksDistance(a, b);
    EXPECT_LT(point_metric, 0.2);
    EXPECT_GT(dist_metric, 0.4);
    // The distribution metric must dominate the point metric here.
    EXPECT_GT(dist_metric, 2.0 * point_metric);
}

TEST(Wasserstein, ZeroForIdenticalSamples)
{
    std::vector<double> xs = {1.0, 5.0, 9.0};
    EXPECT_DOUBLE_EQ(wasserstein1(xs, xs), 0.0);
}

TEST(Wasserstein, PureShiftEqualsDelta)
{
    std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
    std::vector<double> b = {3.5, 4.5, 5.5, 6.5};
    EXPECT_NEAR(wasserstein1(a, b), 2.5, 1e-12);
}

TEST(Wasserstein, UnequalSizesExact)
{
    // X uniform on {0, 1}, Y point mass at 0.5: W1 = 0.5.
    EXPECT_NEAR(wasserstein1({0.0, 1.0}, {0.5}), 0.5, 1e-12);
}

TEST(Wasserstein, TriangleLikeMonotonicity)
{
    std::vector<double> a = {0.0, 1.0, 2.0};
    std::vector<double> near_b = {0.1, 1.1, 2.1};
    std::vector<double> far = {5.0, 6.0, 7.0};
    EXPECT_LT(wasserstein1(a, near_b), wasserstein1(a, far));
}

TEST(Overlap, IdenticalDistributionsNearOne)
{
    Xoshiro256 gen(2);
    NormalSampler sampler(5.0, 1.0);
    auto a = sampler.sampleMany(gen, 1500);
    auto b = sampler.sampleMany(gen, 1500);
    EXPECT_GT(overlapCoefficient(a, b), 0.9);
}

TEST(Overlap, DisjointDistributionsNearZero)
{
    Xoshiro256 gen(3);
    NormalSampler s1(0.0, 0.5), s2(100.0, 0.5);
    auto a = s1.sampleMany(gen, 500);
    auto b = s2.sampleMany(gen, 500);
    EXPECT_LT(overlapCoefficient(a, b), 0.02);
}

TEST(JensenShannon, BoundsAndIdentity)
{
    Xoshiro256 gen(4);
    NormalSampler sampler(0.0, 1.0);
    auto a = sampler.sampleMany(gen, 1000);
    auto b = sampler.sampleMany(gen, 1000);
    double js_same = jensenShannonDivergence(a, b);
    EXPECT_GE(js_same, 0.0);
    EXPECT_LT(js_same, 0.1);

    NormalSampler far(50.0, 1.0);
    auto c = far.sampleMany(gen, 1000);
    double js_far = jensenShannonDivergence(a, c);
    EXPECT_GT(js_far, js_same);
    EXPECT_LE(js_far, std::log(2.0) + 1e-9);
}

TEST(SimilarityReport, AllMetricsPopulated)
{
    Xoshiro256 gen(5);
    NormalSampler s1(10.0, 1.0), s2(12.0, 1.5);
    auto a = s1.sampleMany(gen, 600);
    auto b = s2.sampleMany(gen, 600);
    SimilarityReport rep = SimilarityReport::compute(a, b);
    EXPECT_GT(rep.namd, 0.0);
    EXPECT_GT(rep.ks, 0.0);
    EXPECT_LE(rep.ks, 1.0);
    EXPECT_GT(rep.wasserstein, 1.0);
    EXPECT_GT(rep.overlap, 0.0);
    EXPECT_LT(rep.overlap, 1.0);
    EXPECT_GT(rep.jensenShannon, 0.0);
}

TEST(SortedOverloads, AgreeWithUnsortedBitForBit)
{
    Xoshiro256 gen(17);
    LogNormalSampler s1(1.0, 0.6), s2(1.2, 0.4);
    auto x = s1.sampleMany(gen, 257);
    auto y = s2.sampleMany(gen, 181);
    auto sx = x, sy = y;
    std::sort(sx.begin(), sx.end());
    std::sort(sy.begin(), sy.end());
    EXPECT_EQ(namdSorted(sx, sy), namd(x, y));
    EXPECT_EQ(ksDistanceSorted(sx, sy), ksDistance(x, y));
    EXPECT_EQ(wasserstein1Sorted(sx, sy), wasserstein1(x, y));
}

} // anonymous namespace
