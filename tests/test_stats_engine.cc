/**
 * @file
 * Exactness and work-bound tests for the incremental statistics engine
 * (core::StatsCache).
 *
 * The engine's contract is bit-for-bit equality with the batch
 * recomputations in src/stats — that is what keeps the calibration
 * baseline byte-identical with the cache on or off. These tests compare
 * raw double bits (not EXPECT_DOUBLE_EQ, which would mask one-ulp
 * drift), across appends, duplicates, constant data, and NaNs, and pin
 * the deterministic work counters that stand in for wall-clock
 * sub-linearity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/sample_series.hh"
#include "core/stats_cache.hh"
#include "rng/sampler.hh"
#include "rng/xoshiro.hh"
#include "stats/ci.hh"
#include "stats/descriptive.hh"
#include "stats/ecdf.hh"

namespace
{

using sharp::core::SampleSeries;
using sharp::core::StatsEngineCounters;
namespace stats = sharp::stats;

/** Bitwise double equality: NaN == NaN, -0.0 != 0.0, no ulp slack. */
::testing::AssertionResult
bitEqual(double a, double b)
{
    if (std::memcmp(&a, &b, sizeof(double)) == 0)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " and " << b << " differ in bits";
}

std::vector<double>
lognormalDraws(uint64_t seed, size_t n)
{
    sharp::rng::Xoshiro256 gen(seed);
    sharp::rng::LogNormalSampler sampler(1.0, 0.7);
    return sampler.sampleMany(gen, n);
}

/** Guard that restores the engine kill switch on scope exit. */
struct CacheGuard
{
    ~CacheGuard() { sharp::core::setStatsCacheEnabled(true); }
};

/**
 * Fixture forcing the size cutover to 0: the series in these tests are
 * tens to hundreds of samples — below the production cutover, where
 * every accessor would route to the batch branch and the incremental
 * structures under test would never run. The cutover's own routing is
 * covered by the SizeCutover* tests, which set it back explicitly.
 */
class StatsEngine : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        sharp::core::setStatsCacheEnabled(true);
        sharp::core::setStatsCacheCutover(0);
    }
    void TearDown() override
    {
        sharp::core::setStatsCacheEnabled(true);
        sharp::core::setStatsCacheCutover(
            sharp::core::kDefaultStatsCacheCutover);
    }
};

TEST_F(StatsEngine, SortedViewMatchesStdSortAcrossAppends)
{
    auto xs = lognormalDraws(1, 700);
    SampleSeries s;
    std::vector<double> reference;
    for (size_t i = 0; i < xs.size(); ++i) {
        s.append(xs[i]);
        // Read the sorted view at irregular points, including right
        // after the first append and around tail-merge boundaries.
        if (i % 63 == 0 || i + 1 == xs.size()) {
            reference.assign(xs.begin(),
                             xs.begin() + static_cast<long>(i + 1));
            std::sort(reference.begin(), reference.end());
            ASSERT_EQ(s.stats().sorted(), reference) << "at n=" << i + 1;
        }
    }
}

TEST_F(StatsEngine, OrderStatAgreesWithSortedWithoutMerging)
{
    auto xs = lognormalDraws(2, 500);
    SampleSeries s;
    for (size_t i = 0; i < xs.size(); ++i) {
        s.append(xs[i]);
        if (i % 41 != 0)
            continue;
        // Query order statistics while the tail is unmerged; the
        // two-runs search must agree with the fully merged array.
        size_t n = i + 1;
        std::vector<double> sorted(xs.begin(),
                                   xs.begin() + static_cast<long>(n));
        std::sort(sorted.begin(), sorted.end());
        for (size_t k : {size_t{0}, n / 3, n / 2, n - 1})
            EXPECT_TRUE(bitEqual(s.stats().orderStat(k), sorted[k]))
                << "n=" << n << " k=" << k;
    }
    EXPECT_THROW(s.stats().orderStat(xs.size()), std::out_of_range);
}

TEST_F(StatsEngine, QuantileBitEqualToBatch)
{
    auto xs = lognormalDraws(3, 321);
    SampleSeries s;
    for (double v : xs)
        s.append(v);
    for (double p : {0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
        std::vector<double> copy = xs;
        EXPECT_TRUE(
            bitEqual(s.stats().quantile(p), stats::quantile(copy, p)))
            << "p=" << p;
    }
}

TEST_F(StatsEngine, KsHalvesBitEqualToBatchAtEverySize)
{
    auto xs = lognormalDraws(4, 400);
    SampleSeries s;
    for (size_t i = 0; i < xs.size(); ++i) {
        s.append(xs[i]);
        if (i < 1)
            continue;
        double batch = stats::ksStatistic(s.firstHalf(), s.secondHalf());
        EXPECT_TRUE(bitEqual(s.stats().ksHalves(), batch))
            << "n=" << i + 1;
    }
}

TEST_F(StatsEngine, KsHalvesHandlesDuplicateHeavyData)
{
    // Discrete data exercises the tie-group logic in the sorted walk
    // and ambiguous boundary migration between the half runs.
    sharp::rng::Xoshiro256 gen(5);
    SampleSeries s;
    for (size_t i = 0; i < 300; ++i) {
        s.append(static_cast<double>(gen.next() % 7));
        if (i < 1)
            continue;
        double batch = stats::ksStatistic(s.firstHalf(), s.secondHalf());
        ASSERT_TRUE(bitEqual(s.stats().ksHalves(), batch))
            << "n=" << i + 1;
    }
}

TEST_F(StatsEngine, ConstantSeriesIsExactEverywhere)
{
    SampleSeries s;
    for (int i = 0; i < 64; ++i)
        s.append(3.25);
    EXPECT_TRUE(bitEqual(s.stats().ksHalves(), 0.0));
    EXPECT_TRUE(bitEqual(s.stats().quantile(0.5), 3.25));
    EXPECT_TRUE(bitEqual(s.stats().mean(), 3.25));
    auto ci = s.stats().medianCi(0.95);
    auto batch = stats::medianCi(s.values(), 0.95);
    EXPECT_TRUE(bitEqual(ci.lower, batch.lower));
    EXPECT_TRUE(bitEqual(ci.upper, batch.upper));
}

TEST_F(StatsEngine, NansOrderLastDeterministically)
{
    // std::sort on raw NaN data is undefined behavior; the engine's
    // comparator is a strict weak ordering that places NaNs last, so
    // the sorted view is still deterministic.
    double nan = std::numeric_limits<double>::quiet_NaN();
    SampleSeries s;
    for (double v : {2.0, nan, 1.0, 3.0, nan, 0.5})
        s.append(v);
    const auto &sorted = s.stats().sorted();
    ASSERT_EQ(sorted.size(), 6u);
    EXPECT_DOUBLE_EQ(sorted[0], 0.5);
    EXPECT_DOUBLE_EQ(sorted[1], 1.0);
    EXPECT_DOUBLE_EQ(sorted[2], 2.0);
    EXPECT_DOUBLE_EQ(sorted[3], 3.0);
    EXPECT_TRUE(std::isnan(sorted[4]));
    EXPECT_TRUE(std::isnan(sorted[5]));
}

TEST_F(StatsEngine, PrefixRangeMatchesArrivalOrderScan)
{
    auto xs = lognormalDraws(6, 200);
    SampleSeries s;
    for (double v : xs)
        s.append(v);
    for (size_t count : {size_t{1}, size_t{7}, size_t{128}, xs.size()}) {
        double lo = xs[0], hi = xs[0];
        for (size_t i = 1; i < count; ++i) {
            lo = std::min(lo, xs[i]);
            hi = std::max(hi, xs[i]);
        }
        auto [cl, ch] = s.stats().prefixRange(count);
        EXPECT_TRUE(bitEqual(cl, lo)) << "count=" << count;
        EXPECT_TRUE(bitEqual(ch, hi)) << "count=" << count;
    }
    EXPECT_THROW(s.stats().prefixRange(0), std::out_of_range);
    EXPECT_THROW(s.stats().prefixRange(xs.size() + 1), std::out_of_range);
}

TEST_F(StatsEngine, MeanAndCisBitEqualToBatch)
{
    auto xs = lognormalDraws(7, 333);
    SampleSeries s;
    for (size_t i = 0; i < xs.size(); ++i) {
        s.append(xs[i]);
        if (i % 47 != 0 || i < 2)
            continue;
        std::vector<double> prefix(xs.begin(),
                                   xs.begin() + static_cast<long>(i + 1));
        EXPECT_TRUE(bitEqual(s.stats().mean(), stats::mean(prefix)));
        auto ci = s.stats().meanCi(0.95);
        auto batch = stats::meanCi(prefix, 0.95);
        EXPECT_TRUE(bitEqual(ci.lower, batch.lower)) << "n=" << i + 1;
        EXPECT_TRUE(bitEqual(ci.upper, batch.upper)) << "n=" << i + 1;
        auto rt = s.stats().meanCiRightTailed(0.95);
        auto rtb = stats::meanCiRightTailed(prefix, 0.95);
        EXPECT_TRUE(bitEqual(rt.lower, rtb.lower)) << "n=" << i + 1;
        EXPECT_TRUE(bitEqual(rt.upper, rtb.upper)) << "n=" << i + 1;
    }
}

TEST_F(StatsEngine, WarmMedianCiTracksBatchAcrossGrowth)
{
    // The warm-started k search must pick the batch scan's k at every
    // size, across the n<6 closed form, the cold scan, and warm
    // up/down walks as coverage shifts.
    auto xs = lognormalDraws(8, 450);
    SampleSeries s;
    for (size_t i = 0; i < xs.size(); ++i) {
        s.append(xs[i]);
        std::vector<double> prefix(xs.begin(),
                                   xs.begin() + static_cast<long>(i + 1));
        for (double level : {0.90, 0.95}) {
            auto warm = s.stats().medianCi(level);
            auto batch = stats::medianCi(prefix, level);
            ASSERT_TRUE(bitEqual(warm.lower, batch.lower))
                << "n=" << i + 1 << " level=" << level;
            ASSERT_TRUE(bitEqual(warm.upper, batch.upper))
                << "n=" << i + 1 << " level=" << level;
            ASSERT_TRUE(bitEqual(warm.level, batch.level))
                << "n=" << i + 1 << " level=" << level;
        }
    }
}

TEST_F(StatsEngine, QuantileCiBitEqualToBatch)
{
    auto xs = lognormalDraws(9, 260);
    SampleSeries s;
    for (size_t i = 0; i < xs.size(); ++i) {
        s.append(xs[i]);
        if (i % 29 != 0 || i < 10)
            continue;
        std::vector<double> prefix(xs.begin(),
                                   xs.begin() + static_cast<long>(i + 1));
        auto ci = s.stats().quantileCi(0.95, 0.95);
        auto batch = stats::quantileCi(prefix, 0.95, 0.95);
        ASSERT_TRUE(bitEqual(ci.lower, batch.lower)) << "n=" << i + 1;
        ASSERT_TRUE(bitEqual(ci.upper, batch.upper)) << "n=" << i + 1;
    }
}

TEST_F(StatsEngine, KillSwitchPreservesValuesBitForBit)
{
    CacheGuard guard;
    auto xs = lognormalDraws(10, 257);
    SampleSeries cached, batch;
    for (double v : xs) {
        cached.append(v);
        batch.append(v);
    }
    sharp::core::setStatsCacheEnabled(true);
    double ks_on = cached.stats().ksHalves();
    auto med_on = cached.stats().medianCi(0.95);
    double q_on = cached.stats().quantile(0.75);
    sharp::core::setStatsCacheEnabled(false);
    double ks_off = batch.stats().ksHalves();
    auto med_off = batch.stats().medianCi(0.95);
    double q_off = batch.stats().quantile(0.75);
    EXPECT_TRUE(bitEqual(ks_on, ks_off));
    EXPECT_TRUE(bitEqual(med_on.lower, med_off.lower));
    EXPECT_TRUE(bitEqual(med_on.upper, med_off.upper));
    EXPECT_TRUE(bitEqual(q_on, q_off));
}

TEST_F(StatsEngine, MemoizedReadsDoNoWork)
{
    auto xs = lognormalDraws(11, 1000);
    SampleSeries s;
    for (double v : xs)
        s.append(v);
    s.stats().ksHalves();
    StatsEngineCounters before = s.stats().counters();
    s.stats().ksHalves(); // same version: memo hit
    s.stats().ksHalves();
    StatsEngineCounters delta = s.stats().counters() - before;
    EXPECT_EQ(delta.total(), 0u);
}

TEST_F(StatsEngine, StructuralWorkPerAppendIsSubLinear)
{
    // The deterministic stand-in for the wall-clock claim: per
    // append-and-read, the engine's comparator work must not grow
    // linearly with n. Batch mode re-sorts, so its count is >= n log n;
    // the engine's amortized count stays polylogarithmic plus the
    // occasional merge.
    CacheGuard guard;
    auto work_per_eval = [](size_t n, bool cached) {
        sharp::core::setStatsCacheEnabled(cached);
        auto xs = lognormalDraws(12, n + 64);
        SampleSeries s;
        for (size_t i = 0; i < n; ++i)
            s.append(xs[i]);
        s.stats().ksHalves();
        s.stats().medianCi(0.95);
        StatsEngineCounters before = s.stats().counters();
        for (size_t i = 0; i < 64; ++i) {
            s.append(xs[n + i]);
            s.stats().ksHalves();
            s.stats().medianCi(0.95);
        }
        StatsEngineCounters delta = s.stats().counters() - before;
        return delta;
    };

    StatsEngineCounters incr = work_per_eval(10000, true);
    StatsEngineCounters batch = work_per_eval(10000, false);
    // Batch re-sorts ~10^4 elements per eval (> 10^5 comparator calls);
    // the engine must be at least 10x below it, and the warm median
    // search must beat the cold coverage scan by 5x.
    EXPECT_LT(incr.comparisons * 10, batch.comparisons);
    EXPECT_LT(incr.pmfEvals * 5, batch.pmfEvals);

    // And the engine's own work must grow sub-linearly: 10x the data
    // must cost far less than 10x the comparisons per eval.
    StatsEngineCounters small = work_per_eval(1000, true);
    EXPECT_LT(incr.comparisons, small.comparisons * 5);
}

TEST_F(StatsEngine, ClearInvalidatesAndRecovers)
{
    SampleSeries s;
    for (double v : lognormalDraws(13, 50))
        s.append(v);
    s.stats().sorted();
    s.clear();
    EXPECT_TRUE(s.empty());
    s.append(2.0);
    s.append(1.0);
    const auto &sorted = s.stats().sorted();
    ASSERT_EQ(sorted.size(), 2u);
    EXPECT_DOUBLE_EQ(sorted[0], 1.0);
    EXPECT_DOUBLE_EQ(sorted[1], 2.0);
    EXPECT_TRUE(bitEqual(s.stats().ksHalves(),
                         stats::ksStatistic({2.0}, {1.0})));
}

TEST_F(StatsEngine, CopyAndMoveRebuildCachesSafely)
{
    auto xs = lognormalDraws(14, 120);
    SampleSeries a;
    for (double v : xs)
        a.append(v);
    double ks = a.stats().ksHalves();

    SampleSeries copy = a; // cache not copied; rebuilt lazily
    EXPECT_TRUE(bitEqual(copy.stats().ksHalves(), ks));
    copy.append(1.0);
    EXPECT_TRUE(bitEqual(a.stats().ksHalves(), ks)); // original intact

    SampleSeries moved = std::move(copy);
    EXPECT_EQ(moved.size(), xs.size() + 1);
    double moved_ks = moved.stats().ksHalves();
    double batch =
        stats::ksStatistic(moved.firstHalf(), moved.secondHalf());
    EXPECT_TRUE(bitEqual(moved_ks, batch));

    SampleSeries assigned;
    assigned.append(9.0);
    assigned.stats().sorted();
    assigned = a;
    EXPECT_TRUE(bitEqual(assigned.stats().ksHalves(), ks));
}

TEST_F(StatsEngine, VersionBumpsOnAppendAndClear)
{
    SampleSeries s;
    uint64_t v0 = s.version();
    s.append(1.0);
    EXPECT_GT(s.version(), v0);
    uint64_t v1 = s.version();
    s.clear();
    EXPECT_GT(s.version(), v1);
}

TEST_F(StatsEngine, FastKsWalkMatchesReferenceOnAdversarialData)
{
    // The integer-guarded sorted walk must reproduce the reference
    // double walk bit for bit, including tie groups that span both
    // samples and one side exhausting mid-group.
    sharp::rng::Xoshiro256 gen(15);
    for (int trial = 0; trial < 200; ++trial) {
        size_t na = 1 + gen.next() % 40;
        size_t nb = 1 + gen.next() % 40;
        std::vector<double> a(na), b(nb);
        uint64_t radix = 1 + trial % 9;
        for (auto &v : a)
            v = static_cast<double>(gen.next() % radix);
        for (auto &v : b)
            v = static_cast<double>(gen.next() % radix);
        if (trial % 17 == 0)
            std::fill(a.begin(), a.end(), 4.0);
        if (trial % 23 == 0)
            std::fill(b.begin(), b.end(), 4.0);
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        ASSERT_TRUE(bitEqual(stats::ksStatisticSorted(a, b),
                             stats::ksStatisticSortedReference(a, b)))
            << "trial " << trial;
    }
}

TEST_F(StatsEngine, SizeCutoverSetterRoundTripsAndDefaultIsSane)
{
    // SetUp forced 0; the setter must round-trip arbitrary values and
    // the compile-time default must match what batchMode() assumes.
    EXPECT_EQ(sharp::core::statsCacheCutover(), 0u);
    sharp::core::setStatsCacheCutover(7);
    EXPECT_EQ(sharp::core::statsCacheCutover(), 7u);
    sharp::core::setStatsCacheCutover(
        sharp::core::kDefaultStatsCacheCutover);
    EXPECT_EQ(sharp::core::statsCacheCutover(), 256u);
}

TEST_F(StatsEngine, SizeCutoverRoutesSmallSeriesToBatchExactly)
{
    // At sizes at or below the cutover, the enabled engine must run
    // the identical batch code the kill switch runs: same values bit
    // for bit AND exactly the same deterministic work counters — the
    // small-n no-overhead guarantee the cutover exists for.
    sharp::core::setStatsCacheCutover(
        sharp::core::kDefaultStatsCacheCutover);
    auto xs = lognormalDraws(77, 120);

    auto run = [&](bool enabled) {
        CacheGuard guard;
        sharp::core::setStatsCacheEnabled(enabled);
        SampleSeries s;
        std::vector<double> values;
        for (double v : xs) {
            s.append(v);
            if (s.size() % 13 == 0) {
                values.push_back(s.stats().quantile(0.5));
                values.push_back(s.stats().mean());
                values.push_back(s.stats().ksHalves());
            }
        }
        return std::make_pair(values, s.stats().counters());
    };
    auto [cached_values, cached_work] = run(true);
    auto [batch_values, batch_work] = run(false);

    ASSERT_EQ(cached_values.size(), batch_values.size());
    for (size_t i = 0; i < cached_values.size(); ++i)
        EXPECT_TRUE(bitEqual(cached_values[i], batch_values[i])) << i;
    EXPECT_EQ(cached_work.comparisons, batch_work.comparisons);
    EXPECT_EQ(cached_work.pmfEvals, batch_work.pmfEvals);
}

TEST_F(StatsEngine, SizeCutoverCrossingStaysBitExact)
{
    // Grow a series across the cutover boundary. Below it, accessors
    // run batch-style and the incremental structures see nothing; the
    // first access above it must ingest the entire backlog and carry
    // on bit-for-bit — this is the batch-to-incremental handoff.
    sharp::core::setStatsCacheCutover(32);
    auto xs = lognormalDraws(78, 100);
    SampleSeries s;
    for (size_t i = 0; i < xs.size(); ++i) {
        s.append(xs[i]);
        std::vector<double> sorted(xs.begin(),
                                   xs.begin() + static_cast<long>(i + 1));
        std::sort(sorted.begin(), sorted.end());
        ASSERT_TRUE(bitEqual(s.stats().quantile(0.75),
                             stats::quantileSorted(sorted, 0.75)))
            << "n=" << i + 1;
        ASSERT_EQ(s.stats().sorted(), sorted) << "n=" << i + 1;
    }
}

} // anonymous namespace
