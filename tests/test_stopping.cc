/**
 * @file
 * Tests for the stopping-rule suite: the paper's fixed / CI / KS rules
 * (Table IV) plus the eight distribution-tailored dynamic rules.
 */

#include <gtest/gtest.h>

#include "core/sample_series.hh"
#include "core/stopping/adaptive_rules.hh"
#include "core/stopping/ci_rules.hh"
#include "core/stopping/fixed_rule.hh"
#include "core/stopping/ks_rule.hh"
#include "core/stopping/stopping_rule.hh"
#include "rng/sampler.hh"
#include "rng/synthetic.hh"

namespace
{

using namespace sharp::core;
using namespace sharp::rng;

/** Feed samples from a sampler until the rule fires or cap reached. */
size_t
runsUntilStop(StoppingRule &rule, Sampler &sampler, Xoshiro256 &gen,
              size_t cap = 5000)
{
    rule.reset();
    SampleSeries series;
    while (series.size() < cap) {
        series.append(sampler.sample(gen));
        if (series.size() < rule.minSamples())
            continue;
        if (rule.evaluate(series).stop)
            break;
    }
    return series.size();
}

TEST(FixedRule, FiresExactlyAtCount)
{
    FixedCountRule rule(100);
    SampleSeries series;
    for (int i = 0; i < 99; ++i)
        series.append(1.0);
    EXPECT_FALSE(rule.evaluate(series).stop);
    series.append(1.0);
    StopDecision d = rule.evaluate(series);
    EXPECT_TRUE(d.stop);
    EXPECT_NE(d.reason.find("100"), std::string::npos);
}

TEST(FixedRule, RejectsZeroCount)
{
    EXPECT_THROW(FixedCountRule(0), std::invalid_argument);
}

TEST(FixedRule, IgnoresDataEntirely)
{
    // The paper's criticism: fixed-N "does not adapt to the variance".
    FixedCountRule rule(50);
    Xoshiro256 gen(1);
    ConstantSampler quiet(10.0);
    CauchySampler wild(10.0, 5.0);
    EXPECT_EQ(runsUntilStop(rule, quiet, gen), 50u);
    EXPECT_EQ(runsUntilStop(rule, wild, gen), 50u);
}

TEST(MeanCiRule, StopsQuicklyOnLowVariance)
{
    MeanCiRule rule(0.05, 0.95, 10);
    Xoshiro256 gen(2);
    NormalSampler sampler(10.0, 0.1);
    size_t runs = runsUntilStop(rule, sampler, gen);
    EXPECT_LE(runs, 12u);
}

TEST(MeanCiRule, RunsLongerOnHighVariance)
{
    Xoshiro256 gen(3);
    NormalSampler noisy(10.0, 3.0);
    MeanCiRule rule(0.05, 0.95, 10);
    size_t runs_noisy = runsUntilStop(rule, noisy, gen);
    NormalSampler quiet(10.0, 0.3);
    size_t runs_quiet = runsUntilStop(rule, quiet, gen);
    EXPECT_GT(runs_noisy, runs_quiet);
}

TEST(MeanCiRule, TighterThresholdNeedsMoreRuns)
{
    // Table IV: T2 = 0.01 continues "longer than necessary" vs T1.
    Xoshiro256 gen(4);
    NormalSampler sampler(10.0, 1.0);
    MeanCiRule loose(0.05, 0.95, 10);
    MeanCiRule tight(0.01, 0.95, 10);
    size_t runs_loose = runsUntilStop(loose, sampler, gen);
    size_t runs_tight = runsUntilStop(tight, sampler, gen);
    EXPECT_GT(runs_tight, 2 * runs_loose);
}

TEST(MeanCiRule, RespectsMinimumRuns)
{
    MeanCiRule rule(0.5, 0.95, 30);
    SampleSeries series;
    for (int i = 0; i < 29; ++i)
        series.append(10.0 + (i % 2) * 0.001);
    EXPECT_FALSE(rule.evaluate(series).stop);
}

TEST(MeanCiRule, RejectsBadParameters)
{
    EXPECT_THROW(MeanCiRule(0.0), std::invalid_argument);
    EXPECT_THROW(MeanCiRule(0.05, 1.5), std::invalid_argument);
}

TEST(KsHalvesRule, FiresWhenHalvesMatch)
{
    KsHalvesRule rule(0.1, 20);
    Xoshiro256 gen(5);
    NormalSampler sampler(10.0, 1.0);
    size_t runs = runsUntilStop(rule, sampler, gen);
    EXPECT_LT(runs, 600u);
    EXPECT_GE(runs, 20u);
}

TEST(KsHalvesRule, KeepsGoingWhileShapeDrifts)
{
    // A strongly trending series never self-matches: halves differ.
    KsHalvesRule rule(0.1, 20);
    SampleSeries series;
    for (int i = 0; i < 500; ++i) {
        series.append(static_cast<double>(i));
        if (series.size() >= rule.minSamples())
            EXPECT_FALSE(rule.evaluate(series).stop) << i;
    }
}

TEST(KsHalvesRule, CriterionIsTheKsValue)
{
    KsHalvesRule rule(0.5, 4);
    SampleSeries series({1.0, 2.0, 1.0, 2.0});
    StopDecision d = rule.evaluate(series);
    EXPECT_GE(d.criterion, 0.0);
    EXPECT_LE(d.criterion, 1.0);
    EXPECT_DOUBLE_EQ(d.threshold, 0.5);
}

TEST(KsHalvesRule, RejectsBadThreshold)
{
    EXPECT_THROW(KsHalvesRule(0.0), std::invalid_argument);
    EXPECT_THROW(KsHalvesRule(1.5), std::invalid_argument);
}

TEST(ConstantRule, StopsImmediatelyOnConstantData)
{
    ConstantRule rule(1e-9, 5);
    Xoshiro256 gen(6);
    ConstantSampler sampler(10.0);
    EXPECT_EQ(runsUntilStop(rule, sampler, gen), 5u);
}

TEST(ConstantRule, NeverFiresOnNoisyData)
{
    ConstantRule rule(1e-9, 5);
    Xoshiro256 gen(7);
    NormalSampler sampler(10.0, 0.5);
    EXPECT_EQ(runsUntilStop(rule, sampler, gen, 200), 200u);
}

TEST(NormalCiRule, StopsOnNormalData)
{
    NormalMeanCiRule rule(0.02, 0.95, 10);
    Xoshiro256 gen(8);
    NormalSampler sampler(10.0, 0.5);
    size_t runs = runsUntilStop(rule, sampler, gen);
    EXPECT_LT(runs, 200u);
}

TEST(GeoMeanCiRule, StopsOnLogNormalData)
{
    GeoMeanCiRule rule(0.05, 0.95, 10);
    Xoshiro256 gen(9);
    LogNormalSampler sampler(2.0, 0.5);
    size_t runs = runsUntilStop(rule, sampler, gen);
    EXPECT_LT(runs, 2500u);
    EXPECT_GT(runs, 10u);
}

TEST(GeoMeanCiRule, FallsBackGracefullyOnNegativeData)
{
    GeoMeanCiRule rule(0.5, 0.95, 10);
    SampleSeries series;
    for (int i = 0; i < 50; ++i)
        series.append(-10.0 + 0.001 * (i % 3));
    // Must not throw despite non-positive data.
    EXPECT_NO_THROW(rule.evaluate(series));
}

TEST(MedianCiRule, HandlesHeavyTailsWhereMeanCiStruggles)
{
    Xoshiro256 gen(10);
    CauchySampler sampler(10.0, 0.5);
    MedianCiRule median_rule(0.05, 0.95, 20);
    size_t runs = runsUntilStop(median_rule, sampler, gen, 10000);
    // The median CI converges fine for Cauchy.
    EXPECT_LT(runs, 3000u);
}

TEST(UniformRangeRule, StopsWhenRangeSaturates)
{
    UniformRangeRule rule(0.01, 0.25, 20);
    Xoshiro256 gen(11);
    UniformSampler sampler(5.0, 15.0);
    size_t runs = runsUntilStop(rule, sampler, gen);
    EXPECT_LT(runs, 400u);
    EXPECT_GE(runs, 20u);
}

TEST(UniformRangeRule, KeepsGoingWhileRangeGrows)
{
    UniformRangeRule rule(0.001, 0.25, 10);
    SampleSeries series;
    // Strictly widening range: alternating ±i.
    for (int i = 1; i <= 100; ++i) {
        series.append(i % 2 == 0 ? static_cast<double>(i)
                                 : -static_cast<double>(i));
        if (series.size() >= rule.minSamples())
            EXPECT_FALSE(rule.evaluate(series).stop) << i;
    }
}

TEST(AutocorrEssRule, DemandsMoreRunsOnCorrelatedData)
{
    Xoshiro256 gen(12);
    AutocorrEssRule rule(0.05, 0.95, 25.0, 30);

    Ar1Sampler correlated(10.0, 0.9, 0.3);
    size_t runs_corr = runsUntilStop(rule, correlated, gen, 5000);

    NormalSampler iid(10.0, 0.3);
    size_t runs_iid = runsUntilStop(rule, iid, gen, 5000);

    EXPECT_GT(runs_corr, 2 * runs_iid);
}

TEST(ModalityRule, WaitsForAllModesToAppear)
{
    // A mixture with a rare (8%) slow mode: the rule must not stop
    // before the rare mode shows up in both halves.
    Xoshiro256 gen(13);
    std::vector<MixtureSampler::Component> comps;
    comps.push_back({0.92, std::make_shared<NormalSampler>(10.0, 0.2)});
    comps.push_back({0.08, std::make_shared<NormalSampler>(14.0, 0.2)});
    MixtureSampler sampler(std::move(comps));

    ModalityRule rule(0.1, 0.15, 40);
    size_t runs = runsUntilStop(rule, sampler, gen);
    // By the time it stops, both halves must contain slow-mode samples.
    EXPECT_GE(runs, 40u);
    EXPECT_LT(runs, 3000u);
}

TEST(TailQuantileRule, StopsWhenTailIsPinnedDown)
{
    TailQuantileRule rule(0.95, 0.1, 0.95, 50);
    Xoshiro256 gen(14);
    NormalSampler sampler(10.0, 1.0);
    size_t runs = runsUntilStop(rule, sampler, gen);
    EXPECT_GE(runs, 50u);
    EXPECT_LT(runs, 2000u);
}

TEST(TailQuantileRule, NeedsMoreRunsThanMedianPrecision)
{
    Xoshiro256 gen(15);
    LogNormalSampler sampler(1.0, 0.8);
    MedianCiRule med(0.1, 0.95, 20);
    TailQuantileRule tail(0.99, 0.1, 0.95, 50);
    size_t runs_med = runsUntilStop(med, sampler, gen, 20000);
    size_t runs_tail = runsUntilStop(tail, sampler, gen, 20000);
    EXPECT_GT(runs_tail, runs_med);
}

TEST(Factory, BuildsEveryRegisteredRule)
{
    auto &factory = StoppingRuleFactory::instance();
    for (const auto &name : factory.names()) {
        auto rule = factory.make(name);
        ASSERT_TRUE(rule) << name;
        EXPECT_EQ(rule->name(), name);
        EXPECT_FALSE(rule->describe().empty());
    }
}

TEST(Factory, AppliesParameters)
{
    auto &factory = StoppingRuleFactory::instance();
    auto rule = factory.make("fixed", {{"count", 7.0}});
    auto *fixed = dynamic_cast<FixedCountRule *>(rule.get());
    ASSERT_NE(fixed, nullptr);
    EXPECT_EQ(fixed->count(), 7u);

    auto ks = factory.make("ks", {{"threshold", 0.25}});
    auto *ks_rule = dynamic_cast<KsHalvesRule *>(ks.get());
    ASSERT_NE(ks_rule, nullptr);
    EXPECT_DOUBLE_EQ(ks_rule->ksThreshold(), 0.25);
}

TEST(Factory, RejectsUnknownRule)
{
    EXPECT_THROW(StoppingRuleFactory::instance().make("nope"),
                 std::out_of_range);
}

TEST(Factory, RejectsInvalidParameterValues)
{
    auto &factory = StoppingRuleFactory::instance();
    EXPECT_THROW(factory.make("ks", {{"threshold", -1.0}}),
                 std::invalid_argument);
    EXPECT_THROW(factory.make("fixed", {{"count", -5.0}}),
                 std::invalid_argument);
}

TEST(TailoredSuite, HasEightRules)
{
    // §IV-c: "eight dynamic stopping rules tailored for specific types
    // of distributions".
    auto suite = makeTailoredSuite();
    EXPECT_EQ(suite.size(), 8u);
    std::vector<std::string> names;
    for (const auto &rule : suite)
        names.push_back(rule->name());
    // All distinct.
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(StopDecision, FactoriesSetFields)
{
    StopDecision keep = StopDecision::keepGoing(0.3, 0.1, "why");
    EXPECT_FALSE(keep.stop);
    EXPECT_DOUBLE_EQ(keep.criterion, 0.3);
    StopDecision stop = StopDecision::stopNow(0.05, 0.1, "done");
    EXPECT_TRUE(stop.stop);
    EXPECT_EQ(stop.reason, "done");
}

} // anonymous namespace
