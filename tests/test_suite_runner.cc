/**
 * @file
 * Tests for the suite runner.
 */

#include <gtest/gtest.h>

#include "launcher/suite.hh"

namespace
{

using namespace sharp;
using launcher::SuiteEntry;

core::ExperimentConfig
ksConfig(size_t max_samples = 800)
{
    core::ExperimentConfig config;
    config.ruleName = "ks";
    config.ruleParams = {{"threshold", 0.1}, {"min", 20}};
    config.options.maxSamples = max_samples;
    config.seed = 9;
    return config;
}

TEST(SuiteRunner, RunsEveryEntry)
{
    std::vector<SuiteEntry> entries = {{"bfs", "machine1"},
                                       {"lud", "machine1"},
                                       {"kmeans", "machine3"}};
    auto report = launcher::runSuite(entries, ksConfig());
    ASSERT_EQ(report.outcomes.size(), 3u);
    EXPECT_EQ(report.failures, 0u);
    size_t total = 0;
    for (const auto &outcome : report.outcomes) {
        EXPECT_FALSE(outcome.failed) << outcome.error;
        EXPECT_TRUE(outcome.ruleFired) << outcome.entry.workload;
        EXPECT_GE(outcome.series.size(), 20u);
        total += outcome.series.size();
    }
    EXPECT_EQ(report.totalRuns, total);
}

TEST(SuiteRunner, BadEntriesRecordedNotFatal)
{
    std::vector<SuiteEntry> entries = {
        {"bfs", "machine1"},
        {"linpack", "machine1"},    // unknown workload
        {"bfs-CUDA", "machine2"}};  // no GPU on machine2
    auto report = launcher::runSuite(entries, ksConfig());
    ASSERT_EQ(report.outcomes.size(), 3u);
    EXPECT_EQ(report.failures, 2u);
    EXPECT_FALSE(report.outcomes[0].failed);
    EXPECT_TRUE(report.outcomes[1].failed);
    EXPECT_FALSE(report.outcomes[1].error.empty());
    EXPECT_TRUE(report.outcomes[2].failed);
}

TEST(SuiteRunner, SavedVersusFixedMatchesArithmetic)
{
    std::vector<SuiteEntry> entries = {{"backprop", "machine1"},
                                       {"lud", "machine1"}};
    auto report = launcher::runSuite(entries, ksConfig(1000));
    double saved = report.savedVersusFixed(1000);
    double expected =
        1.0 - static_cast<double>(report.totalRuns) / 2000.0;
    EXPECT_DOUBLE_EQ(saved, expected);
    EXPECT_GT(saved, 0.5); // well-behaved benchmarks stop early
}

TEST(SuiteRunner, RodiniaSuiteRespectsGpuAvailability)
{
    EXPECT_EQ(launcher::rodiniaSuite("machine1").size(), 20u);
    EXPECT_EQ(launcher::rodiniaSuite("machine2").size(), 11u);
    EXPECT_EQ(launcher::rodiniaSuite("machine3").size(), 20u);
    EXPECT_THROW(launcher::rodiniaSuite("machine9"), std::out_of_range);
}

// The paper-level guarantee of the parallel layer: jobs only changes
// wall-clock, never results. Run the full Rodinia sim grid serially
// and with a 4-wide pool and require byte-identical outcomes at
// identical indices.
TEST(SuiteRunner, ParallelSuiteMatchesSerialExactly)
{
    auto entries = launcher::rodiniaSuite("machine1");
    auto config = ksConfig(400);
    auto serial = launcher::runSuite(entries, config, 0, 1);
    auto parallel = launcher::runSuite(entries, config, 0, 4);

    ASSERT_EQ(parallel.outcomes.size(), serial.outcomes.size());
    EXPECT_EQ(parallel.totalRuns, serial.totalRuns);
    EXPECT_EQ(parallel.failures, serial.failures);
    for (size_t i = 0; i < serial.outcomes.size(); ++i) {
        const auto &a = serial.outcomes[i];
        const auto &b = parallel.outcomes[i];
        EXPECT_EQ(b.entry.workload, a.entry.workload);
        EXPECT_EQ(b.failed, a.failed);
        EXPECT_EQ(b.ruleFired, a.ruleFired);
        EXPECT_EQ(b.stopReason, a.stopReason);
        ASSERT_EQ(b.series.size(), a.series.size())
            << a.entry.workload;
        for (size_t j = 0; j < a.series.size(); ++j)
            EXPECT_DOUBLE_EQ(b.series[j], a.series[j])
                << a.entry.workload << " sample " << j;
    }
}

TEST(SuiteRunner, ParallelSuiteRecordsFailedEntriesInPlace)
{
    std::vector<SuiteEntry> entries = {
        {"bfs", "machine1"},
        {"linpack", "machine1"},   // unknown workload
        {"bfs-CUDA", "machine2"},  // no GPU on machine2
        {"lud", "machine1"}};
    auto report = launcher::runSuite(entries, ksConfig(), 0, 4);
    ASSERT_EQ(report.outcomes.size(), 4u);
    EXPECT_EQ(report.failures, 2u);
    EXPECT_FALSE(report.outcomes[0].failed);
    EXPECT_TRUE(report.outcomes[1].failed);
    EXPECT_TRUE(report.outcomes[2].failed);
    EXPECT_FALSE(report.outcomes[3].failed);
}

TEST(SuiteRunner, DeterministicAcrossRuns)
{
    std::vector<SuiteEntry> entries = {{"hotspot", "machine1"}};
    auto a = launcher::runSuite(entries, ksConfig());
    auto b = launcher::runSuite(entries, ksConfig());
    ASSERT_EQ(a.outcomes[0].series.size(), b.outcomes[0].series.size());
    for (size_t i = 0; i < a.outcomes[0].series.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.outcomes[0].series[i],
                         b.outcomes[0].series[i]);
    }
}

} // anonymous namespace
