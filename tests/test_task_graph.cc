/**
 * @file
 * Tests for the workflow task graph: ordering, cycle detection, and
 * parallel waves.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "workflow/task_graph.hh"

namespace
{

using namespace sharp::workflow;

TaskGraph
diamond()
{
    // a -> b, a -> c, {b, c} -> d
    TaskGraph graph;
    graph.addTask({"a", "echo a", {}});
    graph.addTask({"b", "echo b", {"a"}});
    graph.addTask({"c", "echo c", {"a"}});
    graph.addTask({"d", "echo d", {"b", "c"}});
    return graph;
}

size_t
indexOf(const std::vector<std::string> &order, const std::string &name)
{
    return static_cast<size_t>(
        std::find(order.begin(), order.end(), name) - order.begin());
}

TEST(TaskGraph, AddAndLookup)
{
    TaskGraph graph = diamond();
    EXPECT_EQ(graph.size(), 4u);
    EXPECT_TRUE(graph.contains("c"));
    EXPECT_FALSE(graph.contains("z"));
    EXPECT_EQ(graph.task("b").command, "echo b");
    EXPECT_THROW(graph.task("z"), std::out_of_range);
}

TEST(TaskGraph, RejectsDuplicateNames)
{
    TaskGraph graph;
    graph.addTask({"a", "", {}});
    EXPECT_THROW(graph.addTask({"a", "", {}}), std::invalid_argument);
}

TEST(TaskGraph, TopologicalOrderRespectsDependencies)
{
    auto order = diamond().topologicalOrder();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_LT(indexOf(order, "a"), indexOf(order, "b"));
    EXPECT_LT(indexOf(order, "a"), indexOf(order, "c"));
    EXPECT_LT(indexOf(order, "b"), indexOf(order, "d"));
    EXPECT_LT(indexOf(order, "c"), indexOf(order, "d"));
}

TEST(TaskGraph, TopologicalOrderIsDeterministic)
{
    EXPECT_EQ(diamond().topologicalOrder(),
              diamond().topologicalOrder());
    // Ties break by insertion order: b before c.
    auto order = diamond().topologicalOrder();
    EXPECT_LT(indexOf(order, "b"), indexOf(order, "c"));
}

TEST(TaskGraph, DetectsCycles)
{
    TaskGraph graph;
    graph.addTask({"a", "", {"b"}});
    graph.addTask({"b", "", {"a"}});
    EXPECT_THROW(graph.topologicalOrder(), std::invalid_argument);
    EXPECT_THROW(graph.validate(), std::invalid_argument);
}

TEST(TaskGraph, DetectsSelfDependency)
{
    TaskGraph graph;
    graph.addTask({"a", "", {"a"}});
    EXPECT_THROW(graph.validate(), std::invalid_argument);
}

TEST(TaskGraph, DetectsDanglingDependencies)
{
    TaskGraph graph;
    graph.addTask({"a", "", {"ghost"}});
    EXPECT_THROW(graph.validate(), std::invalid_argument);
}

TEST(TaskGraph, AddDependencyAfterTheFact)
{
    TaskGraph graph;
    graph.addTask({"x", "", {}});
    graph.addTask({"y", "", {}});
    graph.addDependency("y", "x");
    auto order = graph.topologicalOrder();
    EXPECT_LT(indexOf(order, "x"), indexOf(order, "y"));
    EXPECT_THROW(graph.addDependency("y", "ghost"), std::out_of_range);
    EXPECT_THROW(graph.addDependency("ghost", "x"), std::out_of_range);
}

TEST(TaskGraph, WavesGroupParallelizableTasks)
{
    auto waves = diamond().waves();
    ASSERT_EQ(waves.size(), 3u);
    EXPECT_EQ(waves[0], std::vector<std::string>{"a"});
    EXPECT_EQ(waves[1], (std::vector<std::string>{"b", "c"}));
    EXPECT_EQ(waves[2], std::vector<std::string>{"d"});
}

TEST(TaskGraph, IndependentTasksShareWaveZero)
{
    TaskGraph graph;
    graph.addTask({"t1", "", {}});
    graph.addTask({"t2", "", {}});
    graph.addTask({"t3", "", {}});
    auto waves = graph.waves();
    ASSERT_EQ(waves.size(), 1u);
    EXPECT_EQ(waves[0].size(), 3u);
}

TEST(TaskGraph, LongChainProducesOneWavePerTask)
{
    TaskGraph graph;
    graph.addTask({"s0", "", {}});
    for (int i = 1; i < 6; ++i) {
        graph.addTask({"s" + std::to_string(i), "",
                       {"s" + std::to_string(i - 1)}});
    }
    EXPECT_EQ(graph.waves().size(), 6u);
}

TEST(TaskGraph, EmptyGraphIsValid)
{
    TaskGraph graph;
    EXPECT_NO_THROW(graph.validate());
    EXPECT_TRUE(graph.topologicalOrder().empty());
    EXPECT_TRUE(graph.waves().empty());
}

TEST(TaskGraph, CycleErrorSpellsOutTheFullPath)
{
    TaskGraph graph;
    graph.addTask({"a", "", {"c"}});
    graph.addTask({"b", "", {"a"}});
    graph.addTask({"c", "", {"b"}});
    EXPECT_EQ(graph.findCycle(),
              (std::vector<std::string>{"a", "c", "b", "a"}));
    try {
        graph.validate();
        FAIL() << "expected a cycle error";
    } catch (const std::invalid_argument &problem) {
        EXPECT_STREQ(problem.what(),
                     "workflow graph has a cycle: a -> c -> b -> a");
    }
    try {
        graph.topologicalOrder();
        FAIL() << "expected a cycle error";
    } catch (const std::invalid_argument &problem) {
        EXPECT_STREQ(problem.what(),
                     "workflow graph has a cycle: a -> c -> b -> a");
    }
}

TEST(TaskGraph, FindCycleIsEmptyOnAcyclicGraphs)
{
    EXPECT_TRUE(diamond().findCycle().empty());
    EXPECT_TRUE(TaskGraph().findCycle().empty());
}

TEST(TaskGraph, FindCycleIgnoresDanglingDependencies)
{
    TaskGraph graph;
    graph.addTask({"a", "", {"ghost"}});
    EXPECT_TRUE(graph.findCycle().empty());
}

} // anonymous namespace
