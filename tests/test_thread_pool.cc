/**
 * @file
 * Tests for the util thread pool and parallelFor, the foundation of
 * the parallel execution layer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hh"

namespace
{

using sharp::util::ThreadPool;
using sharp::util::parallelFor;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([&] { ++count; }));
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ZeroThreadsClampedToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    pool.submit([] {}).get();
}

TEST(ThreadPool, TaskExceptionDeliveredThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        [] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(future.get(), std::runtime_error);
    // The worker survives a throwing task.
    pool.submit([] {}).get();
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i) {
            pool.submit([&] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++count;
            });
        }
    } // join without collecting futures
    EXPECT_EQ(count.load(), 32);
}

TEST(ParallelFor, ResultsLandAtTheirIndex)
{
    std::vector<size_t> out(100, 0);
    parallelFor(8, out.size(), [&](size_t i) { out[i] = i * i; });
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelFor, SerialAndParallelAgree)
{
    auto fill = [](size_t jobs) {
        std::vector<int> out(257, 0);
        parallelFor(jobs, out.size(),
                    [&](size_t i) { out[i] = static_cast<int>(3 * i); });
        return out;
    };
    EXPECT_EQ(fill(1), fill(6));
}

TEST(ParallelFor, ActuallyRunsConcurrently)
{
    // 8 sleeps of 50 ms on 8 workers should take ~50 ms, not 400 ms.
    auto start = std::chrono::steady_clock::now();
    parallelFor(8, 8, [](size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    EXPECT_LT(elapsed, 0.3);
}

TEST(ParallelFor, FirstExceptionByIndexPropagates)
{
    std::atomic<int> ran{0};
    try {
        parallelFor(4, 16, [&](size_t i) {
            ++ran;
            if (i % 2 == 1)
                throw std::runtime_error("odd " + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &ex) {
        EXPECT_STREQ(ex.what(), "odd 1");
    }
    // Remaining indices still executed before the rethrow.
    EXPECT_EQ(ran.load(), 16);
}

TEST(ParallelFor, HandlesEmptyAndSingleRanges)
{
    int calls = 0;
    parallelFor(4, 0, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(4, 1, [&](size_t i) { calls += static_cast<int>(i) + 1; });
    EXPECT_EQ(calls, 1);
}

} // anonymous namespace
