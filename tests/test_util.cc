/**
 * @file
 * Tests for sharp::util — string helpers, table formatting, time
 * formatting, and message capture.
 */

#include <gtest/gtest.h>

#include "util/message.hh"
#include "util/string_utils.hh"
#include "util/table.hh"
#include "util/time_utils.hh"

namespace
{

using namespace sharp::util;

TEST(StringSplit, BasicFields)
{
    auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(StringSplit, PreservesEmptyFields)
{
    auto parts = split(",x,,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "x");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "");
}

TEST(StringSplit, SingleFieldWithoutDelimiter)
{
    auto parts = split("alone", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "alone");
}

TEST(StringJoin, RoundTripsWithSplit)
{
    std::vector<std::string> parts = {"x", "", "yz"};
    EXPECT_EQ(join(parts, ","), "x,,yz");
    EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(StringTrim, RemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  hello\t\n"), "hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t "), "");
    EXPECT_EQ(trim("inner space kept"), "inner space kept");
}

TEST(StringPredicates, StartsAndEndsWith)
{
    EXPECT_TRUE(startsWith("execution_time", "exec"));
    EXPECT_FALSE(startsWith("exec", "execution"));
    EXPECT_TRUE(endsWith("report.md", ".md"));
    EXPECT_FALSE(endsWith("md", "report.md"));
}

TEST(StringCase, ToLower)
{
    EXPECT_EQ(toLower("Hotspot-CUDA"), "hotspot-cuda");
}

TEST(ParseDouble, AcceptsNumbersRejectsJunk)
{
    EXPECT_DOUBLE_EQ(parseDouble("3.46").value(), 3.46);
    EXPECT_DOUBLE_EQ(parseDouble(" -2e3 ").value(), -2000.0);
    EXPECT_FALSE(parseDouble("12abc").has_value());
    EXPECT_FALSE(parseDouble("").has_value());
    EXPECT_FALSE(parseDouble("nanx").has_value());
}

TEST(ParseLong, AcceptsIntegersRejectsFractions)
{
    EXPECT_EQ(parseLong("100").value(), 100);
    EXPECT_EQ(parseLong("-5").value(), -5);
    EXPECT_FALSE(parseLong("1.5").has_value());
    EXPECT_FALSE(parseLong("").has_value());
}

TEST(ReplaceAll, ReplacesEveryOccurrence)
{
    EXPECT_EQ(replaceAll("a-b-c", "-", "+"), "a+b+c");
    EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba");
    EXPECT_EQ(replaceAll("unchanged", "zz", "x"), "unchanged");
}

TEST(FormatDouble, StripsTrailingZeros)
{
    EXPECT_EQ(formatDouble(3.4600, 4), "3.46");
    EXPECT_EQ(formatDouble(2.0, 3), "2");
    EXPECT_EQ(formatDouble(0.5, 2), "0.5");
    EXPECT_EQ(formatDouble(-0.0, 2), "0");
}

TEST(FormatDuration, PicksSensibleUnits)
{
    EXPECT_EQ(formatDuration(0.000002), "2 us");
    EXPECT_EQ(formatDuration(0.532), "532 ms");
    EXPECT_EQ(formatDuration(3.46), "3.46 s");
    EXPECT_EQ(formatDuration(133.0), "2 m 13 s");
}

TEST(Stopwatch, MeasuresElapsedTime)
{
    Stopwatch watch;
    double t0 = watch.elapsedSeconds();
    EXPECT_GE(t0, 0.0);
    // Monotonic: successive reads never go backwards.
    EXPECT_GE(watch.elapsedSeconds(), t0);
}

TEST(IsoTimestamp, HasExpectedShape)
{
    std::string ts = isoTimestamp();
    ASSERT_EQ(ts.size(), 20u);
    EXPECT_EQ(ts[4], '-');
    EXPECT_EQ(ts[10], 'T');
    EXPECT_EQ(ts.back(), 'Z');
}

TEST(TextTable, RendersAlignedAscii)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1.5"});
    table.addRow({"b", "20"});
    std::string out = table.render();
    EXPECT_NE(out.find("| alpha |"), std::string::npos);
    EXPECT_NE(out.find("+-------+"), std::string::npos);
    // Numeric cells are right-aligned.
    EXPECT_NE(out.find("|   1.5 |"), std::string::npos);
}

TEST(TextTable, RendersMarkdown)
{
    TextTable table({"k", "v"});
    table.addRow({"x", "1"});
    std::string md = table.renderMarkdown();
    EXPECT_NE(md.find("| k | v |"), std::string::npos);
    EXPECT_NE(md.find("|---|"), std::string::npos);
}

TEST(TextTable, CountsRows)
{
    TextTable table({"a"});
    EXPECT_EQ(table.numRows(), 0u);
    table.addRow({"1"});
    table.addRow({"2"});
    EXPECT_EQ(table.numRows(), 2u);
}

TEST(Messages, CaptureRoutesWarnAndInform)
{
    std::string sink;
    setMessageCapture(&sink);
    warn("watch out %d", 42);
    inform("status %s", "ok");
    setMessageCapture(nullptr);
    EXPECT_NE(sink.find("warn: watch out 42"), std::string::npos);
    EXPECT_NE(sink.find("info: status ok"), std::string::npos);
}

} // anonymous namespace
