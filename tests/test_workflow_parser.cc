/**
 * @file
 * Tests for the CNCF Serverless Workflow subset parser (§IV-b).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "workflow/workflow_parser.hh"

namespace
{

using namespace sharp::workflow;

const char *sequentialDoc = R"({
    "id": "rodinia-pipeline",
    "name": "Rodinia pipeline",
    "functions": [
        {"name": "prepare", "operation": "echo prepare"},
        {"name": "benchmark", "operation": "echo bench"},
        {"name": "report", "operation": "echo report"}
    ],
    "states": [
        {"name": "setup", "type": "operation",
         "actions": [{"functionRef": "prepare"}],
         "transition": "run"},
        {"name": "run", "type": "operation",
         "actions": [{"functionRef": {"refName": "benchmark"}}],
         "transition": {"nextState": "summarize"}},
        {"name": "summarize", "type": "operation",
         "actions": [{"functionRef": "report"}], "end": true}
    ]
})";

const char *parallelDoc = R"({
    "id": "fanout",
    "functions": [
        {"name": "gen", "operation": "echo gen"},
        {"name": "cpu", "operation": "echo cpu"},
        {"name": "gpu", "operation": "echo gpu"},
        {"name": "merge", "operation": "echo merge"}
    ],
    "states": [
        {"name": "generate", "type": "operation",
         "actions": [{"functionRef": "gen"}], "transition": "sweep"},
        {"name": "sweep", "type": "parallel",
         "branches": [
            {"name": "cpuBranch",
             "actions": [{"functionRef": "cpu"}]},
            {"name": "gpuBranch",
             "actions": [{"functionRef": "gpu"}]}
         ],
         "transition": "join"},
        {"name": "join", "type": "operation",
         "actions": [{"functionRef": "merge"}], "end": true}
    ]
})";

size_t
indexOf(const std::vector<std::string> &order, const std::string &name)
{
    return static_cast<size_t>(
        std::find(order.begin(), order.end(), name) - order.begin());
}

TEST(WorkflowParser, SequentialStatesChain)
{
    Workflow wf = parseServerlessWorkflowText(sequentialDoc);
    EXPECT_EQ(wf.id, "rodinia-pipeline");
    EXPECT_EQ(wf.name, "Rodinia pipeline");
    EXPECT_EQ(wf.graph.size(), 3u);

    auto order = wf.graph.topologicalOrder();
    EXPECT_LT(indexOf(order, "setup.0.prepare"),
              indexOf(order, "run.0.benchmark"));
    EXPECT_LT(indexOf(order, "run.0.benchmark"),
              indexOf(order, "summarize.0.report"));
}

TEST(WorkflowParser, CommandsComeFromFunctionOperations)
{
    Workflow wf = parseServerlessWorkflowText(sequentialDoc);
    EXPECT_EQ(wf.graph.task("run.0.benchmark").command, "echo bench");
}

TEST(WorkflowParser, MultipleActionsInOneStateAreSequential)
{
    Workflow wf = parseServerlessWorkflowText(R"({
        "id": "multi",
        "functions": [{"name": "f", "operation": "echo f"},
                      {"name": "g", "operation": "echo g"}],
        "states": [{"name": "s", "type": "operation",
                    "actions": [{"functionRef": "f"},
                                {"functionRef": "g"}]}]
    })");
    const Task &second = wf.graph.task("s.1.g");
    ASSERT_EQ(second.dependencies.size(), 1u);
    EXPECT_EQ(second.dependencies[0], "s.0.f");
}

TEST(WorkflowParser, ParallelBranchesFanOutAndJoin)
{
    Workflow wf = parseServerlessWorkflowText(parallelDoc);
    EXPECT_EQ(wf.graph.size(), 4u);

    // Both branch tasks depend on the generator...
    const Task &cpu = wf.graph.task("sweep.cpuBranch.0.cpu");
    const Task &gpu = wf.graph.task("sweep.gpuBranch.0.gpu");
    ASSERT_EQ(cpu.dependencies.size(), 1u);
    EXPECT_EQ(cpu.dependencies[0], "generate.0.gen");
    EXPECT_EQ(gpu.dependencies[0], "generate.0.gen");

    // ...and the join depends on both branches.
    const Task &join = wf.graph.task("join.0.merge");
    EXPECT_EQ(join.dependencies.size(), 2u);

    // Waves confirm the branches run in parallel.
    auto waves = wf.graph.waves();
    ASSERT_EQ(waves.size(), 3u);
    EXPECT_EQ(waves[1].size(), 2u);
}

TEST(WorkflowParser, RejectsUnknownFunctionReference)
{
    EXPECT_THROW(parseServerlessWorkflowText(R"({
        "id": "bad", "functions": [],
        "states": [{"name": "s", "type": "operation",
                    "actions": [{"functionRef": "ghost"}]}]
    })"),
                 std::invalid_argument);
}

TEST(WorkflowParser, RejectsUnknownTransitionTarget)
{
    EXPECT_THROW(parseServerlessWorkflowText(R"({
        "id": "bad",
        "functions": [{"name": "f", "operation": "x"}],
        "states": [{"name": "s", "type": "operation",
                    "actions": [{"functionRef": "f"}],
                    "transition": "ghost"}]
    })"),
                 std::invalid_argument);
}

TEST(WorkflowParser, RejectsUnsupportedStateType)
{
    EXPECT_THROW(parseServerlessWorkflowText(R"({
        "id": "bad",
        "functions": [{"name": "f", "operation": "x"}],
        "states": [{"name": "s", "type": "switch",
                    "actions": [{"functionRef": "f"}]}]
    })"),
                 std::invalid_argument);
}

TEST(WorkflowParser, RejectsStructuralProblems)
{
    EXPECT_THROW(parseServerlessWorkflowText("[1,2,3]"),
                 std::invalid_argument);
    EXPECT_THROW(parseServerlessWorkflowText(R"({"id": "x"})"),
                 std::invalid_argument);
    EXPECT_THROW(parseServerlessWorkflowText(R"({
        "id": "x", "states": [{"name": "s", "type": "operation"}]
    })"),
                 std::invalid_argument);
    EXPECT_THROW(parseServerlessWorkflowText(R"({
        "id": "x",
        "states": [{"name": "s", "type": "parallel", "branches": []}]
    })"),
                 std::invalid_argument);
}

TEST(WorkflowParser, MalformedDocumentsErrorCleanly)
{
    // Every proper prefix of a valid spec must raise, not crash or
    // hang: the parser is the first thing untrusted input touches.
    const std::string doc = sequentialDoc;
    for (size_t len = 0; len < doc.size(); len += 7)
        EXPECT_THROW(parseServerlessWorkflowText(doc.substr(0, len)),
                     std::exception)
            << "prefix length " << len;

    // Bad escape inside a state name.
    EXPECT_THROW(parseServerlessWorkflowText(R"({
        "id": "x", "states": [{"name": "\q"}]
    })"),
                 std::exception);
    // Duplicate keys come back as a JSON parse error.
    EXPECT_THROW(parseServerlessWorkflowText(R"({
        "id": "x", "id": "y",
        "functions": [{"name": "f", "operation": "x"}],
        "states": [{"name": "s", "type": "operation",
                    "actions": [{"functionRef": "f"}]}]
    })"),
                 std::exception);
    // Pathological nesting must hit the parser's depth guard.
    std::string deep = R"({"id": "x", "states": )";
    for (int i = 0; i < 400; ++i)
        deep += "[";
    EXPECT_THROW(parseServerlessWorkflowText(deep), std::exception);
}

TEST(WorkflowParser, DefaultsIdAndName)
{
    Workflow wf = parseServerlessWorkflowText(R"({
        "functions": [{"name": "f", "operation": "x"}],
        "states": [{"name": "s", "type": "operation",
                    "actions": [{"functionRef": "f"}]}]
    })");
    EXPECT_EQ(wf.id, "workflow");
    EXPECT_EQ(wf.name, "workflow");
}

TEST(WorkflowParser, CyclicTransitionsDetected)
{
    EXPECT_THROW(parseServerlessWorkflowText(R"({
        "id": "loop",
        "functions": [{"name": "f", "operation": "x"}],
        "states": [
            {"name": "a", "type": "operation",
             "actions": [{"functionRef": "f"}], "transition": "b"},
            {"name": "b", "type": "operation",
             "actions": [{"functionRef": "f"}], "transition": "a"}
        ]
    })"),
                 std::invalid_argument);
}

} // anonymous namespace
