/**
 * @file
 * Tests for SimulatedWorkload — the generative model that substitutes
 * for the paper's hardware testbed. The properties verified here are
 * exactly the phenomena the evaluation depends on: determinism,
 * stable means across days with shifting shapes (Fig. 5), per-
 * benchmark H100 speedups (Figs. 8/9), and plausible modality.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/machine.hh"
#include "sim/rodinia.hh"
#include "sim/workload.hh"
#include "stats/descriptive.hh"
#include "stats/kde.hh"
#include "stats/similarity.hh"

namespace
{

using namespace sharp::sim;
namespace stats = sharp::stats;

const MachineSpec &m1 = machineById("machine1");
const MachineSpec &m2 = machineById("machine2");
const MachineSpec &m3 = machineById("machine3");

TEST(Workload, DeterministicGivenSeed)
{
    const auto &bench = rodiniaByName("hotspot");
    SimulatedWorkload a(bench, m1, 0, 42);
    SimulatedWorkload b(bench, m1, 0, 42);
    for (int i = 0; i < 200; ++i)
        EXPECT_DOUBLE_EQ(a.sample(), b.sample());
}

TEST(Workload, DifferentSeedsDiffer)
{
    const auto &bench = rodiniaByName("hotspot");
    SimulatedWorkload a(bench, m1, 0, 1);
    SimulatedWorkload b(bench, m1, 0, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.sample() == b.sample();
    EXPECT_LT(same, 5);
}

TEST(Workload, SamplesArePositiveAndBounded)
{
    for (const auto &bench : rodiniaRegistry()) {
        if (bench.kind == BenchmarkKind::Cuda)
            continue;
        SimulatedWorkload w(bench, m1, 0, 7);
        auto xs = w.sampleMany(500);
        for (double x : xs) {
            ASSERT_GT(x, 0.0) << bench.name;
            ASSERT_LT(x, bench.baseSeconds * 10.0) << bench.name;
        }
    }
}

TEST(Workload, CudaOnGpulessMachineThrows)
{
    const auto &bench = rodiniaByName("bfs-CUDA");
    EXPECT_THROW(SimulatedWorkload(bench, m2, 0, 1),
                 std::invalid_argument);
    EXPECT_THROW(machineSpeedup(bench, m2), std::invalid_argument);
}

TEST(Workload, CpuBenchmarksRunEverywhere)
{
    const auto &bench = rodiniaByName("bfs");
    EXPECT_NO_THROW(SimulatedWorkload(bench, m2, 0, 1));
}

TEST(Workload, MeanStaysComparableAcrossDays)
{
    // The day model recenters multipliers so the mixture mean is
    // stable — the precondition for the paper's "NAMD says similar,
    // KS says different" finding.
    const auto &bench = rodiniaByName("hotspot");
    std::vector<double> day_means;
    for (int day = 0; day < 5; ++day) {
        SimulatedWorkload w(bench, m2, day, 3);
        day_means.push_back(stats::mean(w.sampleMany(2000)));
    }
    double lo = *std::min_element(day_means.begin(), day_means.end());
    double hi = *std::max_element(day_means.begin(), day_means.end());
    // Means within ~8% of each other across days.
    EXPECT_LT((hi - lo) / lo, 0.08);
}

TEST(Workload, ShapeShiftsAcrossDaysMoreThanWithinADay)
{
    // KS between two same-day streams is small; between different days
    // it is often much larger (drift + mode churn).
    const auto &bench = rodiniaByName("hotspot");
    double max_cross = 0.0;
    SimulatedWorkload same_a(bench, m2, 0, 100);
    SimulatedWorkload same_b(bench, m2, 0, 200);
    double within = stats::ksDistance(same_a.sampleMany(1500),
                                      same_b.sampleMany(1500));
    for (int day = 1; day < 5; ++day) {
        SimulatedWorkload other(bench, m2, day, 300);
        SimulatedWorkload base(bench, m2, 0, 400);
        max_cross = std::max(
            max_cross, stats::ksDistance(base.sampleMany(1500),
                                         other.sampleMany(1500)));
    }
    EXPECT_LT(within, 0.06);
    EXPECT_GT(max_cross, 2.0 * within);
}

TEST(Workload, MachineSpeedupCpuFollowsCpuFactor)
{
    const auto &bench = rodiniaByName("lud");
    EXPECT_DOUBLE_EQ(machineSpeedup(bench, m1), 1.0);
    EXPECT_NEAR(machineSpeedup(bench, m3), 1.15, 1e-12);
}

TEST(Workload, H100SpeedupsMatchFigures8And9)
{
    // bfs-CUDA ~2x (Fig. 8), srad-CUDA ~1.2x (Fig. 9).
    auto measure = [](const char *name) {
        const auto &bench = rodiniaByName(name);
        SimulatedWorkload a100(bench, m1, 0, 11);
        SimulatedWorkload h100(bench, m3, 0, 11);
        return stats::mean(a100.sampleMany(3000)) /
               stats::mean(h100.sampleMany(3000));
    };
    EXPECT_NEAR(measure("bfs-CUDA"), 2.0, 0.15);
    EXPECT_NEAR(measure("srad-CUDA"), 1.2, 0.1);
}

TEST(Workload, AllCudaSpeedupsWithinPaperRange)
{
    // §I Q2: H100 consistently faster, 1.2x to 2x.
    for (const auto &bench : rodiniaCudaBenchmarks()) {
        double speedup =
            machineSpeedup(bench, m3) / machineSpeedup(bench, m1);
        EXPECT_GE(speedup, 1.15) << bench.name;
        EXPECT_LE(speedup, 2.1) << bench.name;
    }
}

TEST(Workload, ModalityIsVisibleInLargeSamples)
{
    // A trimodal benchmark model yields >= 2 KDE modes on most days
    // (a day may legitimately drop one mode).
    const auto &bench = rodiniaByName("srad");
    SimulatedWorkload w(bench, m1, 0, 5);
    size_t modes = stats::findModes(w.sampleMany(4000), 0.1).size();
    EXPECT_GE(modes, 2u);
}

TEST(Workload, UnimodalBenchmarksStayUnimodal)
{
    const auto &bench = rodiniaByName("backprop");
    for (int day = 0; day < 3; ++day) {
        SimulatedWorkload w(bench, m1, day, 6);
        EXPECT_EQ(stats::findModes(w.sampleMany(3000), 0.15).size(), 1u)
            << "day " << day;
    }
}

TEST(Workload, EffectiveModesRespectDayDrop)
{
    // Over many days, hotspot must sometimes lose a mode (drop prob
    // 0.4) and sometimes keep all three.
    const auto &bench = rodiniaByName("hotspot");
    bool saw_three = false, saw_fewer = false;
    for (int day = 0; day < 20; ++day) {
        SimulatedWorkload w(bench, m2, day, 1);
        if (w.effectiveModes().size() == 3)
            saw_three = true;
        else
            saw_fewer = true;
    }
    EXPECT_TRUE(saw_three);
    EXPECT_TRUE(saw_fewer);
}

TEST(Workload, FasterMachineGivesSmallerTimes)
{
    const auto &bench = rodiniaByName("kmeans");
    SimulatedWorkload slow(bench, m1, 0, 9);
    SimulatedWorkload fast(bench, m3, 0, 9);
    EXPECT_GT(stats::mean(slow.sampleMany(1000)),
              stats::mean(fast.sampleMany(1000)));
}

} // anonymous namespace
