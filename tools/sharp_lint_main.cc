/**
 * @file
 * The `sharp-lint` executable: invariant linting over SHARP's own C++
 * sources (see src/lint/linter.hh for the rule catalog).
 *
 *   sharp-lint [--format text|json] [--list-rules] PATH...
 *
 * Directories are walked recursively for C++ sources; files are
 * linted as given. Exit code: 0 clean, 1 warnings only, 2 errors —
 * the same contract as `sharp check`.
 */

#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "check/diagnostic.hh"
#include "json/writer.hh"
#include "lint/linter.hh"

namespace
{

int
usage(std::ostream &out, int code)
{
    out << "usage: sharp-lint [--format text|json] [--list-rules] "
           "PATH...\n"
           "\n"
           "Lint SHARP C++ sources for reproducibility invariants.\n"
           "Suppress one finding with a comment on the same line or\n"
           "the line above: // sharp-lint: allow(<rule>)\n"
           "\n"
           "exit status: 0 clean, 1 warnings only, 2 errors\n";
    return code;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string format = "text";
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        if (arg == "--list-rules") {
            for (const auto &rule : sharp::lint::ruleCatalog()) {
                std::cout << rule.name << " ("
                          << sharp::check::severityName(rule.severity)
                          << "): " << rule.summary << "\n";
            }
            return 0;
        }
        if (arg == "--format") {
            if (i + 1 >= argc)
                return usage(std::cerr, 2);
            format = argv[++i];
            if (format != "text" && format != "json")
                return usage(std::cerr, 2);
            continue;
        }
        if (!arg.empty() && arg[0] == '-')
            return usage(std::cerr, 2);
        paths.push_back(std::move(arg));
    }
    if (paths.empty())
        return usage(std::cerr, 2);

    try {
        sharp::check::CheckResult result =
            sharp::lint::lintPaths(paths);
        if (format == "json") {
            std::cout << sharp::json::writePretty(result.toJson())
                      << "\n";
        } else {
            std::cout << result.renderText();
            std::cout << result.errorCount() << " error(s), "
                      << result.warningCount() << " warning(s)\n";
        }
        return result.exitCode();
    } catch (const std::exception &problem) {
        std::cerr << "sharp-lint: " << problem.what() << "\n";
        return 2;
    }
}
