/**
 * @file
 * The `sharp` executable: a thin wrapper over sharp::cli::runCli,
 * which holds all the (unit-tested) command logic.
 */

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return sharp::cli::runCli(args, std::cout, std::cerr);
}
